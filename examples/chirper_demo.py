#!/usr/bin/env python
"""Chirper: the paper's Twitter-like application on DS-SMR.

Loads a small Holme–Kim social network into a 4-partition deployment,
drives a few users through follows, posts and timeline reads, then runs a
burst of load and reports how the partitioning adapted.

Run:  python examples/chirper_demo.py
"""

from repro.apps.chirper import user_key
from repro.harness.cluster import ClusterConfig
from repro.harness.experiment import ChirperDeployment
from repro.workload import PostWorkload, holme_kim_graph


def main():
    graph = holme_kim_graph(n=200, m=3, triad_probability=0.7, seed=4)
    print(f"social graph: {graph.num_vertices} users, "
          f"{graph.num_edges} follow relations")

    config = ClusterConfig(scheme="dssmr", num_partitions=4, seed=4)
    deployment = ChirperDeployment(graph, config)
    cluster = deployment.cluster

    # -- a hand-driven session ------------------------------------------
    alice = deployment.new_chirper_client()

    def session(env):
        poster = max(graph.vertices(), key=graph.degree)  # a celebrity
        fans = sorted(graph.neighbours(poster))[:3]
        print(f"user {poster} has {graph.degree(poster)} followers")
        yield from alice.post(poster, "hello, fediverse!")
        for fan in fans:
            reply = yield from alice.timeline(fan)
            newest = reply.value[-1] if reply.value else None
            print(f"  timeline of follower {fan}: {newest}")
        # A fresh user joins and follows the celebrity.
        yield from alice.create_user(10_000)
        yield from alice.follow(10_000, poster)
        yield from alice.post(poster, "welcome, newcomer!")
        reply = yield from alice.timeline(10_000)
        print(f"  newcomer's timeline: {[e[2] for e in reply.value]}")

    cluster.env.process(session(cluster.env))
    cluster.run(until=5_000)

    # -- a load burst ------------------------------------------------------
    workload = PostWorkload(graph, seed=4)
    deployment.start_closed_loop_clients(16, workload,
                                         end_time_ms=15_000)
    cluster.run(until=16_000)

    completed = cluster.latency.count
    print(f"\nburst: {completed} commands, "
          f"mean latency {cluster.latency.mean():.2f} ms, "
          f"p95 {cluster.latency.percentile(95):.2f} ms")
    print(f"moves while adapting: {cluster.moves_total()}, "
          f"retries: {cluster.total_retries()}, "
          f"consults: {cluster.total_consults()}, "
          f"cache hits: {cluster.total_cache_hits()}")
    sizes = {p: len(cluster.servers[f'{p}s0'].store)
             for p in cluster.partitions}
    print(f"variables per partition after adaptation: {sizes}")
    print("note: on a well-connected scale-free graph the decentralised "
          "majority\npolicy concentrates state (every post pulls its "
          "neighbourhood together).\nThat is exactly the weakness the "
          "graph-partitioned oracle fixes — try\nre-running with "
          "scheme='dynastar' in the ClusterConfig above.")


if __name__ == "__main__":
    main()
