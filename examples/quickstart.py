#!/usr/bin/env python
"""Quickstart: a DS-SMR deployment in ~40 lines.

Builds a two-partition DS-SMR cluster (dynamic oracle included), runs a
client that creates variables, accesses them across partitions (watch the
oracle move them together), and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.harness import build_cluster
from repro.smr import Command, CommandType


def main():
    # A full deployment: 2 partitions x 2 replicas + 2 oracle replicas,
    # simulated network and all, in one call.
    cluster = build_cluster(scheme="dssmr", num_partitions=2, seed=7)
    client = cluster.new_client()

    def session(env):
        # Create two variables; the oracle places them least-loaded, so
        # they land on different partitions.
        for key, value in (("x", 1), ("y", 2)):
            reply = yield from client.run_command(
                Command(op="create", ctype=CommandType.CREATE,
                        variables=(key,), args={"value": value}))
            print(f"create {key}: {reply.status.value} "
                  f"(t={env.now:.2f} ms)")
        print("oracle's map:", dict(cluster.oracle.location))

        # A command touching both: DS-SMR first *moves* them together,
        # then executes single-partition.
        reply = yield from client.run_command(
            Command(op="swap", args={"a": "x", "b": "y"},
                    variables=("x", "y"), writes=("x", "y")))
        print(f"swap x,y: {reply.status.value} on {reply.partition} "
              f"(t={env.now:.2f} ms)")
        print("oracle's map after the move:", dict(cluster.oracle.location))

        # Subsequent accesses hit the location cache — no oracle consult.
        for key in ("x", "y"):
            reply = yield from client.run_command(
                Command(op="get", args={"key": key}, variables=(key,)))
            print(f"get {key} -> {reply.value}")
        print(f"consults: {client.consult_count}, "
              f"cache hits: {client.cache_hits}, "
              f"variables moved: {cluster.moves_total()}")

    cluster.env.process(session(cluster.env))
    cluster.run(until=10_000)
    print(f"mean command latency: {cluster.latency.mean():.3f} ms "
          f"(virtual time)")


if __name__ == "__main__":
    main()
