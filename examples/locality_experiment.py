#!/usr/bin/env python
"""The paper's core experiment, self-contained: strong vs weak locality.

Compares S-SMR with the optimal static partitioning, decentralised DS-SMR
and DS-SMR with the graph-partitioned oracle on planted-community workloads
with 0% and 5% edge-cut, printing throughput/latency tables and
moves-over-time sparklines — a miniature of Figures 1 and 2.

Run:  python examples/locality_experiment.py        (~1-2 minutes)
"""

from repro.harness.experiment import (run_chirper_experiment,
                                      static_assignment_for)
from repro.harness.figures import FIGURE_EXECUTION
from repro.harness.metrics import ExperimentMetrics
from repro.harness.report import format_sparkline, format_table
from repro.workload import clustered_graph

PARTITIONS = 4
SCHEMES = ("ssmr", "dssmr", "dynastar")


def run_locality(edge_cut: float):
    graph, planted = clustered_graph(n=400, k=PARTITIONS, intra_degree=6,
                                     edge_cut_fraction=edge_cut, seed=3)
    rows, sparks = [], []
    for scheme in SCHEMES:
        kwargs = {}
        if scheme == "ssmr":
            kwargs["initial_assignment"] = static_assignment_for(
                graph, PARTITIONS, planted)
        if scheme == "dynastar":
            kwargs["repartition_interval"] = 100
        result = run_chirper_experiment(
            scheme, graph, num_partitions=PARTITIONS,
            clients_per_partition=8, duration_ms=6_000.0,
            warmup_ms=2_000.0, seed=5, bucket_ms=400.0,
            execution=FIGURE_EXECUTION, **kwargs)
        rows.append(result.metrics.row())
        sparks.append((scheme, result.throughput, result.moves))
    print(format_table(ExperimentMetrics.ROW_HEADERS, rows))
    print()
    for scheme, throughput, moves in sparks:
        print(f"{scheme:9s} tput  {format_sparkline(throughput)}")
        print(f"{'':9s} moves {format_sparkline(moves)}")


def main():
    for edge_cut, label in ((0.0, "STRONG locality (perfectly "
                                  "partitionable)"),
                            (0.05, "WEAK locality (5% edge-cut)")):
        print(f"\n=== {label} ===")
        run_locality(edge_cut)
    print("\nReading the results: under strong locality all three schemes "
          "converge\nto the same throughput (moves stop). Under weak "
          "locality the static optimum\nleads, the graph-partitioned "
          "oracle follows, and decentralised DS-SMR pays\nfor moving "
          "variables back and forth.")


if __name__ == "__main__":
    main()
