#!/usr/bin/env python
"""Parameter sweep: explore scaling beyond the paper's configurations.

Uses the harness's sweep utility to run a factorial grid (scheme ×
partition count) over a weak-locality Chirper workload, print the table,
and export ``sweep_results.csv`` for external plotting.

Run:  python examples/sweep_scaling.py        (~2-3 minutes)
"""

from repro.harness.experiment import (run_chirper_experiment,
                                      static_assignment_for)
from repro.harness.figures import FIGURE_EXECUTION
from repro.harness.sweep import sweep
from repro.workload import clustered_graph

EDGE_CUT = 0.01


def run_config(scheme, num_partitions):
    graph, planted = clustered_graph(n=80 * num_partitions,
                                     k=num_partitions, intra_degree=6,
                                     edge_cut_fraction=EDGE_CUT, seed=3)
    kwargs = {}
    if scheme == "ssmr":
        kwargs["initial_assignment"] = static_assignment_for(
            graph, num_partitions, planted)
    result = run_chirper_experiment(
        scheme, graph, num_partitions=num_partitions,
        clients_per_partition=6, duration_ms=3_000.0, warmup_ms=1_000.0,
        seed=5, execution=FIGURE_EXECUTION, **kwargs)
    return result.metrics


def main():
    print(f"sweeping scheme x partitions at {EDGE_CUT:.0%} edge-cut ...")
    result = sweep(
        run_config,
        {"scheme": ["ssmr", "dssmr", "dynastar"],
         "num_partitions": [2, 4]},
        on_row=lambda row: print(f"  done: {row['scheme']} "
                                 f"x{row['num_partitions']} -> "
                                 f"{row['throughput']:.0f} ops/s"))
    print()
    print(result.to_table())
    result.to_csv("sweep_results.csv")
    print("\nwrote sweep_results.csv")
    best = result.best("throughput")
    print(f"best configuration: {best['scheme']} with "
          f"{best['num_partitions']} partitions "
          f"({best['throughput']:.0f} ops/s)")


if __name__ == "__main__":
    main()
