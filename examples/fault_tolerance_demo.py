#!/usr/bin/env python
"""Fault tolerance: DS-SMR over Multi-Paxos surviving replica crashes.

Builds a DS-SMR deployment where every group (both partitions and the
oracle) runs a 3-replica Multi-Paxos log, then crashes a partition leader
and an oracle replica mid-run. Commands keep completing and the survivors
stay consistent — the paper's failure model in action.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import DssmrClient, DssmrServer, ORACLE_GROUP, OracleReplica
from repro.net import Network, SwitchedClusterLatency
from repro.ordering import GroupDirectory, PaxosLog
from repro.sim import Environment, SeedStream
from repro.smr import Command, CommandType, ExecutionModel, KeyValueStateMachine


def main():
    env = Environment()
    network = Network(env, SeedStream(13), SwitchedClusterLatency())
    partitions = ("p0", "p1")
    groups = {p: [f"{p}s{j}" for j in range(3)] for p in partitions}
    groups[ORACLE_GROUP] = ["or0", "or1", "or2"]
    directory = GroupDirectory(groups)

    servers = {}
    for partition in partitions:
        for member in directory.members(partition):
            servers[member] = DssmrServer(
                env, network, directory, partition, member,
                KeyValueStateMachine(),
                execution=ExecutionModel(base_ms=0.05),
                log_factory=PaxosLog, speaker_only=False)
    oracles = [OracleReplica(env, network, directory, name, partitions,
                             log_factory=PaxosLog, speaker_only=False)
               for name in directory.members(ORACLE_GROUP)]
    client = DssmrClient(env, network, directory, "c0", partitions,
                         broadcast_submit=True)

    def workload(env):
        yield from client.run_command(
            Command(op="create", ctype=CommandType.CREATE,
                    variables=("counter",), args={"value": 0}))
        for i in range(12):
            reply = yield from client.run_command(
                Command(op="incr", args={"key": "counter"},
                        variables=("counter",)))
            print(f"t={env.now:8.1f} ms  incr -> {reply.value} "
                  f"({reply.status.value})")
            yield env.timeout(50)

    def chaos(env):
        yield env.timeout(180)
        victim = "p0s0" if "counter" in servers["p0s0"].store else "p1s0"
        print(f"t={env.now:8.1f} ms  *** crashing partition leader "
              f"{victim} ***")
        servers[victim].crash()
        yield env.timeout(200)
        print(f"t={env.now:8.1f} ms  *** crashing oracle replica or0 ***")
        oracles[0].crash()

    env.process(workload(env))
    env.process(chaos(env))
    env.run(until=600_000)

    partition = oracles[1].location.get("counter")
    survivors = [m for m in directory.members(partition)
                 if not network.is_crashed(m)]
    values = {m: servers[m].store.read("counter") for m in survivors}
    print(f"\nfinal counter on surviving replicas of {partition}: {values}")
    assert len(set(values.values())) == 1, "survivors diverged!"
    print("survivors agree; the crashes were absorbed by Paxos majorities.")


if __name__ == "__main__":
    main()
