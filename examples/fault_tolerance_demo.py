#!/usr/bin/env python
"""Fault tolerance: DS-SMR surviving crashes, recoveries and scale-out.

Part 1 builds a DS-SMR deployment where every group (both partitions and
the oracle) runs a 3-replica Multi-Paxos log, then crashes a partition
leader and an oracle replica mid-run. Commands keep completing and the
survivors stay consistent — the paper's failure model in action.

Part 2 shows the elastic side (repro.reconfig): while a workload runs, a
partitioned replica crash-restarts and catches up by installing a peer
checkpoint plus the ordered-log suffix, and a brand-new partition joins
live — the oracle fences the configuration epoch and bulk-migrates
variables onto the newcomer without stopping the clients.

Part 3 removes the operator entirely (repro.heal): the same crash
vocabulary — a follower amnesia-crash, a sequencer blackout, an oracle
blackout — with **no** recovery call anywhere in the script. A
φ-accrual failure detector feeds a Paxos-leased recovery supervisor,
which fences and replaces the follower and reconnects the blacked-out
nodes on its own; the run ends by printing the supervisor's
detection→recovery timeline and the MTTR books.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import DssmrClient, DssmrServer, ORACLE_GROUP, OracleReplica
from repro.harness import build_cluster
from repro.net import Network, SwitchedClusterLatency
from repro.ordering import GroupDirectory, PaxosLog
from repro.resilience import RetryPolicy
from repro.sim import Environment, SeedStream
from repro.smr import Command, CommandType, ExecutionModel, KeyValueStateMachine


def paxos_crash_demo():
    env = Environment()
    network = Network(env, SeedStream(13), SwitchedClusterLatency())
    partitions = ("p0", "p1")
    groups = {p: [f"{p}s{j}" for j in range(3)] for p in partitions}
    groups[ORACLE_GROUP] = ["or0", "or1", "or2"]
    directory = GroupDirectory(groups)

    servers = {}
    for partition in partitions:
        for member in directory.members(partition):
            servers[member] = DssmrServer(
                env, network, directory, partition, member,
                KeyValueStateMachine(),
                execution=ExecutionModel(base_ms=0.05),
                log_factory=PaxosLog, speaker_only=False)
    oracles = [OracleReplica(env, network, directory, name, partitions,
                             log_factory=PaxosLog, speaker_only=False)
               for name in directory.members(ORACLE_GROUP)]
    client = DssmrClient(env, network, directory, "c0", partitions,
                         broadcast_submit=True)

    def workload(env):
        yield from client.run_command(
            Command(op="create", ctype=CommandType.CREATE,
                    variables=("counter",), args={"value": 0}))
        for i in range(12):
            reply = yield from client.run_command(
                Command(op="incr", args={"key": "counter"},
                        variables=("counter",)))
            print(f"t={env.now:8.1f} ms  incr -> {reply.value} "
                  f"({reply.status.value})")
            yield env.timeout(50)

    def chaos(env):
        yield env.timeout(180)
        victim = "p0s0" if "counter" in servers["p0s0"].store else "p1s0"
        print(f"t={env.now:8.1f} ms  *** crashing partition leader "
              f"{victim} ***")
        servers[victim].crash()
        yield env.timeout(200)
        print(f"t={env.now:8.1f} ms  *** crashing oracle replica or0 ***")
        oracles[0].crash()

    env.process(workload(env))
    env.process(chaos(env))
    env.run(until=600_000)

    partition = oracles[1].location.get("counter")
    survivors = [m for m in directory.members(partition)
                 if not network.is_crashed(m)]
    values = {m: servers[m].store.read("counter") for m in survivors}
    print(f"\nfinal counter on surviving replicas of {partition}: {values}")
    assert len(set(values.values())) == 1, "survivors diverged!"
    print("survivors agree; the crashes were absorbed by Paxos majorities.")


def elastic_demo():
    cluster = build_cluster(scheme="dssmr", num_partitions=2,
                            replicas_per_partition=2, seed=11,
                            retry_policy=RetryPolicy())
    keys = tuple(f"acct{i}" for i in range(8))
    cluster.preload({key: 100 for key in keys})
    env = cluster.env
    client = cluster.new_client("teller")

    def workload(env):
        for round_number in range(18):
            key = keys[round_number % len(keys)]
            reply = yield from client.run_command(
                Command(op="incr", args={"key": key}, variables=(key,)))
            print(f"t={env.now:8.1f} ms  incr {key} -> {reply.value}")
            yield env.timeout(25)

    def chaos(env):
        yield env.timeout(100)
        print(f"t={env.now:8.1f} ms  *** crashing replica p0s1 ***")
        cluster.servers["p0s1"].crash()
        yield env.timeout(120)
        print(f"t={env.now:8.1f} ms  *** restarting p0s1: checkpoint "
              f"install + log replay from a live peer ***")
        cluster.recover_server("p0s1")
        yield env.timeout(60)
        print(f"t={env.now:8.1f} ms  *** partition p2 joining live ***")
        yield from cluster.grow("p2")
        print(f"t={env.now:8.1f} ms  *** p2 joined: epoch="
              f"{cluster.reconfig.epoch}, "
              f"{cluster.reconfig.keys_migrated} key(s) migrated ***")

    env.process(workload(env))
    env.process(chaos(env))
    env.run(until=600_000)

    recovered = cluster.servers["p0s1"]
    peer_store = cluster.servers["p0s0"].store.snapshot()
    assert recovered.recovery.installed, "recovery never completed!"
    assert recovered.store.snapshot() == peer_store, "p0s1 diverged!"
    newcomer = cluster.servers["p2s0"].store.snapshot()
    assert newcomer, "the joined partition holds no variables!"
    print(f"\np0s1 caught up with its partition ({len(peer_store)} "
          f"variable(s)) and p2 now serves {sorted(newcomer)}.")
    print("crash-recovery and live scale-out both absorbed mid-run.")


def self_healing_demo():
    from repro.harness.faults import blackout_victim, select_victim
    from repro.heal import ClusterHealer

    cluster = build_cluster(scheme="dssmr", num_partitions=2,
                            replicas_per_partition=2, seed=23,
                            retry_policy=RetryPolicy())
    keys = tuple(f"acct{i}" for i in range(8))
    cluster.preload({key: 100 for key in keys})
    env = cluster.env
    healer = ClusterHealer(cluster)
    client = cluster.new_client("teller")

    def workload(env):
        for round_number in range(24):
            key = keys[round_number % len(keys)]
            reply = yield from client.run_command(
                Command(op="incr", args={"key": key}, variables=(key,)))
            print(f"t={env.now:8.1f} ms  incr {key} -> {reply.value}")
            yield env.timeout(25)

    def chaos(env):
        # Three failures, one per role — and not one recovery call:
        # repair is the supervisor's job now.
        yield env.timeout(100)
        follower, _ = select_victim(cluster, "follower", 0)
        print(f"t={env.now:8.1f} ms  *** {follower} (follower) "
              f"amnesia-crashes — nobody restarts it ***")
        cluster.servers[follower].crash()
        yield env.timeout(200)
        speaker, _ = select_victim(cluster, "speaker", 1)
        print(f"t={env.now:8.1f} ms  *** {speaker} (sequencer) blacks "
              f"out — nobody reconnects it ***")
        blackout_victim(cluster, speaker)
        yield env.timeout(200)
        oracle, _ = select_victim(cluster, "oracle", 0)
        print(f"t={env.now:8.1f} ms  *** {oracle} (oracle) blacks "
              f"out — nobody reconnects it ***")
        blackout_victim(cluster, oracle)

    env.process(workload(env))
    env.process(chaos(env))
    env.run(until=1_500.0)
    healer.stop()

    print("\nsupervisor timeline (detection -> recovery):")
    for line in healer.format_timeline():
        print(f"  {line}")
    snapshot = healer.snapshot()
    print(f"\nMTTR books: {snapshot['detections']} detection(s), "
          f"{snapshot['replaces']} replace(s), "
          f"{snapshot['reconnects']} reconnect(s), "
          f"{snapshot['false_suspicions']} false suspicion(s)")
    print(f"MTTR (ms): {snapshot['mttr_ms']}")
    print(f"per-partition unavailability (ms): "
          f"{snapshot['unavailability_ms']}")
    assert snapshot["detections"] == 3, "a failure went undetected!"
    assert all(e["closed_at"] is not None
               for e in snapshot["episodes"]), "an outage never healed!"
    print("all three failures detected and repaired autonomously.")


def main():
    print("== part 1: Multi-Paxos crash tolerance ==")
    paxos_crash_demo()
    print("\n== part 2: elastic reconfiguration ==")
    elastic_demo()
    print("\n== part 3: self-healing (no operator, no harness) ==")
    self_healing_demo()


if __name__ == "__main__":
    main()
