"""The graph-partitioned oracle policy (Tasks 5/6 + ``target()``).

Implements the draft's oracle behaviour on top of the pluggable
:class:`~repro.core.policy.OraclePolicy` interface:

* hints grow the workload graph; every ``repartition_interval`` hints the
  policy recomputes the ideal partitioning with the multilevel partitioner
  (deterministic, so all oracle replicas transition identically — the
  draft's Task 6);
* the computed ideal part indices are *aligned* to the live partitions by
  maximum overlap with the current locations, so a repartition renames
  parts to whatever minimises immediate moves;
* ``target()`` sends a multi-partition command's variables to the partition
  the ideal assignment prefers (majority vote over the command's variables),
  tie-broken by the fewest moves given current locations.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.core.policy import LeastLoadedCreatePolicy, OraclePolicy
from repro.dynastar.workload_graph import WorkloadGraph
from repro.graph import MultilevelPartitioner, Partitioner

Key = Hashable


class GraphTargetPolicy(LeastLoadedCreatePolicy, OraclePolicy):
    """Locality-aware oracle policy driven by workload-graph partitioning."""

    #: Simulated cost of one repartition, per graph element (vertex + edge),
    #: in ms. Calibrated so a 10k-vertex/30k-edge graph costs ~40 ms —
    #: the same order as the METIS runs in the paper's oracle experiment.
    REPARTITION_COST_PER_ELEMENT = 0.001

    def __init__(self, partitions: Sequence[str],
                 partitioner: Optional[Partitioner] = None,
                 repartition_interval: int = 200):
        if repartition_interval < 1:
            raise ValueError("repartition_interval must be >= 1")
        self.partitions = tuple(partitions)
        self.partitioner = partitioner or MultilevelPartitioner()
        self.repartition_interval = repartition_interval
        self.workload = WorkloadGraph()
        self.ideal: dict[Key, str] = {}
        self.repartition_count = 0
        self._hints_since_repartition = 0

    def set_partitions(self, partitions: Sequence[str]) -> None:
        """Repartition against the live configuration epoch.

        Called by the oracle when an elastic reconfiguration (partition
        join/leave, see :mod:`repro.reconfig`) changes the partition set:
        subsequent ideal computations cut the workload graph into the new
        number of parts, and stale ideal entries naming a removed
        partition are dropped so targeting never selects it.
        """
        partitions = tuple(partitions)
        removed = set(self.partitions) - set(partitions)
        self.partitions = partitions
        if removed:
            self.ideal = {key: p for key, p in self.ideal.items()
                          if p not in removed}

    # -- hints / repartitioning (Tasks 5 & 6) -------------------------------

    def on_hint(self, vertices: Iterable[Key],
                edges: Iterable[tuple[Key, Key]],
                location: Mapping[Key, str]) -> float:
        """Synchronous mode: ingest, and repartition in-line when due."""
        if not self.ingest_hint(vertices, edges):
            return 0.0
        return self.repartition(location)

    def ingest_hint(self, vertices: Iterable[Key],
                    edges: Iterable[tuple[Key, Key]]) -> bool:
        """Grow the workload graph; True when a repartition is due.

        Used directly by the oracle's *asynchronous* repartitioning mode
        (the paper's multi-threaded oracle), which computes the new
        partitioning off the critical path and activates it via an
        atomically multicast partitioning id.
        """
        self.workload.add_hint(vertices, [tuple(e) for e in edges])
        self._hints_since_repartition += 1
        if self._hints_since_repartition < self.repartition_interval:
            return False
        self._hints_since_repartition = 0
        return True

    def compute_ideal(self, location: Mapping[Key, str]) \
            -> tuple[dict, float]:
        """Compute (but do not install) a new ideal partitioning.

        Returns ``(ideal_mapping, simulated_cost_ms)``. Deterministic for a
        given workload graph and location map, so every oracle replica
        computes the same candidate for the same partitioning id.
        """
        graph = self.workload.graph
        if graph.num_vertices == 0:
            return {}, 0.0
        assignment = self.partitioner.partition(graph, len(self.partitions))
        names = self._align_parts(assignment, location)
        ideal = {key: names[index] for key, index in assignment.items()}
        cost = self.REPARTITION_COST_PER_ELEMENT * (
            graph.num_vertices + graph.num_edges)
        return ideal, cost

    def install_ideal(self, ideal: dict) -> None:
        """Switch to a previously computed ideal partitioning."""
        self.ideal = dict(ideal)
        self.repartition_count += 1

    def repartition(self, location: Mapping[Key, str]) -> float:
        """Compute and install in one step; returns the simulated cost."""
        ideal, cost = self.compute_ideal(location)
        if ideal:
            self.install_ideal(ideal)
        return cost

    def _align_parts(self, assignment: Mapping[Key, int],
                     location: Mapping[Key, str]) -> dict[int, str]:
        """Greedy max-overlap renaming of ideal part indices to partitions."""
        k = len(self.partitions)
        overlap: dict[tuple[int, str], int] = Counter()
        for key, index in assignment.items():
            current = location.get(key)
            if current is not None:
                overlap[(index, current)] += 1
        pairs = sorted(overlap.items(),
                       key=lambda item: (-item[1], item[0][0], item[0][1]))
        names: dict[int, str] = {}
        taken: set[str] = set()
        for (index, partition), _count in pairs:
            if index in names or partition in taken:
                continue
            names[index] = partition
            taken.add(partition)
        remaining = [p for p in self.partitions if p not in taken]
        for index in range(k):
            if index not in names:
                names[index] = remaining.pop(0)
        return names

    # -- target selection -------------------------------------------------------

    def target_for_access(self, variables: Iterable[Key],
                          location: Mapping[Key, str],
                          partitions: Sequence[str],
                          sizes: Mapping[str, int]) -> str:
        variables = list(variables)
        votes = Counter(self.ideal[v] for v in variables if v in self.ideal)
        if not votes:
            # No ideal assignment yet: fall back to the DS-SMR heuristic.
            votes = Counter(location[v] for v in variables if v in location)
        if not votes:
            return partitions[0]
        already_there = Counter(location[v] for v in variables
                                if v in location)

        def rank(partition: str):
            return (-votes[partition], -already_there.get(partition, 0),
                    sizes.get(partition, 0), partition)

        return min(votes, key=rank)

    # -- create / delete bookkeeping --------------------------------------------

    def partition_for_create(self, key: Key, location: Mapping[Key, str],
                             partitions: Sequence[str],
                             sizes: Mapping[str, int]) -> str:
        ideal = self.ideal.get(key)
        if ideal is not None:
            return ideal
        return super().partition_for_create(key, location, partitions, sizes)

    def on_delete(self, key: Key) -> None:
        self.workload.remove_variable(key)
        self.ideal.pop(key, None)
