"""The oracle's workload graph (Task 5 of the oracle algorithm).

Vertices are state variables, edges connect variables accessed by the same
command; edge weights count co-accesses. The graph is built incrementally
from hints submitted through the oracle's ordered log, so every oracle
replica holds an identical copy.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graph import Graph

Key = Hashable


class WorkloadGraph:
    """Incrementally maintained variable co-access graph."""

    def __init__(self):
        self.graph = Graph()
        self.hints_ingested = 0

    def add_hint(self, vertices: Iterable[Key],
                 edges: Iterable[tuple[Key, Key]]) -> None:
        """Ingest one hint: ensure vertices exist, accumulate edge weights."""
        for vertex in vertices:
            if vertex not in self.graph:
                self.graph.add_vertex(vertex)
        for u, v in edges:
            self.graph.add_edge(u, v)
        self.hints_ingested += 1

    def remove_variable(self, key: Key) -> None:
        if key in self.graph:
            self.graph.remove_vertex(key)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges
