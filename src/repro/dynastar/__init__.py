"""Graph-partitioned oracle extension ("DynaStar-style" policy).

The supplied paper draft extends DS-SMR with a *locality-aware* oracle: it
builds a workload graph on the fly from client hints (vertices = state
variables, edges = commands that accessed the variables together),
periodically computes an "ideal" partitioning with a static graph
partitioner (our METIS substitute), and gathers the variables of a
multi-partition command at the partition that the ideal partitioning —
rather than the current majority — calls for. Under weak locality this
stops the back-and-forth moving that destabilises plain DS-SMR.

The extension is purely a policy: plug :class:`GraphTargetPolicy` into
:class:`repro.core.OracleReplica` (with ``oracle_issues_moves=True`` to get
the oracle-driven move variant of the draft's Algorithm 4).
"""

from repro.dynastar.workload_graph import WorkloadGraph
from repro.dynastar.policy import GraphTargetPolicy

__all__ = ["GraphTargetPolicy", "WorkloadGraph"]
