"""Workload generation: social graphs and command streams.

Mirrors the paper's methodology: Holme–Kim power-law graphs with tunable
clustering represent the social network, and *controlled edge-cut* graphs
characterise workloads by the percentage of edges crossing an optimal
k-way partitioning (0% = strong locality, >0% = weak locality).
"""

from repro.workload.social_graph import (
    clustered_graph,
    hierarchical_graph,
    hierarchy_split,
    holme_kim_graph,
    planted_edge_cut,
)
from repro.workload.generator import (
    MixedWorkload,
    PostWorkload,
    WorkloadOp,
)

__all__ = [
    "MixedWorkload",
    "PostWorkload",
    "WorkloadOp",
    "clustered_graph",
    "hierarchical_graph",
    "hierarchy_split",
    "holme_kim_graph",
    "planted_edge_cut",
]
