"""Social graph generators.

Two generators, matching the paper's experimental setup:

* :func:`holme_kim_graph` — the Holme–Kim growing power-law model with
  triad formation, implemented from scratch (preferential attachment plus a
  tunable clustering probability). This is the "realistic social network"
  of the evaluation.
* :func:`clustered_graph` — k planted communities with an exact fraction of
  cross-community edges. The paper characterises workloads by "% edge-cut
  as computed by METIS"; planting the cut lets us dial 0%, 1%, 5%, 10%
  exactly, with the planted assignment doubling as the "perfect static"
  partitioning of the motivation experiment.
"""

from __future__ import annotations

import random

from repro.graph import Graph


def holme_kim_graph(n: int, m: int, triad_probability: float,
                    seed: int = 0) -> Graph:
    """Grow a Holme–Kim power-law graph with clustering.

    Each new vertex attaches to ``m`` existing vertices: the first by
    preferential attachment; each subsequent one, with probability
    ``triad_probability``, to a random neighbour of the previously chosen
    vertex (triad formation — this is what creates the high clustering
    coefficient of social networks), otherwise again preferentially.
    Vertices are integers ``0..n-1``.
    """
    if m < 1 or n < m + 1:
        raise ValueError(f"need n > m >= 1, got n={n}, m={m}")
    if not 0 <= triad_probability <= 1:
        raise ValueError(f"triad_probability out of range: {triad_probability}")
    rng = random.Random(seed)
    graph = Graph()
    # repeated_nodes implements preferential attachment: each vertex appears
    # once per incident edge, so sampling uniformly is degree-proportional.
    repeated_nodes: list[int] = []
    for v in range(m):
        graph.add_vertex(v)
    for source in range(m, n):
        graph.add_vertex(source)
        targets: set[int] = set()
        # First link: pure preferential attachment (uniform before edges).
        if repeated_nodes:
            target = rng.choice(repeated_nodes)
        else:
            target = rng.randrange(source)
        targets.add(target)
        previous = target
        while len(targets) < min(m, source):
            neighbours = [u for u in graph.neighbours(previous)
                          if u != source and u not in targets]
            if neighbours and rng.random() < triad_probability:
                choice = rng.choice(sorted(neighbours))
            elif repeated_nodes:
                choice = rng.choice(repeated_nodes)
            else:
                choice = rng.randrange(source)
            if choice != source:
                targets.add(choice)
                previous = choice
        for target in sorted(targets):
            graph.add_edge(source, target)
            repeated_nodes.extend((source, target))
    return graph


def clustered_graph(n: int, k: int, intra_degree: float,
                    edge_cut_fraction: float,
                    seed: int = 0,
                    communities: int | None = None) -> tuple[Graph, dict]:
    """Planted communities with an exact cross-partition edge fraction.

    Returns ``(graph, planted_assignment)`` where the assignment maps each
    vertex to a partition index in ``range(k)`` — the optimal k-way
    partitioning, whose edge-cut is exactly ``edge_cut_fraction`` (up to
    rounding).

    The graph consists of ``communities`` small dense clusters (several per
    partition — real perfectly-partitionable workloads are many small
    affinity groups, not k giant blobs; many small clusters is also what
    lets a dynamic scheme balance load while coalescing them). Cross edges
    are planted only between vertices of *different partitions*, so the
    planted assignment's cut equals the requested fraction.

    ``intra_degree`` is the average number of intra-community edges per
    vertex. With ``edge_cut_fraction == 0`` the workload has *strong
    locality*: it is perfectly partitionable.
    """
    if k < 1 or n < k:
        raise ValueError(f"need n >= k >= 1, got n={n}, k={k}")
    if not 0 <= edge_cut_fraction < 1:
        raise ValueError(f"edge_cut_fraction out of range: {edge_cut_fraction}")
    if communities is None:
        communities = max(k, min(n // 10, k * 16))
    if communities % k:
        communities += k - communities % k  # same count per partition
    rng = random.Random(seed)
    graph = Graph()
    assignment: dict = {}
    members: list[list[int]] = [[] for _ in range(communities)]
    for v in range(n):
        community = v % communities
        assignment[v] = community % k
        members[community].append(v)
        graph.add_vertex(v)

    total_edges = round(n * intra_degree / 2 / (1 - edge_cut_fraction))
    cross_edges = round(total_edges * edge_cut_fraction)
    intra_edges = total_edges - cross_edges

    added = 0
    while added < intra_edges:
        community = members[added % communities]
        if len(community) < 2:
            raise ValueError("communities too small for intra edges")
        u, v = rng.sample(community, 2)
        graph.add_edge(u, v)
        added += 1
    added = 0
    while added < cross_edges:
        u, v = rng.sample(range(n), 2)
        if assignment[u] == assignment[v]:
            continue  # cross edges must cross partitions to count as cut
        graph.add_edge(u, v)
        added += 1
    return graph, assignment


def hierarchical_graph(n: int, levels: int = 3, intra_degree: float = 6,
                       level_edge_fractions: tuple | None = None,
                       seed: int = 0) -> tuple[Graph, dict]:
    """Nested communities: the "same graph, more partitions" workload.

    Builds ``2**levels`` leaf communities arranged in a binary hierarchy.
    Most edges stay inside a leaf; a fraction
    ``level_edge_fractions[l - 1]`` of all edges crosses level ``l`` of the
    hierarchy (level 1 = between sibling leaves, level ``levels`` = across
    the top split). Splitting the graph into ``2**j`` parts along the
    hierarchy therefore cuts exactly the edges of the top ``j`` levels —
    the edge-cut grows with the partition count, which is the paper's
    "same graph in different partitionings" experiment (it reports cuts of
    0.13%/1.06%/2.28%/2.67% for 2/4/6/8 partitions). The defaults plant
    cuts of ~0.15% (k=2), ~0.95% (k=4) and ~2.45% (k=8).

    Returns ``(graph, leaf_assignment)`` where ``leaf_assignment`` maps each
    vertex to its leaf index; the optimal k-way split for ``k = 2**j`` is
    ``leaf >> (levels - j)``.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if level_edge_fractions is None:
        if levels == 3:
            # Calibrated to the paper's reported cuts (~0.15/0.95/2.45%).
            level_edge_fractions = (0.015, 0.008, 0.0015)
        else:
            level_edge_fractions = tuple(0.015 / 2 ** (level - 1)
                                         for level in range(1, levels + 1))
    if len(level_edge_fractions) != levels:
        raise ValueError(f"need {levels} level fractions, "
                         f"got {len(level_edge_fractions)}")
    if sum(level_edge_fractions) >= 1:
        raise ValueError("level fractions must sum to < 1")
    leaves = 2 ** levels
    if n < leaves * 2:
        raise ValueError(f"need at least {leaves * 2} vertices")
    rng = random.Random(seed)
    graph = Graph()
    assignment: dict = {}
    members: list[list[int]] = [[] for _ in range(leaves)]
    for v in range(n):
        leaf = v % leaves
        assignment[v] = leaf
        members[leaf].append(v)
        graph.add_vertex(v)

    total_edges = round(n * intra_degree / 2)
    cross_total = 0
    for level in range(1, levels + 1):
        count = round(total_edges * level_edge_fractions[level - 1])
        cross_total += count
        added = 0
        while added < count:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            lu, lv = assignment[u], assignment[v]
            # A level-l edge: leaves agree above bit (l-1), differ at it.
            if (lu >> level) != (lv >> level):
                continue
            if ((lu >> (level - 1)) & 1) == ((lv >> (level - 1)) & 1):
                continue
            graph.add_edge(u, v)
            added += 1
    intra_edges = total_edges - cross_total
    added = 0
    while added < intra_edges:
        community = members[added % leaves]
        u, v = rng.sample(community, 2)
        graph.add_edge(u, v)
        added += 1
    return graph, assignment


def hierarchy_split(leaf_assignment: dict, levels: int, k: int) -> dict:
    """Optimal ``k``-way split of a hierarchical graph (``k`` = power of 2)."""
    j = k.bit_length() - 1
    if 2 ** j != k or j > levels:
        raise ValueError(f"k must be a power of two <= {2 ** levels}")
    return {v: leaf >> (levels - j) for v, leaf in leaf_assignment.items()}


def planted_edge_cut(graph: Graph, assignment: dict) -> float:
    """Edge-cut fraction of an assignment over a graph (convenience)."""
    from repro.graph import edge_cut_fraction
    return edge_cut_fraction(graph, assignment)
