"""Command stream generators for the Chirper workloads.

A workload object yields :class:`WorkloadOp` records; the harness's client
processes turn them into Chirper operations. Closed loop, as in the paper:
"each client repeatedly issued synchronous post commands, waiting for a
response from the storage".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.graph import Graph


@dataclass
class WorkloadOp:
    """One application operation to issue."""

    op: str                    # post | timeline | follow | unfollow
    user: int
    other: Optional[int] = None   # follow/unfollow target
    text: str = ""


class PostWorkload:
    """The paper's main workload: a stream of posts by random users."""

    def __init__(self, graph: Graph, seed: int = 0):
        self.graph = graph
        self.users = sorted(graph.vertices())
        self.seed = seed

    def stream(self, client_index: int) -> Iterator[WorkloadOp]:
        rng = random.Random(f"{self.seed}/{client_index}")
        counter = 0
        while True:
            user = rng.choice(self.users)
            counter += 1
            yield WorkloadOp(op="post", user=user,
                             text=f"post {client_index}/{counter}")


@dataclass
class MixedWorkload:
    """Read-heavy Chirper mix (timeline-dominated, like real social feeds).

    Weights default to the read-mostly profile the paper motivates with
    Facebook TAO: ~85% timeline reads, the rest writes.
    """

    graph: Graph
    seed: int = 0
    weights: dict = field(default_factory=lambda: {
        "timeline": 0.85, "post": 0.075, "follow": 0.04, "unfollow": 0.035,
    })

    def __post_init__(self):
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total}")
        self.users = sorted(self.graph.vertices())

    def stream(self, client_index: int) -> Iterator[WorkloadOp]:
        rng = random.Random(f"{self.seed}/{client_index}")
        ops = sorted(self.weights)
        cumulative = []
        running = 0.0
        for op in ops:
            running += self.weights[op]
            cumulative.append((running, op))
        counter = 0
        while True:
            draw = rng.random()
            op = next(name for edge, name in cumulative if draw <= edge)
            user = rng.choice(self.users)
            counter += 1
            if op in ("follow", "unfollow"):
                other = rng.choice(self.users)
                if other == user:
                    continue
                yield WorkloadOp(op=op, user=user, other=other)
            elif op == "post":
                yield WorkloadOp(op="post", user=user,
                                 text=f"post {client_index}/{counter}")
            else:
                yield WorkloadOp(op="timeline", user=user)


def round_robin_users(users: Sequence[int], count: int,
                      seed: int = 0) -> list[int]:
    """Deterministically pick ``count`` users, shuffled once (for seeding)."""
    rng = random.Random(seed)
    pool = list(users)
    rng.shuffle(pool)
    return [pool[i % len(pool)] for i in range(count)]
