"""repro — a full reproduction of Dynamic Scalable State Machine Replication.

This package implements the DS-SMR protocol (DSN 2016) together with every
substrate it depends on: a deterministic discrete-event simulation kernel, a
cluster network model, reliable and atomic multicast (including a from-scratch
Paxos), classic SMR, static S-SMR, the dynamic replicated oracle of DS-SMR, a
graph-partitioning oracle extension, a METIS-like multilevel graph
partitioner, the Chirper social-network application, workload generators, and
an experiment harness that regenerates every figure of the paper's
evaluation.

Quickstart::

    from repro.harness import ClusterBuilder

    cluster = ClusterBuilder(scheme="dssmr", num_partitions=2, seed=7).build()
    client = cluster.new_client()
    cluster.run_until_idle()

See ``examples/quickstart.py`` for a complete runnable example.
"""

from repro.sim import Environment
from repro.version import __version__

__all__ = ["Environment", "__version__"]
