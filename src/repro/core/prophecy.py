"""Prophecies: the oracle's answers to consult commands.

A prophecy tells the client where a command's variables live and what to do
next. Following the paper, it is either a terminal verdict (``OK``/``NOK``,
e.g. "that variable already exists") or a location answer: variable→partition
tuples, the destination partition, and a ``sync`` flag — set when the oracle
itself has issued the move commands (graph-partitioned oracle mode), telling
the client to wait for the destination partition to receive the variables
before multicasting the command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class ProphecyStatus(str, Enum):
    OK = "ok"          # terminal: nothing to execute (e.g. delete of absent)
    NOK = "nok"        # terminal: command cannot execute (e.g. unknown var)
    LOCATIONS = "locations"
    OVERLOAD = "overload"  # consult shed by admission control; back off


@dataclass
class Prophecy:
    """Oracle reply to a consult."""

    status: ProphecyStatus
    # Mapping variable -> partition for every variable of the command.
    tuples: dict = field(default_factory=dict)
    # Destination partition chosen by the oracle's target policy (set when
    # the command spans multiple partitions, or for a create).
    target: Optional[str] = None
    # True when the oracle already issued the moves; the client must wait
    # for the move acknowledgement from the destination partition.
    sync: bool = False
    # Id of the oracle-issued move the client must wait for (sync mode).
    move_cid: Optional[str] = None
    reason: str = ""
    # Configuration epoch at the oracle when the consult executed; a
    # client seeing a newer epoch than it last saw flushes its location
    # cache (stale entries may point at partitions that drained away).
    epoch: int = 0

    @property
    def partitions(self) -> set[str]:
        return set(self.tuples.values())
