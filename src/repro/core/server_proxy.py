"""DS-SMR partition server proxy (Algorithm 3 of the paper).

Extends the S-SMR server with the dynamic-partitioning behaviours:

* **access** — executes only if *all* the command's variables are stored
  locally; otherwise replies ``retry`` (the variables moved away since the
  client consulted). Commands arriving with ``mode="fallback"`` take the
  S-SMR multi-partition path instead, which is how termination is
  guaranteed after repeated retries.
* **move** — a source partition ships its share of the moved variables to
  the destination partition via reliable multicast and forgets them; the
  destination waits for one transfer message per source, installs the
  values, and acknowledges to the client that triggered the move.
* **create / delete** — executed in coordination with the oracle: partition
  and oracle exchange signals so creates and deletes serialize correctly
  against each other (Task 2/3 of the oracle algorithm).
"""

from __future__ import annotations

from repro.obs.tracing import trace_id_of
from repro.ordering import AmcastDelivery
from repro.sim import Counter
from repro.smr.command import Command, CommandType, Reply, ReplyStatus
from repro.smr.replica import REPLY_KIND
from repro.ssmr.server import SsmrServer
from repro.core.oracle import ORACLE_GROUP


class DssmrServer(SsmrServer):
    """One replica of one DS-SMR partition."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.retries_sent = Counter(f"{self.node.name}/retries")
        self.moves_in = Counter(f"{self.node.name}/moves-in")
        self.moves_out = Counter(f"{self.node.name}/moves-out")

    def _handle_delivery(self, delivery: AmcastDelivery):
        envelope = delivery.payload
        if "reconfig" in envelope:
            self._apply_reconfig(envelope["reconfig"])
            return
        command: Command = envelope["command"]
        if command.ctype.value == "move":
            yield from self._exec_move(command)
            return
        if (command.ctype.value == "access"
                and envelope.get("mode") != "fallback"):
            yield from self._exec_single_partition_access(
                command, envelope.get("attempt", 1))
            return
        # create/delete and fallback accesses reuse the S-SMR machinery,
        # with the oracle joining the signal exchange for create/delete.
        yield from super()._handle_delivery(delivery)

    # -- parallel execution (repro.smr.parallel) ------------------------------

    def _parallel_access(self, envelope):
        """Pool-eligible: non-fallback accesses (always single-partition).

        Fallback-mode accesses take the S-SMR multi-partition machinery
        and serialize; moves, creates/deletes and reconfig fences mutate
        the store key-set (or the epoch) and serialize too.
        """
        if "reconfig" in envelope:
            return None
        command = envelope.get("command")
        if not isinstance(command, Command):
            return None
        if command.ctype is not CommandType.ACCESS:
            return None
        if envelope.get("mode") == "fallback":
            return None
        return command

    def _dispatch_parallel(self, command: Command, envelope, delivery):
        attempt = envelope.get("attempt", 1)
        if (self.parallel.inflight_slot(command.cid) is None
                and command.cid not in self.replies):
            missing = [key for key in command.variables
                       if key not in self.store]
            if missing:
                # Variables moved away since the client consulted: retry.
                # Sound at dispatch time: moves (and creates/deletes)
                # barrier on a drained pool, so the store key-set cannot
                # change while work is in flight.
                self.retries_sent.increment(self.env.now)
                self._send_reply(command, Reply(
                    cid=command.cid, status=ReplyStatus.RETRY,
                    value={"missing": missing}, sender=self.node.name,
                    partition=self.partition, attempt=attempt))
                return
        super()._dispatch_parallel(command, envelope, delivery)

    # -- access (single-partition fast path) ---------------------------------

    def _exec_single_partition_access(self, command: Command,
                                      attempt: int = 1):
        cached = self.replies.lookup(command.cid, attempt)
        if cached is not None:
            self._send_reply(command, cached)
            return
        missing = [key for key in command.variables
                   if key not in self.store]
        if missing:
            # Variables moved away since the client consulted: retry.
            self.retries_sent.increment(self.env.now)
            self._send_reply(command, Reply(
                cid=command.cid, status=ReplyStatus.RETRY,
                value={"missing": missing}, sender=self.node.name,
                partition=self.partition, attempt=attempt))
            return
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        from repro.smr.state_machine import ExecutionView
        view = ExecutionView(self.store)
        try:
            value = self.state_machine.apply(command, view)
            status = ReplyStatus.OK
        except KeyError as error:
            # Undeclared variable access (see SsmrServer._exec_access).
            value = f"undeclared variable access: {error}"
            status = ReplyStatus.NOK
        reply = Reply(cid=command.cid, status=status, value=value,
                      sender=self.node.name, partition=self.partition,
                      attempt=attempt)
        self.replies.store(command.cid, reply)
        self.executed.append(command.cid)
        self._send_reply(command, reply)

    # -- move --------------------------------------------------------------------

    def _exec_move(self, command: Command):
        sources = set(command.args["sources"])
        dest = command.args["dest"]
        notify = command.args.get("notify")
        if self.partition in sources:
            # Ship whatever we still hold (possibly nothing, if an earlier
            # move already took these variables) and forget it.
            shipped = {}
            for key in command.variables:
                if key in self.store:
                    shipped[key] = self.store.pop(key)
            self.moves_out.increment(self.env.now, len(shipped))
            self.exchange.send([dest], command.cid, shipped)
            ship_start = self.env.now
            yield self.env.timeout(self.execution.base_ms)
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "move",
                                 self.node.name, ship_start, self.env.now,
                                 role="source", shipped=len(shipped))
            if self.node.profiler.enabled:
                self.node.profiler.account(self.node.name, "move",
                                           self.env.now - ship_start)
            self.node.flight("move",
                             f"shipped {len(shipped)} var(s) to {dest}")
            return
        if self.partition == dest:
            cached = self.replies.lookup(command.cid)
            if cached is not None:
                if notify:
                    self.node.send(notify, REPLY_KIND, cached, size=128)
                return
            gather_start = self.env.now
            yield from self.exchange.wait(command.cid, sources)
            received = self.exchange.collect(command.cid)
            for key, value in received.items():
                self.store.write(key, value)
            self.moves_in.increment(self.env.now, len(received))
            yield self.env.timeout(self.execution.base_ms)
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "move",
                                 self.node.name, gather_start, self.env.now,
                                 role="dest", received=len(received))
            if self.node.profiler.enabled:
                self.node.profiler.account(self.node.name, "move",
                                           self.env.now - gather_start)
            self.node.flight("move",
                             f"installed {len(received)} var(s)")
            reply = Reply(cid=command.cid, status=ReplyStatus.OK,
                          value={"moved": len(received)},
                          sender=self.node.name, partition=self.partition)
            self.replies.store(command.cid, reply)
            if notify:
                self.node.send(notify, REPLY_KIND, reply, size=128)

    # -- create / delete (coordinated with the oracle) -----------------------

    def _exec_create(self, command: Command, dests: tuple):
        key = command.variables[0]
        # Signal exchange with the oracle (both sides send, then wait); the
        # oracle's signal carries the verdict of the create/create race.
        self.exchange.send([ORACLE_GROUP], command.cid, {})
        exchange_start = self.env.now
        yield from self.exchange.wait(command.cid, {ORACLE_GROUP})
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "exchange",
                             self.node.name, exchange_start, self.env.now,
                             peers=1)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "exchange",
                                       self.env.now - exchange_start)
        verdict = self.exchange.collect(command.cid).get("verdict")
        if verdict != "ok" or key in self.store:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value="exists", sender=self.node.name,
                         partition=self.partition)
        self.store.create(
            key, self.state_machine.initial_value(key, command.args))
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value="created",
                     sender=self.node.name, partition=self.partition)

    def _exec_delete(self, command: Command, dests: tuple):
        key = command.variables[0]
        self.exchange.send([ORACLE_GROUP], command.cid, {})
        exchange_start = self.env.now
        yield from self.exchange.wait(command.cid, {ORACLE_GROUP})
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "exchange",
                             self.node.name, exchange_start, self.env.now,
                             peers=1)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "exchange",
                                       self.env.now - exchange_start)
        verdict = self.exchange.collect(command.cid).get("verdict")
        if verdict != "ok" or key not in self.store:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value="missing", sender=self.node.name,
                         partition=self.partition)
        self.store.delete(key)
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value="deleted",
                     sender=self.node.name, partition=self.partition)
