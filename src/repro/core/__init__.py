"""DS-SMR — Dynamic Scalable State Machine Replication (the paper's core).

DS-SMR replaces S-SMR's static variable→partition mapping with a *dynamic*
mapping managed by a replicated oracle service:

* Clients **consult** the oracle (or their location cache) to learn where a
  command's variables live.
* Commands whose variables span several partitions trigger **move**
  commands that first gather all variables in one destination partition;
  the command then executes there as a cheap single-partition command.
* Partitions answer **retry** when a command arrives after its variables
  moved away; after a bounded number of retries the client **falls back**
  to S-SMR-style execution across all partitions, guaranteeing termination.
* A client-side **location cache** lets most commands skip the oracle
  entirely.

Over time, variables that are accessed together gravitate to the same
partition, turning multi-partition workloads into single-partition ones —
the source of DS-SMR's scalability.
"""

from repro.core.prophecy import Prophecy, ProphecyStatus
from repro.core.policy import LeastLoadedCreatePolicy, MajorityTargetPolicy, OraclePolicy
from repro.core.oracle import OracleReplica, ORACLE_GROUP
from repro.core.server_proxy import DssmrServer
from repro.core.client_proxy import DssmrClient

__all__ = [
    "DssmrClient",
    "DssmrServer",
    "LeastLoadedCreatePolicy",
    "MajorityTargetPolicy",
    "ORACLE_GROUP",
    "OraclePolicy",
    "OracleReplica",
    "Prophecy",
    "ProphecyStatus",
]
