"""DS-SMR client proxy (Algorithm 2 of the paper + the location cache).

The proxy hides partitioning from the application: it consults the oracle
(or the local cache), triggers moves for multi-partition commands, retries
when a partition replies that variables moved away, and falls back to
S-SMR-style all-partition execution after ``max_retries`` attempts so that
every command terminates.

Two retry layers coexist and must not be confused:

* *algorithm attempts* — Algorithm 2's do/while iterations (re-consult
  after a ``retry`` reply, fall back after ``max_retries``); these change
  the attempt tag on the command envelope.
* *network resends* — timeout-driven re-multicasts of the *same* logical
  step under fresh uids (:class:`~repro.resilience.RetryPolicy`); servers
  deduplicate by command id, so resends are exactly-once. A lost oracle
  notification for a synchronous move is recovered by re-consulting: the
  consult is idempotent and reports the post-move locations.

Metrics counted per client (and aggregated by the harness): consults, cache
hits, retries, moves initiated and fallbacks — the quantities behind the
motivation and oracle-load figures.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net import Message, Network
from repro.ordering import GroupDirectory
from repro.resilience import RequestTimeout, RetryPolicy, with_timeout
from repro.sim import Environment, LatencyRecorder
from repro.smr.client import BaseClient
from repro.smr.command import Command, CommandType, Reply, ReplyStatus, new_command_id
from repro.core.oracle import ORACLE_GROUP, PROPHECY_KIND
from repro.core.prophecy import Prophecy, ProphecyStatus


class DssmrClient(BaseClient):
    """Client of a DS-SMR deployment."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str,
                 partitions: tuple[str, ...],
                 max_retries: int = 3,
                 use_cache: bool = True,
                 latency: Optional[LatencyRecorder] = None,
                 broadcast_submit: bool = False,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 tracer=None):
        super().__init__(env, network, directory, name, latency,
                         broadcast_submit=broadcast_submit,
                         retry_policy=retry_policy, rng=rng, tracer=tracer)
        self.partitions = tuple(partitions)
        self.max_retries = max_retries
        self.use_cache = use_cache
        self.location_cache: dict = {}
        # Last configuration epoch observed in a prophecy; a newer epoch
        # flushes the location cache (entries may point at partitions the
        # reconfiguration drained). See repro.reconfig.
        self.config_epoch = 0
        self.epoch_flushes = 0
        self._prophecy_waits: dict[str, object] = {}
        # Metrics.
        self.consult_count = 0
        self.cache_hits = 0
        self.retry_count = 0
        self.fallback_count = 0
        self.moves_initiated = 0
        self.node.on(PROPHECY_KIND, self._on_prophecy)

    # -- prophecy plumbing -----------------------------------------------------

    def _on_prophecy(self, message: Message) -> None:
        payload = message.payload
        event = self._prophecy_waits.pop(payload["cid"], None)
        if event is not None:
            event.succeed(payload["prophecy"])

    def _consult(self, command: Command, attempt: int):
        """Generator: ask the oracle about ``command``; returns the prophecy.

        Consults are idempotent at the oracle (pure recompute + resend), so
        a timed-out consult is simply re-multicast under a fresh uid.
        """
        self.consult_count += 1
        consult_cid = f"{command.cid}:c{attempt}"
        consult = Command(op="consult", ctype=CommandType.CONSULT,
                          variables=command.variables,
                          args={"inner_ctype": command.ctype.value},
                          cid=consult_cid, client=self.name)
        policy = self.retry_policy
        sends = 0
        while True:
            sends += 1
            event = self.env.event()
            self._prophecy_waits[consult_cid] = event
            if self.tracer.enabled:
                self.tracer.mark_send(consult_cid, self.env.now)
            wait_start = self.env.now
            self.mcast.multicast([ORACLE_GROUP],
                                 {"command": consult},
                                 size=consult.payload_size(),
                                 uid=self.next_uid(f"am:{consult_cid}"))
            if sends > 1:
                self.resends += 1
            fired, prophecy = yield from with_timeout(
                self.env, event, policy.timeout_ms if policy else None)
            if fired:
                if prophecy.status is ProphecyStatus.OVERLOAD:
                    # Consult shed by the oracle's admission control —
                    # explicit backpressure on the prophecy channel.
                    self.trace_stage(consult_cid, "consult", wait_start,
                                     overload=True)
                    self.overload_replies += 1
                    self._note_congestion()
                    self.node.flight("qos", f"{consult_cid} overload "
                                            f"({prophecy.reason})")
                    if policy is not None and policy.gives_up(sends):
                        raise RequestTimeout(consult_cid, sends)
                    yield from self.acquire_retry(consult_cid)
                    backoff_start = self.env.now
                    yield self.env.timeout(self.overload_backoff_ms(sends))
                    self.trace_stage(consult_cid, "retry-wait",
                                     backoff_start)
                    continue
                self.trace_stage(consult_cid, "consult", wait_start)
                self._note_success()
                return prophecy
            self.trace_stage(consult_cid, "consult", wait_start, timeout=True)
            self._prophecy_waits.pop(consult_cid, None)
            self.timeouts += 1
            self._note_congestion()
            if policy.gives_up(sends):
                raise RequestTimeout(consult_cid, sends)
            yield from self.acquire_retry(consult_cid)
            backoff_start = self.env.now
            yield self.env.timeout(policy.backoff_ms(sends, self._rng))
            self.trace_stage(consult_cid, "retry-wait", backoff_start)

    # -- main entry point -----------------------------------------------------

    def run_command(self, command: Command):
        """Generator: execute one command; returns the final :class:`Reply`.

        Implements the do/while loop of Algorithm 2, including the cache
        fast path and the S-SMR fallback.
        """
        command.client = self.name
        start = self.env.now
        self.tracer.begin_trace(command.cid, self.name, start, op=command.op)
        attempt = 0
        fell_back = False
        while True:
            attempt += 1
            if attempt > self.max_retries + 1:
                reply = yield from self._fallback(command, attempt)
                fell_back = True
                break
            route = yield from self._route(command, attempt)
            if route is None:
                # Routing could not converge (concurrent moves kept the
                # variables apart through a full round of re-consults);
                # burn an algorithm attempt so the do/while eventually
                # reaches the fallback and the command still terminates.
                self.retry_count += 1
                self._invalidate_cache(command)
                continue
            if isinstance(route, Reply):
                reply = route       # terminal answer from the oracle
                break
            reply = yield from self._attempt(command, route, attempt)
            if reply.status is not ReplyStatus.RETRY:
                break
            self.retry_count += 1
            self._invalidate_cache(command)
        if (reply.status is ReplyStatus.OK
                and command.ctype is CommandType.ACCESS
                and not fell_back and reply.partition):
            # A fallback execution leaves variables spread across
            # partitions, so its reply must not populate the cache.
            for key in command.variables:
                self.location_cache[key] = reply.partition
        self.latency.record(self.env.now, self.env.now - start)
        self.tracer.end_trace(command.cid, self.env.now,
                              status=reply.status.value, attempts=attempt,
                              fallback=fell_back)
        self.profile_command(command.cid, start)
        return reply

    # -- routing: cache or oracle ------------------------------------------------

    def _route(self, command: Command, attempt: int):
        """Generator: decide dests; returns envelope info, a terminal
        Reply, or ``None`` when routing did not converge within a bounded
        number of consult rounds (the caller burns an attempt, so the
        fallback stays reachable and every command terminates)."""
        if (self.use_cache and command.ctype is CommandType.ACCESS
                and command.variables):
            cached = {self.location_cache.get(key)
                      for key in command.variables}
            if None not in cached and len(cached) == 1:
                self.cache_hits += 1
                return {"dests": [cached.pop()]}
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.max_retries + 1:
                return None
            prophecy = yield from self._consult(command, attempt)
            if prophecy.epoch > self.config_epoch:
                self.config_epoch = prophecy.epoch
                self.location_cache.clear()
                self.epoch_flushes += 1
            if prophecy.status is ProphecyStatus.NOK:
                return Reply(cid=command.cid, status=ReplyStatus.NOK,
                             value=prophecy.reason, sender=ORACLE_GROUP)
            if prophecy.status is ProphecyStatus.OK:
                return Reply(cid=command.cid, status=ReplyStatus.OK,
                             value=prophecy.reason, sender=ORACLE_GROUP)
            self.location_cache.update(prophecy.tuples)
            if command.ctype in (CommandType.CREATE, CommandType.DELETE):
                return {"dests": [prophecy.target or
                                  next(iter(prophecy.partitions))],
                        "with_oracle": True}
            dests = sorted(prophecy.partitions)
            if len(dests) <= 1:
                return {"dests": dests}
            # Multi-partition access: gather everything at the target first.
            target = prophecy.target
            if prophecy.sync:
                # The oracle already issued the move; wait for the
                # destination partition's acknowledgement. If it is lost,
                # re-consult: the oracle reports the post-move locations,
                # so the loop converges without re-issuing the move.
                policy = self.retry_policy
                event = self.wait_reply(prophecy.move_cid)
                wait_start = self.env.now
                fired, _ = yield from with_timeout(
                    self.env, event,
                    policy.timeout_ms if policy else None)
                if not fired:
                    self.trace_stage(prophecy.move_cid, "move", wait_start,
                                     sync=True, timeout=True)
                    self.cancel_wait(prophecy.move_cid)
                    self.timeouts += 1
                    continue
                self.trace_stage(prophecy.move_cid, "move", wait_start,
                                 sync=True)
                for key in command.variables:
                    self.location_cache[key] = target
                return {"dests": [target]}
            yield from self._move(command, prophecy, target, attempt)
            return {"dests": [target]}

    def _move(self, command: Command, prophecy: Prophecy, target: str,
              attempt: int):
        """Generator: client-issued move of the command's variables."""
        variables = tuple(v for v, p in prophecy.tuples.items()
                          if p != target)
        sources = sorted({p for p in prophecy.tuples.values()
                          if p != target})
        move_cid = f"{command.cid}:m{attempt}"
        move = Command(op="move", ctype=CommandType.MOVE,
                       variables=variables,
                       args={"sources": sources, "dest": target,
                             "notify": self.name},
                       cid=move_cid, client=self.name)
        self.moves_initiated += len(variables)
        dests = sorted({ORACLE_GROUP, target, *sources})

        def send() -> None:
            self.mcast.multicast(dests, {"command": move, "dests": dests},
                                 size=move.payload_size(),
                                 uid=self.next_uid(f"am:{move_cid}"))

        # Destination partition confirms the variables arrived; moves are
        # deduplicated by command id at every participant, so resends are
        # exactly-once.
        yield from self.send_with_retries(move_cid, send, stage="move")
        for key in variables:
            self.location_cache[key] = target

    # -- attempts ------------------------------------------------------------------

    def _attempt(self, command: Command, route: dict, attempt: int):
        """Generator: one multicast of the command itself."""
        dests = list(route["dests"])
        groups = sorted(set(dests) | ({ORACLE_GROUP}
                                      if route.get("with_oracle") else set()))
        if command.ctype in (CommandType.CREATE, CommandType.DELETE):
            command.args = dict(command.args, partition=dests[0])
        envelope = {"command": command, "dests": dests, "attempt": attempt}

        def send() -> None:
            self.mcast.multicast(groups, envelope,
                                 size=command.payload_size(),
                                 uid=self.next_uid(f"am:{command.cid}:a{attempt}"))

        reply: Reply = yield from self.send_with_retries(
            command.cid, send, expected_attempt=attempt)
        return reply

    def _fallback(self, command: Command, attempt: int):
        """Generator: S-SMR-style execution across all partitions."""
        self.fallback_count += 1
        dests = sorted(self.partitions)
        envelope = {"command": command, "dests": dests, "mode": "fallback",
                    "attempt": attempt}

        def send() -> None:
            self.mcast.multicast(dests, envelope,
                                 size=command.payload_size(),
                                 uid=self.next_uid(f"am:{command.cid}:a{attempt}"))

        reply: Reply = yield from self.send_with_retries(
            command.cid, send, expected_attempt=attempt)
        return reply

    # -- cache ---------------------------------------------------------------------

    def _invalidate_cache(self, command: Command) -> None:
        for key in command.variables:
            self.location_cache.pop(key, None)

    # -- reconfiguration ------------------------------------------------------------

    def update_partitions(self, partitions) -> None:
        """Install the post-reconfiguration partition view.

        Called by the harness once a join/leave completes; the fallback
        path multicasts to ``self.partitions``, so a stale view would
        miss the newcomer (or address a retired partition) there. Cached
        locations pointing at a removed partition are dropped.
        """
        partitions = tuple(partitions)
        removed = set(self.partitions) - set(partitions)
        self.partitions = partitions
        if removed:
            for key in [k for k, p in self.location_cache.items()
                        if p in removed]:
                del self.location_cache[key]

    # -- hints (used by graph-partitioned oracle deployments) ---------------------

    def send_hint(self, vertices, edges) -> None:
        """Inform the oracle's workload graph (fire-and-forget, ordered)."""
        hint_cid = new_command_id(self.name)
        self.mcast.multicast([ORACLE_GROUP], {
            "hint": {"vertices": list(vertices),
                     "edges": [list(edge) for edge in edges]},
        }, size=96 + 16 * len(edges), uid=f"am:{hint_cid}")
