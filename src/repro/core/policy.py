"""Oracle policies: where to create variables and where to gather them.

The oracle is parameterised by a policy object so the decentralised DS-SMR
heuristics and the graph-partitioned extension (:mod:`repro.dynastar`) plug
into the same replicated oracle. Policies must be **deterministic**: every
oracle replica runs the same policy on the same delivered state and must
make identical choices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

from repro.graph.baselines import stable_hash

Key = Hashable


class OraclePolicy(ABC):
    """Decides destination partitions for creates and multi-partition moves.

    ``sizes`` is the oracle's incrementally maintained variable count per
    partition — policies use it for load-aware decisions without an O(n)
    scan of the location map on every consult.
    """

    @abstractmethod
    def partition_for_create(self, key: Key, location: Mapping[Key, str],
                             partitions: Sequence[str],
                             sizes: Mapping[str, int]) -> str:
        """Partition where a new variable should be created."""

    @abstractmethod
    def target_for_access(self, variables: Iterable[Key],
                          location: Mapping[Key, str],
                          partitions: Sequence[str],
                          sizes: Mapping[str, int]) -> str:
        """Partition where a multi-partition command's variables gather."""

    def on_hint(self, vertices: Iterable[Key],
                edges: Iterable[tuple[Key, Key]],
                location: Mapping[Key, str]) -> float:
        """Ingest a workload hint.

        ``location`` is the oracle's current variable→partition mapping
        (read-only). Returns the simulated CPU cost (ms) of any
        repartitioning the hint triggered, or 0.0. The base policies ignore
        hints — only the graph-partitioned oracle extension uses them.
        """
        return 0.0

    def on_create(self, key: Key, partition: str) -> None:
        """Notification that ``key`` was created in ``partition``."""

    def on_delete(self, key: Key) -> None:
        """Notification that ``key`` was deleted."""


class LeastLoadedCreatePolicy:
    """Mixin: create new variables in the currently smallest partition.

    Deterministic and keeps partitions balanced, which is what the DS-SMR
    prototype's default creation rule does. Sizes are maintained by the
    oracle from the delivered command sequence, so every replica computes
    the same answer.
    """

    def partition_for_create(self, key: Key, location: Mapping[Key, str],
                             partitions: Sequence[str],
                             sizes: Mapping[str, int]) -> str:
        return min(partitions, key=lambda p: (sizes.get(p, 0), p))


class MajorityTargetPolicy(LeastLoadedCreatePolicy, OraclePolicy):
    """Decentralised DS-SMR heuristic: gather variables where most already are.

    The destination of a multi-partition command is the involved partition
    holding the largest share of the command's variables (fewest values to
    ship). Ties go to the least-loaded involved partition (then a stable
    hash of the variable set) — a fixed favourite partition would win every
    early tie and snowball the whole state into one partition.
    """

    def target_for_access(self, variables: Iterable[Key],
                          location: Mapping[Key, str],
                          partitions: Sequence[str],
                          sizes: Mapping[str, int]) -> str:
        variables = list(variables)
        holders = Counter(location[v] for v in variables if v in location)
        if not holders:
            return partitions[0]
        salt = stable_hash(tuple(sorted(map(repr, variables))))
        return min(holders,
                   key=lambda p: (-holders[p], sizes.get(p, 0),
                                  stable_hash(p) ^ salt))
