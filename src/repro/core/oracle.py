"""The replicated DS-SMR oracle (Algorithm 4 of the paper).

The oracle is a replicated service in its own server group. It maintains the
dynamic variable→partition mapping and answers consults:

* **Task 1 — consult.** For a create, pick the new variable's partition
  (policy) and tell the client where to multicast. For an access, return the
  involved partitions; when they span several partitions, pick the gather
  destination (policy) and — if the oracle is configured to issue moves
  itself (the graph-partitioned extension) — atomically multicast the move
  and tell the client to synchronise on it.
* **Task 2 — create.** Update the mapping and exchange a signal with the
  creating partition (the linearizability coordination of multi-partition
  commands, specialised to {oracle, partition}).
* **Task 3 — move.** Update the mapping; no coordination needed — a move
  cannot interleave with a create, and racing moves merely cause client
  retries.
* **Tasks 5/6 — hints & repartitioning.** Ingest workload hints and
  periodically recompute an ideal partitioning (policy; deterministic on
  every replica because hints arrive through the ordered log).

The oracle replica charges simulated CPU time per request into a
:class:`~repro.sim.monitor.BusyTracker` — the measurement behind the
"oracle CPU load" experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.net import Network
from repro.obs.tracing import NULL_TRACER, trace_id_of
from repro.ordering import (AmcastDelivery, AtomicMulticast, GroupDirectory,
                            ProtocolNode, ReliableMulticast, SequencerLog)
from repro.resilience import ReplyCache
from repro.sim import BusyTracker, Channel, Counter, Environment, Interrupted
from repro.smr.command import Command, CommandType, Reply, ReplyStatus, new_command_id
from repro.smr.replica import REPLY_KIND, delivery_command
from repro.core.policy import MajorityTargetPolicy, OraclePolicy
from repro.core.prophecy import Prophecy, ProphecyStatus
from repro.ssmr.exchange import ExchangeBuffer

ORACLE_GROUP = "oracle"
PROPHECY_KIND = "prophecy"
# Oracle -> ReconfigurationManager acknowledgement of an ordered
# reconfiguration entry (see repro.reconfig.manager).
RECONFIG_ACK_KIND = "reconfig/ack"


class OracleReplica:
    """One replica of the DS-SMR partitioning oracle."""

    #: Simulated CPU cost of oracle request handling, in ms.
    CONSULT_COST = 0.02
    PER_VARIABLE_COST = 0.004

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str,
                 partitions: tuple[str, ...],
                 policy: Optional[OraclePolicy] = None,
                 oracle_issues_moves: bool = False,
                 async_repartition: bool = False,
                 log_factory=SequencerLog,
                 speaker_only: bool = True,
                 dedup: bool = True,
                 tracer=None):
        self.env = env
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.partitions = tuple(partitions)
        self.directory = directory
        self.node = ProtocolNode(env, network, name)
        self.log = log_factory(self.node, directory, ORACLE_GROUP)
        self.amcast = AtomicMulticast(self.node, directory, self.log,
                                      speaker_only=speaker_only)
        self.rmcast = ReliableMulticast(self.node, directory)
        self.exchange = ExchangeBuffer(env, self.rmcast, ORACLE_GROUP)
        self.policy = policy or MajorityTargetPolicy()
        self.oracle_issues_moves = oracle_issues_moves
        # Asynchronous repartitioning (paper, implementation section): the
        # oracle is "multi-threaded, and can service requests while
        # computing a new partitioning concurrently"; replicas switch to
        # the new partitioning consistently by atomically multicasting its
        # unique id. Requires a policy with ingest/compute/install split
        # (the graph-partitioned policy).
        self.async_repartition = (async_repartition
                                  and hasattr(self.policy, "ingest_hint"))
        self._next_partitioning_id = 0
        self._pending_ideals: dict[int, dict] = {}
        self._repartition_inflight = False

        # Re-delivered creates/deletes (client resends) must not re-run
        # Task 2 — the verdict would flip ("exists"/"missing") and race the
        # partition's cached reply — so the oracle caches its replies too.
        self.replies = ReplyCache(enabled=dedup)

        # The dynamic mapping: variable key -> partition name, plus the
        # incrementally maintained variable count per partition.
        self.location: dict = {}
        self.partition_sizes: dict[str, int] = {p: 0 for p in self.partitions}
        # Bumped on every ordered map change; replica-consistent because
        # all changes happen in ordered-delivery execution. Oracle-issued
        # move ids embed it so a re-consult against a *changed* map issues
        # a genuinely new move instead of colliding with (and being
        # uid-deduplicated against) the one issued for the old map — the
        # fuzzer's minimal repro for that livelock is a sequencer blackout
        # that delays one consult until a concurrent client has moved one
        # of its variables away again.
        self.map_version = 0

        # Elastic reconfiguration state (repro.reconfig): the configuration
        # epoch (bumped per ordered join/leave-begin entry), partitions
        # draining out, partitions fully retired, cached acknowledgements
        # for re-delivered reconfiguration entries, and the per-partition
        # leave-commit attempt counter (each commit retry re-plans the
        # leftover keys under fresh move ids).
        self.epoch = 0
        self.draining: set[str] = set()
        self.retired: set[str] = set()
        self._reconfig_acks: dict[tuple[str, str], dict] = {}
        self._commit_attempts: dict[str, int] = {}

        # Metrics.
        self.busy = BusyTracker(f"{name}/busy")
        self.busy_background = BusyTracker(f"{name}/busy-background")
        self.consults = Counter(f"{name}/consults")
        self.moves_issued = Counter(f"{name}/moves")
        self.repartitions = Counter(f"{name}/repartitions")
        self.reconfigs = Counter(f"{name}/reconfigs")
        self.evacuations = Counter(f"{name}/evacuations")

        self.queue_peak = 0
        # Overload control (repro.qos), attached by the harness; None
        # keeps the intake/executor hot paths in their pre-QoS shape.
        self.qos = None
        # Write-ahead log (repro.store), attached by the harness; None
        # keeps the executor free of durability barriers.
        self.wal = None
        # Delivery uids marked as replayed history by a durable cold
        # start (see repro.store.coldstart): their state effects are
        # re-applied, but no message leaves the node and no cost is
        # charged — the original execution already paid both.
        self._replay_uids: set[str] = set()
        self._enqueue_times: dict[str, float] = {}
        self._deliveries = Channel(env, name=f"{name}/deliveries")
        self.amcast.on_deliver(self._enqueue)
        self._executor = env.process(self._execute_loop(),
                                     name=f"{name}/executor")

    # -- lifecycle ------------------------------------------------------------

    def crash(self) -> None:
        self.node.crash()
        self._executor.interrupt("crash")

    def preload_locations(self, location: dict) -> None:
        """Install an initial mapping (used when state is bulk-loaded)."""
        for key, partition in location.items():
            self._relocate(key, partition)

    def _relocate(self, key, partition) -> None:
        """Point ``key`` at ``partition``, keeping the size counters true."""
        old = self.location.get(key)
        if old == partition:
            return
        self.map_version += 1
        if old is not None:
            self.partition_sizes[old] = self.partition_sizes.get(old, 1) - 1
        self.location[key] = partition
        # get() tolerates a late relocation onto a retired partition (its
        # size entry was dropped at leave-commit; evacuation moves it off).
        self.partition_sizes[partition] = \
            self.partition_sizes.get(partition, 0) + 1

    def _forget(self, key) -> None:
        old = self.location.pop(key, None)
        if old is not None:
            self.map_version += 1
            self.partition_sizes[old] = self.partition_sizes.get(old, 1) - 1

    # -- delivery intake --------------------------------------------------------

    def _enqueue(self, delivery: AmcastDelivery) -> None:
        """Queue an ordered delivery for the executor (tracing tap).

        Mirrors the replica servers' intake: emits the *order* server span
        for commands with a marked send time, stamps the enqueue time for
        the *queue* span, and tracks the peak oracle-queue depth (the
        oracle hot-spot signal). Hint/activation payloads carry no command
        and get queue accounting only.
        """
        if self.tracer.enabled:
            command = delivery_command(delivery.payload)
            if command is not None:
                sent = self.tracer.sent_at(command.cid)
                if sent is not None:
                    self.tracer.span(trace_id_of(command.cid), "order",
                                     self.node.name, sent, self.env.now,
                                     uid=delivery.uid)
                    if self.node.profiler.enabled:
                        self.node.profiler.account(
                            self.node.name, "order", self.env.now - sent)
        if (self.tracer.enabled or self.node.profiler.enabled
                or self.qos is not None):
            self._enqueue_times[delivery.uid] = self.env.now
        self._deliveries.put(delivery)
        depth = len(self._deliveries) or 1
        if depth > self.queue_peak:
            self.queue_peak = depth

    # -- overload control (repro.qos) ----------------------------------------

    def queue_depth(self) -> int:
        """Current oracle-queue depth (the adaptive batching signal)."""
        return len(self._deliveries)

    def attach_qos(self, admission, batcher=None, classify=None) -> None:
        """Attach overload control to this oracle replica.

        The oracle group gets the same sequencer-side admission as the
        partitions — consult floods are the oracle's overload mode. Shed
        consults are answered with an ``OVERLOAD`` prophecy (the consult
        reply channel), everything else with an ``OVERLOAD`` reply.
        """
        self.qos = admission
        if hasattr(self.log, "attach_qos"):
            self.log.attach_qos(admission=admission, batcher=batcher,
                                on_shed=self._shed_reply, classify=classify)

    def _shed_reply(self, entry: dict, reason: str) -> None:
        payload = entry.get("payload")
        command = delivery_command(payload)
        if command is None or not command.client:
            return
        if command.ctype is CommandType.CONSULT:
            prophecy = Prophecy(status=ProphecyStatus.OVERLOAD,
                                reason=reason, epoch=self.epoch)
            self.node.send(command.client, PROPHECY_KIND,
                           {"cid": command.cid, "prophecy": prophecy},
                           size=96)
        else:
            attempt = (payload.get("attempt", 1)
                       if isinstance(payload, dict) else 1)
            self.node.send(command.client, REPLY_KIND, Reply(
                cid=command.cid, status=ReplyStatus.OVERLOAD, value=reason,
                sender=self.node.name, partition=ORACLE_GROUP,
                attempt=attempt), size=96)
        self.node.flight("qos", f"shed {command.cid} ({reason})")

    # -- executor ---------------------------------------------------------------

    def _execute_loop(self):
        try:
            while True:
                delivery: AmcastDelivery = yield self._deliveries.get()
                if (self.wal is not None
                        and delivery.uid not in self._replay_uids):
                    # Durability barrier (repro.store): the ordered map
                    # change must be on disk before any verdict or
                    # prophecy derived from it leaves this replica.
                    yield self.wal.sync_barrier()
                if (self.tracer.enabled or self.node.profiler.enabled
                        or self.qos is not None):
                    enqueued = self._enqueue_times.pop(delivery.uid, None)
                    if self.qos is not None and enqueued is not None:
                        self.qos.note_sojourn(self.env.now,
                                              self.env.now - enqueued)
                    command = delivery_command(delivery.payload)
                    if (command is not None and enqueued is not None
                            and self.env.now > enqueued):
                        if self.tracer.enabled:
                            self.tracer.span(trace_id_of(command.cid),
                                             "queue", self.node.name,
                                             enqueued, self.env.now)
                        if self.node.profiler.enabled:
                            self.node.profiler.account(
                                self.node.name, "queue",
                                self.env.now - enqueued)
                started = self.env.now
                yield from self._handle_delivery(delivery)
                if self.env.now > started:
                    self.busy.add_busy(started, self.env.now - started)
                    # Mirrors the BusyTracker: the whole handler (consult,
                    # create/delete signal exchange, reconfig planning,
                    # hint ingestion) is the oracle's "execute" stage.
                    if self.node.profiler.enabled:
                        self.node.profiler.account(
                            self.node.name, "execute",
                            self.env.now - started)
        except Interrupted:
            return

    def _handle_delivery(self, delivery: AmcastDelivery):
        if delivery.uid in self._replay_uids:
            self._replay_uids.discard(delivery.uid)
            self._replay_delivery(delivery)
            return
        envelope = delivery.payload
        if "hint" in envelope:
            yield from self._task_hint(envelope["hint"])
            return
        if "activate_partitioning" in envelope:
            self._task_activate(envelope["activate_partitioning"])
            return
        if "reconfig" in envelope:
            yield from self._task_reconfig(envelope["reconfig"])
            return
        command: Command = envelope["command"]
        attempt = envelope.get("attempt", 1)
        cost = self.CONSULT_COST + self.PER_VARIABLE_COST * len(
            command.variables)
        exec_start = self.env.now
        yield self.env.timeout(cost)
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now,
                             task=command.ctype.value)
        if command.ctype is CommandType.CONSULT:
            self._task_consult(command)
        elif command.ctype is CommandType.CREATE:
            yield from self._task_create(command, attempt)
        elif command.ctype is CommandType.DELETE:
            yield from self._task_delete(command, attempt)
        elif command.ctype is CommandType.MOVE:
            self._task_move(command)
        else:
            raise ValueError(
                f"oracle cannot execute {command.ctype.value!r} commands")

    # -- Task 1: consult ----------------------------------------------------

    def _task_consult(self, command: Command) -> None:
        self.consults.increment(self.env.now)
        inner_ctype = command.args["inner_ctype"]
        if inner_ctype == "create":
            prophecy = self._consult_create(command)
        else:
            prophecy = self._consult_access(command)
        self._send_prophecy(command, prophecy)

    def _consult_create(self, command: Command) -> Prophecy:
        key = command.variables[0]
        if key in self.location:
            return Prophecy(status=ProphecyStatus.NOK,
                            reason="variable already exists")
        target = self.policy.partition_for_create(key, self.location,
                                                  self.partitions,
                                                  self.partition_sizes)
        return Prophecy(status=ProphecyStatus.LOCATIONS,
                        tuples={key: target}, target=target)

    def _consult_access(self, command: Command) -> Prophecy:
        missing = [v for v in command.variables if v not in self.location]
        if missing:
            return Prophecy(status=ProphecyStatus.NOK,
                            reason=f"unknown variables: {missing[:3]}")
        tuples = {v: self.location[v] for v in command.variables}
        dests = set(tuples.values())
        if len(dests) <= 1:
            return Prophecy(status=ProphecyStatus.LOCATIONS, tuples=tuples)
        target = self.policy.target_for_access(command.variables,
                                               self.location, self.partitions,
                                               self.partition_sizes)
        prophecy = Prophecy(status=ProphecyStatus.LOCATIONS, tuples=tuples,
                            target=target)
        if self.oracle_issues_moves:
            # The map version distinguishes re-consults of the same command
            # against a changed map (new move needed, new id) from plain
            # resends of the same consult (same version, same id — the
            # ordered logs then deduplicate the duplicate move).
            move_cid = f"{command.cid}:omove:v{self.map_version}"
            self._issue_move(command, tuples, target, move_cid)
            prophecy.sync = True
            prophecy.move_cid = move_cid
        return prophecy

    def _issue_move(self, command: Command, tuples: dict, target: str,
                    move_cid: str) -> None:
        """Oracle-issued move (graph-partitioned mode, Algorithm 4 Task 1)."""
        variables = tuple(v for v, p in tuples.items() if p != target)
        sources = sorted({p for v, p in tuples.items() if p != target})
        move = Command(op="move", ctype=CommandType.MOVE,
                       variables=variables,
                       args={"sources": sources, "dest": target,
                             "notify": command.client},
                       cid=move_cid, client=command.client)
        dests = [ORACLE_GROUP, target] + sources
        envelope = {"command": move, "dests": sorted(set(dests))}
        if self.tracer.enabled and self.tracer.sent_at(move_cid) is None:
            # First replica to issue wins the mark: the move's *order*
            # span measures from the earliest issue to delivery.
            self.tracer.mark_send(move_cid, self.env.now)
        # Every oracle replica multicasts with the same uid; the ordered
        # logs deduplicate, so exactly one move is ordered.
        self.amcast.multicast(sorted(set(dests)), envelope,
                              size=move.payload_size(), uid=f"am:{move_cid}")
        self.moves_issued.increment(self.env.now, len(variables))
        self.node.flight("move", f"issued {move_cid} -> {target}")

    # -- Task 2: create / delete ----------------------------------------------

    def _task_create(self, command: Command, attempt: int = 1):
        if self._resend_cached(command, attempt):
            return
        key = command.variables[0]
        partition = command.args["partition"]
        # The verdict rides on the signal: a create that lost the race
        # against another create must still unblock the waiting partition,
        # which only installs the variable on an "ok" verdict.
        verdict = "nok" if key in self.location else "ok"
        self.exchange.send([partition], command.cid, {"verdict": verdict})
        yield from self.exchange.wait(command.cid, {partition})
        self.exchange.collect(command.cid)
        if verdict == "ok":
            self._relocate(key, partition)
            self.policy.on_create(key, partition)
            # A create consulted before a leave fence may land on a
            # draining/retired partition; move it to a live one.
            self._maybe_evacuate(command.cid, (key,), partition)
            self._reply(command, ReplyStatus.OK, "created", attempt)
        else:
            self._reply(command, ReplyStatus.NOK, "exists", attempt)

    def _task_delete(self, command: Command, attempt: int = 1):
        if self._resend_cached(command, attempt):
            return
        key = command.variables[0]
        partition = command.args["partition"]
        current = self.location.get(key)
        verdict = "ok" if current == partition else "nok"
        self.exchange.send([partition], command.cid, {"verdict": verdict})
        yield from self.exchange.wait(command.cid, {partition})
        self.exchange.collect(command.cid)
        if verdict == "ok":
            self._forget(key)
            self.policy.on_delete(key)
            self._reply(command, ReplyStatus.OK, "deleted", attempt)
        else:
            self._reply(command, ReplyStatus.NOK, "missing", attempt)

    def _resend_cached(self, command: Command, attempt: int) -> bool:
        cached = self.replies.lookup(command.cid, attempt)
        if cached is None:
            return False
        if command.client:
            self.node.send(command.client, REPLY_KIND, cached, size=128)
        return True

    # -- Task 3: move -----------------------------------------------------------

    def _task_move(self, command: Command) -> None:
        dest = command.args["dest"]
        sources = set(command.args.get("sources", ()))
        moved = []
        for key in command.variables:
            location = self.location.get(key)
            if location is None:
                continue
            if sources and location not in sources and location != dest:
                # The variable moved elsewhere after this move was issued
                # (the move raced a concurrent move): the planned source
                # no longer holds it and ships nothing, so relocating the
                # map entry would strand the value — the map must keep
                # following the ordered move log, not the stale plan.
                continue
            self._relocate(key, dest)
            moved.append(key)
        if not self.oracle_issues_moves:
            self.moves_issued.increment(self.env.now,
                                        len(command.variables))
        # A client-issued move whose target was consulted before a leave
        # fence may gather variables on a draining/retired partition.
        if moved:
            self._maybe_evacuate(command.cid, tuple(moved), dest)

    # -- Task 4: elastic reconfiguration (repro.reconfig) -----------------------

    #: Keys per bulk-migration move during join/leave rebalancing.
    RECONFIG_BATCH = 4

    def _task_reconfig(self, spec: dict):
        """Apply an ordered join / leave-begin / leave-commit entry.

        Every oracle replica applies the entry at the same log position,
        so the epoch bump, the membership change and the migration plan
        are identical on all replicas. The plan (batched moves sourced
        from the epoch checkpoints the partitions capture on the same
        entry) is acknowledged to the driving
        :class:`~repro.reconfig.ReconfigurationManager`, which issues the
        moves; re-deliveries (manager retries under loss) resend the
        cached acknowledgement instead of re-planning.
        """
        kind = spec["kind"]
        partition = spec["partition"]
        yield self.env.timeout(self.CONSULT_COST)
        if kind == "join":
            ack = self._reconfig_join(partition)
        elif kind == "leave_begin":
            ack = self._reconfig_leave_begin(partition)
        elif kind == "leave_commit":
            ack = self._reconfig_leave_commit(partition)
        else:
            ack = {"error": f"unknown reconfig kind {kind!r}"}
        self._send_reconfig_ack(spec.get("manager"), spec.get("rid"),
                                kind, partition, ack)

    def _reconfig_join(self, partition: str) -> dict:
        cached = self._reconfig_acks.get(("join", partition))
        if cached is not None:
            return cached
        if partition in self.partitions:
            return {"error": f"{partition} is already a member"}
        self.retired.discard(partition)
        self.partitions = tuple(list(self.partitions) + [partition])
        self.partition_sizes.setdefault(partition, 0)
        self.epoch += 1
        self._sync_policy_partitions()
        batches = self._plan_join(partition)
        self.reconfigs.increment(self.env.now)
        ack = {"epoch": self.epoch, "batches": batches,
               "keys": sum(len(b["variables"]) for b in batches)}
        self._reconfig_acks[("join", partition)] = ack
        return ack

    def _reconfig_leave_begin(self, partition: str) -> dict:
        cached = self._reconfig_acks.get(("leave_begin", partition))
        if cached is not None:
            return cached
        if partition not in self.partitions:
            return {"error": f"{partition} is not a member"}
        remaining = tuple(p for p in self.partitions if p != partition)
        if not remaining:
            return {"error": "cannot drain the last partition"}
        self.partitions = remaining
        self.draining.add(partition)
        self.epoch += 1
        self._sync_policy_partitions()
        batches = self._plan_drain(partition, attempt=0)
        self.reconfigs.increment(self.env.now)
        ack = {"epoch": self.epoch, "batches": batches,
               "keys": sum(len(b["variables"]) for b in batches)}
        self._reconfig_acks[("leave_begin", partition)] = ack
        return ack

    def _reconfig_leave_commit(self, partition: str) -> dict:
        leftover = self.partition_sizes.get(partition, 0)
        if partition in self.partitions:
            return {"error": f"{partition} has no pending leave"}
        if leftover == 0:
            self.draining.discard(partition)
            self.retired.add(partition)
            self.partition_sizes.pop(partition, None)
            return {"epoch": self.epoch, "drained": True, "batches": [],
                    "keys": 0}
        # Keys ordered onto the draining partition after the first drain
        # plan (in-flight creates/moves): re-plan them under fresh move
        # ids; the manager retries the commit once they migrated.
        attempt = self._commit_attempts.get(partition, 0) + 1
        self._commit_attempts[partition] = attempt
        batches = self._plan_drain(partition, attempt)
        return {"epoch": self.epoch, "drained": False, "batches": batches,
                "keys": sum(len(b["variables"]) for b in batches)}

    def _plan_join(self, newcomer: str) -> list[dict]:
        """Deterministic rebalance plan: fill the newcomer to its fair
        share with sorted key batches taken from the most-loaded donors."""
        donors = [p for p in self.partitions
                  if p != newcomer and p not in self.draining]
        total = sum(self.partition_sizes.get(p, 0) for p in donors)
        fair = total // (len(donors) + 1)
        keys_by: dict[str, list] = {p: [] for p in donors}
        for key, p in self.location.items():
            if p in keys_by:
                keys_by[p].append(key)
        batches: list[dict] = []
        remaining = fair
        index = 0
        for donor in sorted(donors,
                            key=lambda p: (-self.partition_sizes.get(p, 0),
                                           p)):
            if remaining <= 0:
                break
            surplus = max(0, self.partition_sizes.get(donor, 0) - fair)
            take = min(surplus, remaining)
            if take <= 0:
                continue
            keys = sorted(keys_by[donor], key=str)[:take]
            remaining -= len(keys)
            for at in range(0, len(keys), self.RECONFIG_BATCH):
                chunk = keys[at:at + self.RECONFIG_BATCH]
                batches.append({
                    "cid": f"rcfg:e{self.epoch}:{donor}:{index}",
                    "variables": list(chunk),
                    "source": donor,
                    "dest": newcomer,
                })
                index += 1
        return batches

    def _plan_drain(self, partition: str, attempt: int) -> list[dict]:
        """Redistribute everything on ``partition`` round-robin over the
        live partitions, in sorted key batches (deterministic)."""
        targets = sorted(p for p in self.partitions
                         if p not in self.draining)
        keys = sorted((k for k, p in self.location.items()
                       if p == partition), key=str)
        batches: list[dict] = []
        for index, at in enumerate(range(0, len(keys),
                                         self.RECONFIG_BATCH)):
            chunk = keys[at:at + self.RECONFIG_BATCH]
            batches.append({
                "cid": f"rcfg:e{self.epoch}:c{attempt}:{partition}:{index}",
                "variables": list(chunk),
                "source": partition,
                "dest": targets[index % len(targets)],
            })
        return batches

    def _sync_policy_partitions(self) -> None:
        """Repartitioning policies track the live partition set (the
        graph policy sizes its ideal cut by it); stateless policies take
        the partitions as call arguments and need no update."""
        setter = getattr(self.policy, "set_partitions", None)
        if setter is not None:
            setter(self.partitions)

    def _maybe_evacuate(self, trigger_cid: str, keys: tuple,
                        partition: str) -> None:
        """Move keys that landed on a draining/retired partition to the
        least-loaded live one (deterministic supplementary move).

        Every replica issues the move with the same uid, so the ordered
        logs deduplicate — the same trick as :meth:`_issue_move`.
        """
        if partition in self.partitions and partition not in self.draining \
                and partition not in self.retired:
            return
        live = [p for p in self.partitions if p not in self.draining]
        if not live or partition in live:
            return
        dest = min(live, key=lambda p: (self.partition_sizes.get(p, 0), p))
        move_cid = f"{trigger_cid}:evac"
        move = Command(op="move", ctype=CommandType.MOVE,
                       variables=tuple(keys),
                       args={"sources": [partition], "dest": dest,
                             "notify": None},
                       cid=move_cid, client=None)
        dests = sorted({ORACLE_GROUP, dest, partition})
        self.amcast.multicast(dests, {"command": move, "dests": dests},
                              size=move.payload_size(),
                              uid=f"am:{move_cid}")
        self.evacuations.increment(self.env.now, len(keys))

    def _send_reconfig_ack(self, manager, rid, kind: str, partition: str,
                           body: dict) -> None:
        if not manager:
            return
        payload = dict(body, rid=rid, kind=kind, partition=partition)
        size = 256 + 32 * sum(len(b["variables"])
                              for b in body.get("batches", ()))
        self.node.send(manager, RECONFIG_ACK_KIND, payload, size=size)

    # -- Tasks 5/6: hints and repartitioning ------------------------------------

    def _task_hint(self, hint: dict):
        vertices = hint.get("vertices", ())
        edges = hint.get("edges", ())
        if not self.async_repartition:
            repartition_cost = self.policy.on_hint(vertices, edges,
                                                   self.location)
            if repartition_cost:
                self.repartitions.increment(self.env.now)
                yield self.env.timeout(float(repartition_cost))
            else:
                yield self.env.timeout(self.CONSULT_COST)
            return
        # Asynchronous mode: ingest on the critical path, compute off it.
        due = self.policy.ingest_hint(vertices, edges)
        yield self.env.timeout(self.CONSULT_COST)
        if due and not self._repartition_inflight:
            self._start_background_repartition()

    def _start_background_repartition(self) -> None:
        self._repartition_inflight = True
        partitioning_id = self._next_partitioning_id
        self._next_partitioning_id += 1
        ideal, cost = self.policy.compute_ideal(self.location)
        self._pending_ideals[partitioning_id] = ideal
        self.busy_background.add_busy(self.env.now, float(cost))
        # The "background thread" finishes after `cost` ms and announces
        # the new partitioning's id; all replicas announce the same id with
        # the same multicast uid, so the logs deduplicate to one activation.
        self.env.schedule_callback(
            float(cost),
            lambda: self._announce_partitioning(partitioning_id))

    def _announce_partitioning(self, partitioning_id: int) -> None:
        if self.node.crashed:
            return
        self.amcast.multicast(
            [ORACLE_GROUP], {"activate_partitioning": partitioning_id},
            size=96, uid=f"am:activate:{partitioning_id}")

    def _task_activate(self, partitioning_id: int) -> None:
        ideal = self._pending_ideals.pop(partitioning_id, None)
        if ideal is None:
            return  # already activated (duplicate) or unknown id
        self.policy.install_ideal(ideal)
        self._repartition_inflight = False
        self.repartitions.increment(self.env.now)

    # -- durable cold start (repro.store.coldstart) ---------------------------

    def arm_replay(self, uids) -> None:
        """Mark delivery uids as replayed history (WAL cold start).

        Replayed deliveries re-apply their effect on the variable map,
        the policy and the reply cache, but send nothing: the original
        execution already answered the client, issued the move, or
        acknowledged the reconfiguration. A marked uid that only arrives
        later (a post-restore heal round finalising old history) is
        still treated as replay — it *is* old history.
        """
        self._replay_uids.update(uids)

    def _replay_delivery(self, delivery: AmcastDelivery) -> None:
        """Re-apply one logged delivery's state effects, silently.

        Mirrors :meth:`_handle_delivery` task by task; consults are pure
        reads of the map and have nothing to re-apply. Verdict-bearing
        replies are re-cached so post-restore client resends
        deduplicate exactly as they would have against the lost cache.
        """
        envelope = delivery.payload
        if not isinstance(envelope, dict):
            return
        if "hint" in envelope:
            hint = envelope["hint"]
            vertices = hint.get("vertices", ())
            edges = hint.get("edges", ())
            if self.async_repartition:
                self.policy.ingest_hint(vertices, edges)
            else:
                self.policy.on_hint(vertices, edges, self.location)
            return
        if "activate_partitioning" in envelope:
            self._task_activate(envelope["activate_partitioning"])
            return
        if "reconfig" in envelope:
            spec = envelope["reconfig"]
            kind, partition = spec["kind"], spec["partition"]
            if kind == "join":
                self._reconfig_join(partition)
            elif kind == "leave_begin":
                self._reconfig_leave_begin(partition)
            elif kind == "leave_commit":
                self._reconfig_leave_commit(partition)
            return
        command = envelope.get("command")
        if command is None:
            return
        attempt = envelope.get("attempt", 1)
        if command.ctype is CommandType.CREATE:
            key = command.variables[0]
            partition = command.args["partition"]
            if key not in self.location:
                self._relocate(key, partition)
                self.policy.on_create(key, partition)
                self._cache_reply(command, ReplyStatus.OK, "created",
                                  attempt)
            else:
                self._cache_reply(command, ReplyStatus.NOK, "exists",
                                  attempt)
        elif command.ctype is CommandType.DELETE:
            key = command.variables[0]
            partition = command.args["partition"]
            if self.location.get(key) == partition:
                self._forget(key)
                self.policy.on_delete(key)
                self._cache_reply(command, ReplyStatus.OK, "deleted",
                                  attempt)
            else:
                self._cache_reply(command, ReplyStatus.NOK, "missing",
                                  attempt)
        elif command.ctype is CommandType.MOVE:
            dest = command.args["dest"]
            sources = set(command.args.get("sources", ()))
            for key in command.variables:
                location = self.location.get(key)
                if location is None:
                    continue
                if sources and location not in sources and location != dest:
                    continue  # raced move; keep following the ordered log
                self._relocate(key, dest)
        # CONSULT: pure read of the map — nothing to re-apply.

    def _cache_reply(self, command: Command, status: ReplyStatus,
                     value, attempt: int) -> None:
        self.replies.store(command.cid, Reply(
            cid=command.cid, status=status, value=value,
            sender=self.node.name, partition=ORACLE_GROUP,
            attempt=attempt))

    # -- replies -------------------------------------------------------------

    def _send_prophecy(self, command: Command, prophecy: Prophecy) -> None:
        prophecy.epoch = self.epoch
        if command.client:
            self.node.send(command.client, PROPHECY_KIND,
                           {"cid": command.cid, "prophecy": prophecy},
                           size=128 + 32 * len(prophecy.tuples))

    def _reply(self, command: Command, status: ReplyStatus,
               value, attempt: int = 1) -> None:
        reply = Reply(cid=command.cid, status=status, value=value,
                      sender=self.node.name, partition=ORACLE_GROUP,
                      attempt=attempt)
        self.replies.store(command.cid, reply)
        if command.client:
            self.node.send(command.client, REPLY_KIND, reply, size=128)
