"""Command-line interface: run experiments and figures without writing code.

Examples::

    python -m repro figure fig1 --duration-ms 6000
    python -m repro experiment --scheme dssmr --partitions 4 \
        --edge-cut 0.05 --duration-ms 5000
    python -m repro partition --vertices 5000 --parts 4
    python -m repro list-figures
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence


def _figure_registry() -> dict[str, Callable]:
    from repro.harness import figures
    return {
        "fig1": figures.figure1_motivation,
        "fig2": figures.figure2_edgecut_sweep,
        "fig3": figures.figure3_partition_count,
        "fig4": figures.figure4_dynamic_load,
        "fig5": figures.figure5_partitioner_scaling,
        "fig6": figures.figure6_oracle_load,
        "fig7": figures.figure7_cache_ablation,
        "fig8": figures.figure8_command_mix,
        "fig9": figures.figure9_retry_fallback,
        "fig10": figures.figure10_partitioner_ablation,
        "fig11": figures.figure11_message_complexity,
        "fig12": figures.figure12_async_oracle,
        "fig13": figures.figure13_multicast_comparison,
        "fig14": figures.figure14_batching,
        "fig15": figures.figure15_chaos_overhead,
        "fig16": figures.figure16_elastic_scaleout,
        "fig17": figures.figure17_self_healing,
        "fig18": figures.figure18_cost_attribution,
        "fig19": figures.figure19_overload,
        "fig20": figures.figure20_durability,
        "fig21": figures.figure21_parallel_execution,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DS-SMR reproduction: experiments and figures")
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", help="fig1..fig12 (see list-figures)")
    figure.add_argument("--seed", type=int, default=5)
    figure.add_argument("--duration-ms", type=float, default=None,
                        help="virtual run length per configuration")

    sub.add_parser("list-figures", help="list reproducible figures")

    experiment = sub.add_parser(
        "experiment", help="one Chirper experiment configuration")
    experiment.add_argument("--scheme", default="dssmr",
                            choices=["smr", "ssmr", "dssmr", "dynastar"])
    experiment.add_argument("--partitions", type=int, default=2)
    experiment.add_argument("--users", type=int, default=200)
    experiment.add_argument("--edge-cut", type=float, default=0.0)
    experiment.add_argument("--clients-per-partition", type=int, default=8)
    experiment.add_argument("--duration-ms", type=float, default=5_000.0)
    experiment.add_argument("--seed", type=int, default=5)

    partition = sub.add_parser(
        "partition", help="run the multilevel partitioner on a demo graph")
    partition.add_argument("--vertices", type=int, default=5_000)
    partition.add_argument("--parts", type=int, default=4)
    partition.add_argument("--seed", type=int, default=7)

    chaos = sub.add_parser(
        "chaos", help="seeded chaos campaign against every scheme")
    chaos.add_argument("--scenarios", type=int, default=10,
                       help="number of generated fault scenarios")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--clients", type=int, default=3)
    chaos.add_argument("--ops", type=int, default=8,
                       help="operations per client per scenario")

    trace = sub.add_parser(
        "trace", help="traced workload: spans, latency breakdown, anomalies")
    trace.add_argument("--scheme", default="dssmr",
                       choices=["smr", "ssmr", "dssmr", "dynastar"])
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--clients", type=int, default=3)
    trace.add_argument("--ops", type=int, default=10,
                       help="operations per client")
    trace.add_argument("--partitions", type=int, default=2)
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the span stream as JSONL to PATH")
    trace.add_argument("--timelines", type=int, default=3,
                       help="print timelines of the N slowest commands")
    trace.add_argument("--k", type=float, default=3.0,
                       help="slow-command anomaly threshold (x p95)")

    profile = sub.add_parser(
        "profile", help="virtual-time profiler: attribute simulated cost "
                        "to a component/stage tree, folded stacks + table")
    profile.add_argument("--scheme", default="dssmr",
                         choices=["smr", "ssmr", "dssmr", "dynastar"])
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--clients", type=int, default=3)
    profile.add_argument("--ops", type=int, default=10,
                         help="operations per client")
    profile.add_argument("--partitions", type=int, default=2)
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the self/total cost table")
    profile.add_argument("--smoke", action="store_true",
                         help="profile all four schemes at the fixed smoke "
                              "configuration and print the canonical JSON "
                              "on stdout (CI byte-compares two runs)")
    profile.add_argument("--json", action="store_true",
                         help="print the canonical profile JSON on stdout "
                              "(report goes to stderr)")
    profile.add_argument("--out", default=None, metavar="PATH",
                         help="write the folded-stack text to PATH "
                              "(flamegraph.pl-compatible)")

    perfcheck = sub.add_parser(
        "perfcheck", help="perf-regression gate: run the seeded perf "
                          "suite and compare against a committed baseline")
    perfcheck.add_argument("--seed", type=int, default=7)
    perfcheck.add_argument("--baseline",
                           default="benchmarks/baselines/perf_smoke.json",
                           metavar="PATH")
    perfcheck.add_argument("--tolerance", type=float, default=0.05,
                           help="relative drift allowed before the gate "
                                "fails (throughput down / p95 up)")
    perfcheck.add_argument("--slowdown", type=float, default=1.0,
                           help="scale the execution cost model (test "
                                "knob: CI injects 1.2 and requires the "
                                "gate to FAIL)")
    perfcheck.add_argument("--substrate-baseline",
                           default="benchmarks/baselines/"
                                   "substrate_micro.json",
                           metavar="PATH",
                           help="wall-clock substrate floor file (event "
                                "heap + message delivery rates); gating "
                                "mode only — wall-clock numbers never "
                                "enter the canonical JSON")
    perfcheck.add_argument("--no-substrate", action="store_true",
                           help="skip the wall-clock substrate gate")
    perfcheck.add_argument("--update-baseline", action="store_true",
                           help="write the current metrics to --baseline "
                                "(and refreshed substrate floors to "
                                "--substrate-baseline) instead of gating")
    perfcheck.add_argument("--smoke", action="store_true",
                           help="print the canonical metrics JSON on "
                                "stdout without gating (CI byte-compares "
                                "two runs)")

    fuzz = sub.add_parser(
        "fuzz", help="deterministic fault-schedule fuzzer: generate, "
                     "run, shrink, replay")
    fuzz.add_argument("--schedules", type=int, default=10,
                      help="number of generated schedules to run")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--clients", type=int, default=3)
    fuzz.add_argument("--ops", type=int, default=8,
                      help="operations per client per schedule")
    fuzz.add_argument("--smoke", action="store_true",
                      help="small fixed campaign printing the canonical "
                           "JSON summary on stdout (CI byte-compares two "
                           "same-seed runs)")
    fuzz.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="re-run a repro artifact and byte-compare the "
                           "outcome instead of fuzzing")
    fuzz.add_argument("--inject-bug", default=None,
                      choices=["no_dedup"],
                      help="test-only deliberate protocol bug; the "
                           "campaign must then FIND a violation")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip delta-debugging minimisation of "
                           "violating schedules")
    fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                      help="write replayable repro artifacts for "
                           "violations into DIR")
    fuzz.add_argument("--json", action="store_true",
                      help="print the canonical campaign JSON on stdout "
                           "(report goes to stderr)")
    fuzz.add_argument("--out", default=None, metavar="PATH",
                      help="also write the canonical campaign JSON to "
                           "PATH")
    fuzz.add_argument("--supervisor", action="store_true",
                      help="run every schedule under the autonomous "
                           "recovery supervisor (repro.heal): crashes "
                           "get no harness restart and the generator "
                           "adds false-suspicion faults")
    fuzz.add_argument("--overload", action="store_true",
                      help="QoS fuzzing: clusters run with overload "
                           "control armed and the generator adds "
                           "overload-burst events (background open-loop "
                           "traffic surges)")
    fuzz.add_argument("--disk", action="store_true",
                      help="storage fuzzing: clusters run with durable "
                           "storage armed (repro.store) and the "
                           "generator adds torn-write, bit-rot, "
                           "slow-disk and power-loss events")
    fuzz.add_argument("--parallel", action="store_true",
                      help="parallel-execution fuzzing: every server "
                           "executes on a 4-worker conflict-aware pool "
                           "(repro.smr.parallel); the linearizability "
                           "checker fuzzes the sequential-equivalence "
                           "argument under faults")

    qos = sub.add_parser(
        "qos", help="overload campaign: offered-load sweep with QoS "
                    "(admission control + AIMD) off and on")
    qos.add_argument("--seed", type=int, default=0)
    qos.add_argument("--scheme", default="ssmr",
                     choices=["smr", "ssmr", "dssmr", "dynastar"])
    qos.add_argument("--smoke", action="store_true",
                     help="short fixed sweep printing the canonical JSON "
                          "on stdout (CI byte-compares two same-seed "
                          "runs)")
    qos.add_argument("--json", action="store_true",
                     help="print the canonical campaign JSON on stdout "
                          "(report goes to stderr)")
    qos.add_argument("--out", default=None, metavar="PATH",
                     help="also write the canonical campaign JSON to "
                          "PATH")

    durability = sub.add_parser(
        "durability", help="durable-storage campaign: WAL replay "
                           "equivalence, whole-cluster power loss, "
                           "torn-write/bit-rot recovery ladder")
    durability.add_argument("--seed", type=int, default=0)
    durability.add_argument("--smoke", action="store_true",
                            help="short fixed campaign printing the "
                                 "canonical JSON on stdout (CI "
                                 "byte-compares two same-seed runs)")
    durability.add_argument("--json", action="store_true",
                            help="print the canonical campaign JSON on "
                                 "stdout (report goes to stderr)")
    durability.add_argument("--out", default=None, metavar="PATH",
                            help="also write the canonical campaign "
                                 "JSON to PATH")

    heal = sub.add_parser(
        "heal", help="self-healing campaign: crash every role, let the "
                     "recovery supervisor repair the cluster")
    heal.add_argument("--scenarios", type=int, default=4,
                      help="scenarios per scheme (each crashes a "
                           "follower, a sequencer and an oracle)")
    heal.add_argument("--seed", type=int, default=0)
    heal.add_argument("--clients", type=int, default=3)
    heal.add_argument("--ops", type=int, default=8,
                      help="operations per client per scenario")
    heal.add_argument("--smoke", action="store_true",
                      help="small fixed campaign printing the canonical "
                           "JSON summary on stdout (CI byte-compares two "
                           "same-seed runs)")
    heal.add_argument("--json", action="store_true",
                      help="print the canonical campaign JSON on stdout "
                           "(report goes to stderr)")
    heal.add_argument("--out", default=None, metavar="PATH",
                      help="also write the canonical campaign JSON to "
                           "PATH")

    parallelexec = sub.add_parser(
        "parallelexec", help="parallel-execution campaign: sequential "
                             "equivalence proof + worker/conflict "
                             "throughput sweep")
    parallelexec.add_argument("--seed", type=int, default=1)
    parallelexec.add_argument("--smoke", action="store_true",
                              help="short fixed campaign printing the "
                                   "canonical JSON on stdout (CI "
                                   "byte-compares two same-seed runs)")
    parallelexec.add_argument("--json", action="store_true",
                              help="print the canonical campaign JSON on "
                                   "stdout (report goes to stderr)")
    parallelexec.add_argument("--out", default=None, metavar="PATH",
                              help="also write the canonical campaign "
                                   "JSON to PATH")

    reconfig = sub.add_parser(
        "reconfig", help="elastic reconfiguration smoke: crash-restart "
                         "recovery + live partition join under chaos")
    reconfig.add_argument("--scheme", default="dssmr",
                          choices=["dssmr", "dynastar"])
    reconfig.add_argument("--seed", type=int, default=0)
    reconfig.add_argument("--clients", type=int, default=4)
    reconfig.add_argument("--ops", type=int, default=36,
                          help="operations per client")
    reconfig.add_argument("--no-chaos", action="store_true",
                          help="disable the background message faults")
    reconfig.add_argument("--json", action="store_true",
                          help="print canonical metrics JSON on stdout")
    reconfig.add_argument("--out", default=None, metavar="PATH",
                          help="write the metrics JSON to PATH (the "
                               "determinism artifact CI byte-compares)")

    return parser


def cmd_figure(args) -> int:
    registry = _figure_registry()
    figure_fn = registry.get(args.figure_id)
    if figure_fn is None:
        print(f"unknown figure {args.figure_id!r}; "
              f"try: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    kwargs = {"seed": args.seed}
    if args.duration_ms is not None:
        kwargs["duration_ms"] = args.duration_ms
    if args.figure_id in ("fig5", "fig10", "fig13", "fig14", "fig15",
                          "fig16", "fig17", "fig18", "fig19", "fig20",
                          "fig21"):
        # figures without duration parameters
        kwargs = {"seed": args.seed} \
            if args.figure_id in ("fig13", "fig14", "fig15", "fig16",
                                  "fig17", "fig18", "fig19", "fig20",
                                  "fig21") \
            else {}
    started = time.perf_counter()
    print(figure_fn(**kwargs))
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)")
    return 0


def cmd_list_figures(_args) -> int:
    from repro.harness import figures as figures_module
    registry = _figure_registry()
    for figure_id in sorted(registry, key=lambda f: int(f[3:])):
        doc = (registry[figure_id].__doc__ or "").strip().splitlines()[0]
        print(f"{figure_id:6s} {doc}")
    return 0


def cmd_experiment(args) -> int:
    from repro.harness.experiment import (run_chirper_experiment,
                                          static_assignment_for)
    from repro.harness.figures import FIGURE_EXECUTION
    from repro.harness.metrics import ExperimentMetrics
    from repro.harness.report import format_sparkline, format_table
    from repro.workload import clustered_graph

    graph, planted = clustered_graph(
        n=args.users, k=max(args.partitions, 1), intra_degree=6,
        edge_cut_fraction=args.edge_cut, seed=3)
    kwargs = {}
    if args.scheme == "ssmr":
        kwargs["initial_assignment"] = static_assignment_for(
            graph, args.partitions, planted)
    result = run_chirper_experiment(
        args.scheme, graph, num_partitions=args.partitions,
        clients_per_partition=args.clients_per_partition,
        duration_ms=args.duration_ms, warmup_ms=args.duration_ms / 3,
        seed=args.seed, execution=FIGURE_EXECUTION, **kwargs)
    print(format_table(ExperimentMetrics.ROW_HEADERS,
                       [result.metrics.row()]))
    print(f"\ntput/s over time: {format_sparkline(result.throughput)}")
    print(f"moves/s over time: {format_sparkline(result.moves)}")
    return 0


def cmd_partition(args) -> int:
    from repro.graph import (MultilevelPartitioner, edge_cut_fraction,
                             imbalance)
    from repro.workload import holme_kim_graph

    graph = holme_kim_graph(args.vertices, m=3, triad_probability=0.7,
                            seed=args.seed)
    started = time.perf_counter()
    assignment = MultilevelPartitioner().partition(graph, args.parts)
    elapsed = time.perf_counter() - started
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"parts: {args.parts}  time: {elapsed:.2f}s  "
          f"edge-cut: {edge_cut_fraction(graph, assignment):.1%}  "
          f"imbalance: {imbalance(graph, assignment, args.parts):.2%}")
    return 0


def cmd_chaos(args) -> int:
    from repro.harness.chaos import run_campaign

    started = time.perf_counter()
    campaign = run_campaign(num_scenarios=args.scenarios, seed=args.seed,
                            num_clients=args.clients,
                            ops_per_client=args.ops)
    print(campaign.report())
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 0 if campaign.ok else 1


def cmd_trace(args) -> int:
    from repro.harness.tracerun import run_traced_workload
    from repro.obs import (command_timeline, dump_jsonl, find_anomalies,
                           latency_breakdown, stage_sum_errors)
    from repro.obs.report import slowest_traces

    started = time.perf_counter()
    run = run_traced_workload(args.scheme, seed=args.seed,
                              num_clients=args.clients,
                              ops_per_client=args.ops,
                              num_partitions=args.partitions)
    spans = run.spans
    if args.out:
        count = dump_jsonl(spans, args.out)
        print(f"wrote {count} span(s) to {args.out}")
    print(f"traced {run.completed}/{run.expected} command(s), "
          f"{len(spans)} span(s), scheme={run.scheme} seed={run.seed}")
    print()
    print(latency_breakdown(spans,
                            label=f"{run.scheme} seed={run.seed}"))
    errors = stage_sum_errors(spans)
    if errors:
        print(f"\nstage-sum mismatches in {len(errors)} command(s): "
              f"{', '.join(errors[:5])}")
    else:
        print("\nper-command stage sums match end-to-end latency exactly")
    anomalies = find_anomalies(spans, k=args.k)
    if anomalies:
        print("\nanomalies:")
        for flag in anomalies:
            print(f"  - {flag}")
    else:
        print("no anomalies flagged")
    if args.timelines:
        print("\nslowest command timeline(s):")
        for trace_id in slowest_traces(spans, args.timelines):
            print()
            print(command_timeline(spans, trace_id))
    # Wall time goes to stderr: stdout must be byte-identical across runs.
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 0 if run.completed == run.expected and not errors else 1


def cmd_profile(args) -> int:
    import json

    from repro.harness.tracerun import run_traced_workload
    from repro.obs.profile import VirtualProfiler

    started = time.perf_counter()
    if args.smoke:
        schemes = ("smr", "ssmr", "dssmr", "dynastar")
        clients, ops, partitions = 3, 10, 2
    else:
        schemes = (args.scheme,)
        clients, ops, partitions = args.clients, args.ops, args.partitions
    emit_json = args.json or args.smoke
    report = sys.stderr if emit_json else sys.stdout
    payload: dict = {"seed": args.seed, "schemes": {}}
    folded_sections: list[str] = []
    ok = True
    for scheme in schemes:
        profiler = VirtualProfiler(scheme=scheme)
        run = run_traced_workload(scheme, seed=args.seed,
                                  num_clients=clients, ops_per_client=ops,
                                  num_partitions=partitions, trace=True,
                                  profiler=profiler)
        errors = profiler.stage_sum_errors()
        ok = ok and run.completed == run.expected and not errors
        payload["schemes"][scheme] = profiler.to_dict()
        folded_sections.append(profiler.folded())
        print(f"== {scheme}: {run.completed}/{run.expected} command(s), "
              f"{profiler.total_cost():.1f}ms attributed ==", file=report)
        print(profiler.table(top=args.top), file=report)
        if errors:
            print(f"stage-sum mismatches in {len(errors)} command(s): "
                  f"{', '.join(errors[:5])}", file=report)
        else:
            print("per-command stage sums match end-to-end latency "
                  "exactly", file=report)
        print(file=report)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write("\n".join(folded_sections) + "\n")
        print(f"wrote folded stacks to {args.out}", file=sys.stderr)
    if emit_json:
        # Canonical JSON on stdout: byte-identical across same-seed runs.
        print(json.dumps(payload, sort_keys=True,
                         separators=(",", ":")))
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 0 if ok else 1


def cmd_perfcheck(args) -> int:
    import json

    from repro.harness.perf import (canonical_json, compare_substrate,
                                    compare_to_baseline, load_baseline,
                                    make_substrate_baseline,
                                    run_perf_suite, run_substrate_micro)

    started = time.perf_counter()
    current = run_perf_suite(seed=args.seed, slowdown=args.slowdown)
    payload = canonical_json(current)
    if args.update_baseline:
        with open(args.baseline, "w") as sink:
            json.dump(current, sink, sort_keys=True, indent=2)
            sink.write("\n")
        print(f"wrote baseline to {args.baseline}", file=sys.stderr)
        if not args.no_substrate:
            floors = make_substrate_baseline(run_substrate_micro())
            with open(args.substrate_baseline, "w") as sink:
                json.dump(floors, sink, sort_keys=True, indent=2)
                sink.write("\n")
            print(f"wrote substrate floors to {args.substrate_baseline}",
                  file=sys.stderr)
        print(f"(wall time: {time.perf_counter() - started:.1f}s)",
              file=sys.stderr)
        return 0
    if args.smoke:
        # Canonical JSON on stdout, no gating: CI byte-compares two runs.
        print(payload)
        print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
              file=sys.stderr)
        return 0
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; create one with "
              f"--update-baseline", file=sys.stderr)
        return 2
    failures = compare_to_baseline(current, baseline, args.tolerance)
    for scheme, metrics in sorted(current["schemes"].items()):
        base = baseline.get("schemes", {}).get(scheme, {})
        print(f"{scheme:9s} throughput {metrics['throughput_ops_per_s']:8.1f} "
              f"ops/s (baseline {base.get('throughput_ops_per_s', 0):8.1f})  "
              f"p95 {metrics['latency_p95_ms']:.3f}ms "
              f"(baseline {base.get('latency_p95_ms', 0):.3f}ms)")
    par = current.get("parallel")
    if par is not None:
        print(f"parallel  {par['speedup']:.3f}x at {par['workers']} "
              f"workers / {par['conflict']:.0%} conflict "
              f"(minimum {par['min_speedup']:.1f}x)")
    if not args.no_substrate:
        floors = load_baseline(args.substrate_baseline)
        if floors is not None:
            rates = run_substrate_micro()
            failures.extend(compare_substrate(rates, floors))
            print(f"substrate {rates['events_per_s']:,.0f} events/s "
                  f"(floor {floors.get('events_per_s_floor', 0):,.0f}), "
                  f"{rates['messages_per_s']:,.0f} msgs/s "
                  f"(floor {floors.get('messages_per_s_floor', 0):,.0f})")
        else:
            print(f"no substrate floors at {args.substrate_baseline}; "
                  f"create them with --update-baseline", file=sys.stderr)
    if failures:
        print(f"\nPERF GATE FAILED ({len(failures)} regression(s), "
              f"tolerance {args.tolerance:.0%}):")
        for failure in failures:
            print(f"  - {failure}")
    else:
        print(f"\nperf gate passed (tolerance {args.tolerance:.0%})")
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import (load_artifact, replay_artifact,
                            run_fuzz_campaign)

    started = time.perf_counter()
    if args.replay:
        outcome = replay_artifact(load_artifact(args.replay))
        print(outcome.report())
        print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
              file=sys.stderr)
        # Exit 0 only on a byte-identical reproduction: CI treats any
        # drift — even "still violating, different signature" — as news.
        return 0 if outcome.identical else 1

    num_schedules = 6 if args.smoke else args.schedules
    campaign = run_fuzz_campaign(
        num_schedules=num_schedules, seed=args.seed,
        num_clients=args.clients, ops_per_client=args.ops,
        inject_bug=args.inject_bug, shrink=not args.no_shrink,
        artifacts_dir=args.artifacts, supervisor=args.supervisor,
        overload=args.overload, disk=args.disk, parallel=args.parallel)
    payload = json.dumps(campaign.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    emit_json = args.json or args.smoke
    # Report to stderr in JSON mode: stdout must stay byte-comparable.
    print(campaign.report(), file=sys.stderr if emit_json else sys.stdout)
    if emit_json:
        print(payload)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote campaign JSON to {args.out}", file=sys.stderr)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    if args.inject_bug:
        # With a deliberate bug the fuzzer must FIND it; a clean
        # campaign means the fuzzer lost its teeth.
        return 0 if not campaign.ok else 1
    return 0 if campaign.ok else 1


def cmd_qos(args) -> int:
    import json

    from repro.harness.overload import (format_overload_report,
                                        run_overload_campaign)

    started = time.perf_counter()
    data = run_overload_campaign(seed=args.seed, smoke=args.smoke,
                                 scheme=args.scheme)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    emit_json = args.json or args.smoke
    # Report to stderr in JSON mode: stdout must stay byte-comparable.
    print(format_overload_report(data),
          file=sys.stderr if emit_json else sys.stdout)
    if emit_json:
        print(payload)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote campaign JSON to {args.out}", file=sys.stderr)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    summary = data["summary"]
    # The campaign is also a self-check: QoS must beat the baseline
    # beyond saturation (full sweep only; the smoke sweep is a
    # determinism probe, too short to claim the figure's shape).
    if not args.smoke:
        collapse = summary["qos_off"]["tail_ratio"]
        plateau = summary["qos_on"]["tail_ratio"]
        if plateau <= collapse:
            print("QOS GATE FAILED: qos_on tail ratio "
                  f"{plateau} <= qos_off {collapse}", file=sys.stderr)
            return 1
    return 0


def cmd_durability(args) -> int:
    import json

    from repro.harness.durability import (format_durability_report,
                                          run_durability_campaign)

    started = time.perf_counter()
    data = run_durability_campaign(seed=args.seed, smoke=args.smoke)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    emit_json = args.json or args.smoke
    # Report to stderr in JSON mode: stdout must stay byte-comparable.
    print(format_durability_report(data),
          file=sys.stderr if emit_json else sys.stdout)
    if emit_json:
        print(payload)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote campaign JSON to {args.out}", file=sys.stderr)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    # The campaign is also a self-check: every section gates.
    return 0 if data["summary"]["ok"] else 1


def cmd_heal(args) -> int:
    import json

    from repro.heal import run_heal_campaign

    started = time.perf_counter()
    num_scenarios = 2 if args.smoke else args.scenarios
    campaign = run_heal_campaign(
        num_scenarios=num_scenarios, seed=args.seed,
        num_clients=args.clients, ops_per_client=args.ops)
    payload = json.dumps(campaign.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    emit_json = args.json or args.smoke
    # Report to stderr in JSON mode: stdout must stay byte-comparable.
    print(campaign.report(), file=sys.stderr if emit_json else sys.stdout)
    if emit_json:
        print(payload)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote campaign JSON to {args.out}", file=sys.stderr)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 0 if campaign.ok else 1


def cmd_parallelexec(args) -> int:
    from repro.harness.parallelexec import (format_report, run_campaign,
                                            to_json)

    started = time.perf_counter()
    data = run_campaign(seed=args.seed, smoke=args.smoke)
    payload = to_json(data)
    emit_json = args.json or args.smoke
    # Report to stderr in JSON mode: stdout must stay byte-comparable.
    print(format_report(data), file=sys.stderr if emit_json else sys.stdout)
    if emit_json:
        print(payload)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote campaign JSON to {args.out}", file=sys.stderr)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    # The campaign is also a self-check: equivalence + speedup gate.
    return 0 if data["gate"]["passed"] else 1


def cmd_reconfig(args) -> int:
    from repro.harness.elastic import run_elastic_scenario

    started = time.perf_counter()
    result = run_elastic_scenario(seed=args.seed, scheme=args.scheme,
                                  num_clients=args.clients,
                                  ops_per_client=args.ops,
                                  chaos=not args.no_chaos)
    payload = result.metrics_json()
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(payload + "\n")
        print(f"wrote metrics JSON to {args.out}", file=sys.stderr)
    # Report goes to stderr in --json mode: stdout stays byte-comparable.
    print(result.report(), file=sys.stderr if args.json else sys.stdout)
    if args.json:
        print(payload)
    print(f"\n(wall time: {time.perf_counter() - started:.1f}s)",
          file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": cmd_figure,
        "list-figures": cmd_list_figures,
        "experiment": cmd_experiment,
        "partition": cmd_partition,
        "chaos": cmd_chaos,
        "profile": cmd_profile,
        "perfcheck": cmd_perfcheck,
        "fuzz": cmd_fuzz,
        "qos": cmd_qos,
        "durability": cmd_durability,
        "heal": cmd_heal,
        "trace": cmd_trace,
        "parallelexec": cmd_parallelexec,
        "reconfig": cmd_reconfig,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
