"""Chunked, resumable bulk state transfer over ``repro.net``.

Pull-based protocol between a :class:`CheckpointHost` (attached to a live
partition server) and a :class:`StateTransfer` client (a recovering or
bootstrapping replica):

1. The receiver requests transfer metadata under a fresh transfer id. The
   host *freezes* a checkpoint for that id — capture happens once, repeat
   requests are answered from the frozen copy, so every chunk of one
   transfer comes from the same consistent snapshot (this is what makes
   the transfer resumable: a retried metadata request never mixes two
   captures).
2. The receiver pulls chunks with a sliding window of at most ``window``
   outstanding requests (flow control); chunk 0 carries the control state
   (execution history, reply cache, multicast/exchange state, queued
   deliveries), chunks 1..N carry sorted slices of the variable store.
3. Every chunk carries a checksum over its canonical serialisation;
   corrupt or lost chunks are simply re-requested (per-chunk timers), and
   duplicates are dropped. On completion the reassembled checkpoint's
   checksum must match the frozen one, and the receiver releases the
   host's frozen copy.

Everything is driven by virtual-time timers and seeded networks, so
transfers are deterministic and the chunk/retry counters below are stable
across same-seed runs.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.net import Message
from repro.reconfig.checkpoint import (PartitionCheckpoint,
                                       state_checksum)
from repro.resilience import with_timeout

XFER_META_REQ = "reconfig/xfer-meta-req"
XFER_META = "reconfig/xfer-meta"
XFER_CHUNK_REQ = "reconfig/xfer-chunk-req"
XFER_CHUNK = "reconfig/xfer-chunk"
XFER_DONE = "reconfig/xfer-done"

_transfer_counter = itertools.count()


def new_transfer_id(name: str) -> str:
    return f"xf-{name}-{next(_transfer_counter)}"


class StateTransferStalled(RuntimeError):
    """A transfer made no progress for ``stall_after_ms``.

    Raised by :meth:`StateTransfer.fetch` instead of retrying forever,
    so callers (the recovery ladder, the heal supervisor) can try an
    alternate peer or escalate to spare-join/abandoned rather than
    silently hanging a replacement replica behind its start gate.
    """

    def __init__(self, peer: str, phase: str, waited_ms: float):
        super().__init__(
            f"state transfer from {peer} stalled in {phase} phase "
            f"({waited_ms:.0f}ms without progress)")
        self.peer = peer
        self.phase = phase
        self.waited_ms = waited_ms


class CheckpointHost:
    """Serves frozen checkpoints of one partition server, in chunks.

    Attach one to every server that should be able to seed recovering
    peers (the harness attaches one per partitioned server). Requires a
    :class:`~repro.reconfig.checkpoint.PartitionCheckpointer` on the
    server.
    """

    def __init__(self, server, chunk_keys: int = 8):
        if chunk_keys < 1:
            raise ValueError("chunk_keys must be >= 1")
        self.server = server
        self.chunk_keys = chunk_keys
        self._frozen: dict[str, list[dict]] = {}
        self._meta: dict[str, dict] = {}
        self.transfers_started = 0
        self.chunks_served = 0
        server.checkpoint_host = self
        server.node.on(XFER_META_REQ, self._on_meta_request)
        server.node.on(XFER_CHUNK_REQ, self._on_chunk_request)
        server.node.on(XFER_DONE, self._on_done)

    def _freeze(self, transfer_id: str) -> None:
        if transfer_id in self._frozen:
            return
        if self.server.checkpointer is None:
            raise RuntimeError(f"{self.server.node.name} has no "
                               f"PartitionCheckpointer attached")
        checkpoint = self.server.checkpointer.capture(
            reason=f"transfer:{transfer_id}")
        control = {
            "partition": checkpoint.partition,
            "replica": checkpoint.replica,
            "epoch": checkpoint.epoch,
            "taken_at": checkpoint.taken_at,
            "executed": checkpoint.executed,
            "replies": checkpoint.replies,
            "applied_count": checkpoint.applied_count,
            "amcast": checkpoint.amcast,
            "exchange": checkpoint.exchange,
            "queued": checkpoint.queued,
            "location_slice": checkpoint.location_slice,
        }
        payloads = [{"control": control}]
        keys = sorted(checkpoint.store, key=str)
        for at in range(0, len(keys), self.chunk_keys):
            slice_keys = keys[at:at + self.chunk_keys]
            payloads.append({"store": {key: checkpoint.store[key]
                                       for key in slice_keys}})
        chunks = [{"transfer_id": transfer_id, "index": index,
                   "payload": payload,
                   "checksum": state_checksum(payload)}
                  for index, payload in enumerate(payloads)]
        self._frozen[transfer_id] = chunks
        self._meta[transfer_id] = {
            "transfer_id": transfer_id,
            "num_chunks": len(chunks),
            "checksum": checkpoint.checksum,
            "epoch": checkpoint.epoch,
            "partition": checkpoint.partition,
            "keys": checkpoint.num_keys,
        }
        self.transfers_started += 1

    def _on_meta_request(self, message: Message) -> None:
        transfer_id = message.payload["transfer_id"]
        self._freeze(transfer_id)
        self.server.node.send(message.payload["reply_to"], XFER_META,
                              self._meta[transfer_id], size=160)

    def _on_chunk_request(self, message: Message) -> None:
        transfer_id = message.payload["transfer_id"]
        chunks = self._frozen.get(transfer_id)
        if chunks is None:
            return  # unknown/released transfer; the meta retry re-freezes
        chunk = chunks[message.payload["index"]]
        payload = chunk["payload"]
        items = len(payload.get("store", ())) or len(
            payload.get("control", {}).get("executed", ()))
        self.chunks_served += 1
        self.server.node.send(message.payload["reply_to"], XFER_CHUNK,
                              chunk, size=192 + 64 * items)

    def _on_done(self, message: Message) -> None:
        transfer_id = message.payload["transfer_id"]
        self._frozen.pop(transfer_id, None)
        self._meta.pop(transfer_id, None)


class StateTransfer:
    """Receiver endpoint: fetches one peer checkpoint at a time.

    Construct once per node (it owns the transfer message kinds), then
    drive ``checkpoint = yield from transfer.fetch(peer_name)`` from a
    process. Lost requests, lost chunks and corrupt chunks are recovered
    by per-chunk retry timers; at most ``window`` chunk requests are
    outstanding at any moment.
    """

    def __init__(self, node, window: int = 4,
                 chunk_timeout_ms: float = 40.0,
                 meta_timeout_ms: float = 40.0,
                 tracer=None):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.node = node
        self.env = node.env
        self.window = window
        self.chunk_timeout_ms = chunk_timeout_ms
        self.meta_timeout_ms = meta_timeout_ms
        self.tracer = tracer
        self._transfer_id: Optional[str] = None
        self._meta: Optional[dict] = None
        self._meta_event = None
        self._chunks: dict[int, dict] = {}
        self._outstanding: dict[int, float] = {}
        self._wake = None
        # Wire-level accounting (scraped into the reconfig metrics).
        self.chunks_received = 0
        self.duplicates = 0
        self.corrupt = 0
        self.retries = 0
        self.meta_retries = 0
        self.stalls = 0
        self._progress_at = 0.0
        node.on(XFER_META, self._on_meta)
        node.on(XFER_CHUNK, self._on_chunk)

    # -- inbound ------------------------------------------------------------

    def _on_meta(self, message: Message) -> None:
        meta = message.payload
        if meta["transfer_id"] != self._transfer_id or self._meta is not None:
            return
        self._meta = meta
        self._progress_at = self.env.now
        if self._meta_event is not None:
            event, self._meta_event = self._meta_event, None
            event.succeed(None)

    def _on_chunk(self, message: Message) -> None:
        chunk = message.payload
        if chunk["transfer_id"] != self._transfer_id:
            return
        index = chunk["index"]
        if index in self._chunks:
            self.duplicates += 1
            return
        if state_checksum(chunk["payload"]) != chunk["checksum"]:
            # Integrity failure: treat as lost, the timer re-requests.
            self.corrupt += 1
            self._outstanding.pop(index, None)
            return
        self._chunks[index] = chunk
        self._outstanding.pop(index, None)
        self.chunks_received += 1
        self._progress_at = self.env.now
        if self._wake is not None:
            wake, self._wake = self._wake, None
            wake.succeed(None)

    # -- driver -------------------------------------------------------------

    def fetch(self, peer: str, transfer_id: Optional[str] = None,
              stall_after_ms: Optional[float] = None):
        """Generator: pull one full checkpoint from ``peer``.

        With ``stall_after_ms`` set, ``stall_after_ms`` of virtual time
        without any progress (no metadata, no new chunk) raises
        :class:`StateTransferStalled` — the terminal signal that the
        source peer is gone — after resetting the receiver so the next
        ``fetch`` can target an alternate peer.
        """
        if self._transfer_id is not None:
            raise RuntimeError("a transfer is already in progress on "
                               f"{self.node.name}")
        self._transfer_id = transfer_id or new_transfer_id(self.node.name)
        self._meta = None
        self._chunks = {}
        self._outstanding = {}
        started = self.env.now
        self._progress_at = started
        while self._meta is None:
            self._check_stall(peer, "meta", stall_after_ms)
            self._meta_event = self.env.event()
            self.node.send(peer, XFER_META_REQ,
                           {"transfer_id": self._transfer_id,
                            "reply_to": self.node.name}, size=96)
            fired, _ = yield from with_timeout(self.env, self._meta_event,
                                               self.meta_timeout_ms)
            if not fired:
                self._meta_event = None
                self.meta_retries += 1
        num_chunks = self._meta["num_chunks"]
        while len(self._chunks) < num_chunks:
            self._check_stall(peer, "chunk", stall_after_ms)
            now = self.env.now
            for index in [i for i, t in self._outstanding.items()
                          if now - t >= self.chunk_timeout_ms]:
                del self._outstanding[index]
                self.retries += 1
            budget = self.window - len(self._outstanding)
            if budget > 0:
                missing = [i for i in range(num_chunks)
                           if i not in self._chunks
                           and i not in self._outstanding]
                for index in missing[:budget]:
                    self.node.send(peer, XFER_CHUNK_REQ,
                                   {"transfer_id": self._transfer_id,
                                    "index": index,
                                    "reply_to": self.node.name}, size=96)
                    self._outstanding[index] = now
            self._wake = self.env.event()
            yield self.env.any_of([self._wake,
                                   self.env.timeout(self.chunk_timeout_ms)])
            self._wake = None
        checkpoint = self._assemble()
        self.node.send(peer, XFER_DONE,
                       {"transfer_id": self._transfer_id}, size=64)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.span(f"xfer:{self._transfer_id}", "state-transfer",
                             self.node.name, started, self.env.now,
                             chunks=num_chunks, retries=self.retries,
                             keys=checkpoint.num_keys)
        self._transfer_id = None
        return checkpoint

    def _check_stall(self, peer: str, phase: str,
                     stall_after_ms: Optional[float]) -> None:
        if stall_after_ms is None:
            return
        waited = self.env.now - self._progress_at
        if waited < stall_after_ms:
            return
        self.stalls += 1
        # Reset so a retry against another peer starts clean.
        self._transfer_id = None
        self._meta = None
        self._meta_event = None
        self._chunks = {}
        self._outstanding = {}
        self._wake = None
        raise StateTransferStalled(peer, phase, waited)

    def _assemble(self) -> PartitionCheckpoint:
        control = self._chunks[0]["payload"]["control"]
        store: dict = {}
        for index in range(1, len(self._chunks)):
            store.update(self._chunks[index]["payload"]["store"])
        checkpoint = PartitionCheckpoint(
            partition=control["partition"],
            replica=control["replica"],
            epoch=control["epoch"],
            taken_at=control["taken_at"],
            store=store,
            executed=list(control["executed"]),
            replies=control["replies"],
            applied_count=control["applied_count"],
            amcast=control["amcast"],
            exchange=control["exchange"],
            queued=control["queued"],
            location_slice=control["location_slice"],
        )
        checkpoint.checksum = checkpoint.compute_checksum()
        if checkpoint.checksum != self._meta["checksum"]:
            raise RuntimeError(
                f"state transfer {self._transfer_id}: reassembled "
                f"checkpoint checksum {checkpoint.checksum} does not "
                f"match frozen {self._meta['checksum']}")
        return checkpoint
