"""Live partition join/leave, driven by ordered reconfiguration entries.

The :class:`ReconfigurationManager` is a privileged client (think operator
tooling): it atomically multicasts a reconfiguration entry to the oracle
group *and every partition group*, so the configuration epoch bump is a
fence in every ordered log — all replicas of all groups agree on exactly
which commands executed before and after the membership change. The
oracle replicas apply the entry deterministically and acknowledge with a
migration plan (batched moves); the manager then issues those moves one
by one through the ordinary DS-SMR move machinery — sources ship values
over reliable multicast, destinations install and acknowledge, the oracle
updates its map — with timeout-driven resends under fresh multicast uids
(participants deduplicate by move id, so resends are exactly-once).

* **join**: the new partition's group must already exist (empty servers,
  held or running); the entry adds it to the oracle's membership, bumps
  the epoch, and the plan fills the newcomer to its fair share from the
  most-loaded donors.
* **leave**: a *leave-begin* entry fences the partition out of the
  membership (consults stop routing to it) and plans a full drain; once
  the moves ran, *leave-commit* entries retire it — re-planning any keys
  that raced onto it in the meantime — until the oracle reports it empty.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from repro.net import Message, Network
from repro.obs.tracing import NULL_TRACER
from repro.ordering import GroupDirectory, MulticastClient, ProtocolNode
from repro.resilience import RequestTimeout, RetryPolicy, with_timeout
from repro.sim import Environment
from repro.smr.command import Command, CommandType, Reply
from repro.smr.replica import REPLY_KIND
from repro.core.oracle import ORACLE_GROUP, RECONFIG_ACK_KIND

_rid_counter = itertools.count()


class ReconfigError(RuntimeError):
    """The oracle rejected a reconfiguration entry (bad membership)."""


class ReconfigurationManager:
    """Drives live partition joins and leaves for one deployment."""

    #: Leave-commit rounds before giving up on a drain that never empties.
    MAX_COMMIT_ATTEMPTS = 50

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str = "rm0",
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 tracer=None):
        self.env = env
        self.directory = directory
        self.node = ProtocolNode(env, network, name)
        self.mcast = MulticastClient(self.node, directory)
        self.retry_policy = retry_policy or RetryPolicy()
        self._rng = rng or random.Random(0)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._ack_waits: dict[str, object] = {}
        self._reply_waits: dict[str, object] = {}
        self._uid_counts: dict[str, int] = {}
        # Metrics (scraped by the harness into the reconfig gauges).
        self.joins = 0
        self.leaves = 0
        self.keys_migrated = 0
        self.batches_sent = 0
        self.move_resends = 0
        self.entry_resends = 0
        self.epoch = 0              # last epoch acknowledged by the oracle
        self.node.on(RECONFIG_ACK_KIND, self._on_ack)
        self.node.on(REPLY_KIND, self._on_reply)

    # -- inbound ------------------------------------------------------------

    def _on_ack(self, message: Message) -> None:
        event = self._ack_waits.pop(message.payload["rid"], None)
        if event is not None:       # first replica's ack wins; rest drop
            event.succeed(message.payload)

    def _on_reply(self, message: Message) -> None:
        reply: Reply = message.payload
        event = self._reply_waits.pop(reply.cid, None)
        if event is not None:
            event.succeed(reply)

    def _next_uid(self, base: str) -> str:
        count = self._uid_counts.get(base, 0)
        self._uid_counts[base] = count + 1
        return base if count == 0 else f"{base}#r{count}"

    # -- ordered reconfiguration entries ------------------------------------

    def _all_groups(self) -> list[str]:
        """Oracle + every partition group: the epoch fence must appear in
        every ordered log so all replicas bump identically."""
        return sorted(self.directory.groups())

    def _ordered_entry(self, kind: str, partition: str):
        """Generator: amcast one reconfiguration entry, await an oracle ack.

        Retries under fresh uids; the oracle caches join/leave-begin acks,
        so a re-delivered entry yields the original plan.
        """
        rid = f"rcfg-{self.node.name}-{next(_rid_counter)}"
        spec = {"kind": kind, "partition": partition, "rid": rid,
                "manager": self.node.name}
        policy = self.retry_policy
        sends = 0
        while True:
            sends += 1
            if sends > 1:
                self.entry_resends += 1
            event = self.env.event()
            self._ack_waits[rid] = event
            self.mcast.multicast(self._all_groups(), {"reconfig": spec},
                                 size=192, uid=self._next_uid(f"am:{rid}"))
            fired, ack = yield from with_timeout(
                self.env, event, policy.timeout_ms if policy else None)
            if fired:
                break
            self._ack_waits.pop(rid, None)
            if policy.gives_up(sends):
                raise RequestTimeout(rid, sends)
            yield self.env.timeout(policy.backoff_ms(sends, self._rng))
        if "error" in ack:
            raise ReconfigError(f"{kind} {partition}: {ack['error']}")
        self.epoch = max(self.epoch, ack.get("epoch", 0))
        return ack

    # -- bulk migration -----------------------------------------------------

    def _run_batches(self, batches: list[dict]):
        """Generator: issue the plan's moves through the DS-SMR machinery."""
        for batch in batches:
            yield from self._run_move(batch)

    def _run_move(self, batch: dict):
        move = Command(op="move", ctype=CommandType.MOVE,
                       variables=tuple(batch["variables"]),
                       args={"sources": [batch["source"]],
                             "dest": batch["dest"],
                             "notify": self.node.name},
                       cid=batch["cid"], client=self.node.name)
        dests = sorted({ORACLE_GROUP, batch["source"], batch["dest"]})
        envelope = {"command": move, "dests": dests}
        policy = self.retry_policy
        sends = 0
        while True:
            sends += 1
            if sends > 1:
                self.move_resends += 1
            event = self.env.event()
            self._reply_waits[move.cid] = event
            self.mcast.multicast(dests, envelope,
                                 size=move.payload_size(),
                                 uid=self._next_uid(f"am:{move.cid}"))
            fired, _ = yield from with_timeout(
                self.env, event, policy.timeout_ms if policy else None)
            if fired:
                break
            self._reply_waits.pop(move.cid, None)
            if policy.gives_up(sends):
                raise RequestTimeout(move.cid, sends)
            yield self.env.timeout(policy.backoff_ms(sends, self._rng))
        self.batches_sent += 1
        self.keys_migrated += len(batch["variables"])

    # -- public API ---------------------------------------------------------

    def join(self, partition: str):
        """Generator: add ``partition`` to the deployment and rebalance.

        The partition's server group must already be registered in the
        directory (with its replicas attached to the network) — the epoch
        fence and the bulk moves are addressed to it.
        """
        started = self.env.now
        ack = yield from self._ordered_entry("join", partition)
        yield from self._run_batches(ack["batches"])
        self.joins += 1
        if self.tracer.enabled:
            self.tracer.span(f"reconfig:join:{partition}", "reconfig",
                             self.node.name, started, self.env.now,
                             kind="join", partition=partition,
                             epoch=ack["epoch"], keys=ack["keys"])
        return ack

    def leave(self, partition: str):
        """Generator: drain ``partition`` and retire it from the deployment.

        Runs leave-begin, migrates the planned keys, then leave-commit
        rounds (each re-planning stragglers) until the oracle confirms
        the partition holds nothing.
        """
        started = self.env.now
        ack = yield from self._ordered_entry("leave_begin", partition)
        yield from self._run_batches(ack["batches"])
        keys = ack["keys"]
        for _attempt in range(self.MAX_COMMIT_ATTEMPTS):
            commit = yield from self._ordered_entry("leave_commit", partition)
            if commit["drained"]:
                break
            yield from self._run_batches(commit["batches"])
            keys += commit["keys"]
        else:
            raise ReconfigError(f"leave {partition}: drain never converged "
                                f"after {self.MAX_COMMIT_ATTEMPTS} commits")
        self.leaves += 1
        if self.tracer.enabled:
            self.tracer.span(f"reconfig:leave:{partition}", "reconfig",
                             self.node.name, started, self.env.now,
                             kind="leave", partition=partition,
                             epoch=self.epoch, keys=keys)
        return {"epoch": self.epoch, "keys": keys}
