"""Crash-recovery for *partitioned* replicas (closes the gap
:mod:`repro.smr.recovery` documents).

A partitioned replica's state is not a pure function of its delivered
commands — it is coupled to in-flight signal/variable exchanges, the
multicast's timestamp state and the reply cache — so classic
snapshot-and-replay is not enough. The recovery here installs a peer's
full :class:`~repro.reconfig.checkpoint.PartitionCheckpoint` (fetched
via the chunked :class:`~repro.reconfig.transfer.StateTransfer`) and
then replays the ordered-log suffix past the checkpoint's apply
position:

1. The crashed node is recovered in the network and a fresh server of
   the same class is constructed under the same name, with its executor
   *gated* and its log's automatic backfill *suspended* (otherwise it
   would pointlessly backfill history the checkpoint covers).
2. The transfer pulls a frozen checkpoint from the chosen peer; ordered
   traffic arriving meanwhile parks in the log's pending map.
3. Install: store, execution history, reply cache, epoch, multicast
   state (clock, delivered uids, pendings — unfinalised multi-group
   pendings re-arm their self-heal timers), exchange buffers and the
   checkpoint's queued deliveries. Delivered-uid install is what stops
   the backfilled suffix from double-delivering commands the queue
   already carries.
4. The log fast-forwards to the checkpoint position, backfill resumes,
   and an explicit backfill request to the peer fetches the suffix; the
   executor gate opens.

Only non-speaker members recover this way: the fixed-sequencer log dies
with its sequencer (use :class:`~repro.ordering.paxos.PaxosLog`
deployments when the speaker itself must be recoverable).
"""

from __future__ import annotations

from repro.reconfig.checkpoint import PartitionCheckpoint, PartitionCheckpointer
from repro.reconfig.transfer import CheckpointHost, StateTransfer


class PartitionRecovery:
    """Drives one replacement server from construction to caught-up."""

    def __init__(self, server, peer_name: str):
        if server._start_gate is None:
            raise ValueError("the replacement server must be constructed "
                             "with a start_gate (use "
                             "recover_partition_server)")
        self.server = server
        self.peer_name = peer_name
        self.transfer = StateTransfer(server.node, tracer=server.tracer)
        self.installed = False
        self.checkpoint: PartitionCheckpoint | None = None
        self._process = server.env.process(
            self._run(), name=f"{server.node.name}/recovery")

    def _run(self):
        checkpoint = yield from self.transfer.fetch(self.peer_name)
        self._install(checkpoint)

    def _install(self, checkpoint: PartitionCheckpoint) -> None:
        """Install the checkpoint atomically (no yields: one instant)."""
        server = self.server
        for key, value in checkpoint.store.items():
            server.store.write(key, value)
        server.executed = list(checkpoint.executed)
        server.replies._replies.update(checkpoint.replies)
        server.epoch = checkpoint.epoch
        server.applied_reconfigs = set(
            getattr(checkpoint, "applied_reconfigs", ()))
        amcast = server.amcast
        state = checkpoint.amcast
        amcast._clock = state["clock"]
        amcast._delivered_uids = set(state["delivered_uids"])
        amcast._my_ts = dict(state["my_ts"])
        amcast._pending = dict(state["pending"])
        amcast._deliver_count = state["deliver_count"]
        amcast.delivery_log = list(state["delivery_log"])
        if amcast.heal_interval_ms:
            for muid, pending in amcast._pending.items():
                if (pending.proposed and pending.final_ts is None
                        and len(pending.groups) > 1):
                    server.env.schedule_callback(
                        amcast.heal_interval_ms,
                        lambda m=muid: amcast._heal(m))
        exchange = server.exchange
        state = checkpoint.exchange
        exchange._signals = {cid: set(senders)
                             for cid, senders in state["signals"].items()}
        exchange._vars = dict(state["vars"])
        exchange._done = set(state["done"])
        exchange._sent = dict(state["sent"])
        server._deliveries._items.clear()
        server._deliveries._items.extend(checkpoint.queued)
        server.log.fast_forward(max(server.log.applied_count,
                                    checkpoint.applied_count))
        server.log.resume_backfill()
        server.log.request_backfill(provider=self.peer_name)
        self.checkpoint = checkpoint
        self.installed = True
        server._start_gate.succeed(None)


def recover_partition_server(crashed, peer):
    """Bring a crashed partition replica back under the same name.

    ``crashed`` is the dead server object (any :class:`SsmrServer`
    subclass); ``peer`` is a live replica of the *same partition* with a
    checkpointer and :class:`CheckpointHost` attached. Returns the
    replacement server (same class, same name), already recovering; its
    ``recovery`` attribute exposes progress, and a fresh checkpointer and
    host are attached so the replacement can later seed others.
    """
    if crashed.partition != peer.partition:
        raise ValueError(f"peer {peer.node.name} replicates "
                         f"{peer.partition!r}, not {crashed.partition!r}")
    name = crashed.node.name
    if crashed.directory.speaker(crashed.partition) == name:
        raise ValueError(f"{name} is the group speaker; the ordered log "
                         "cannot survive its crash (deploy PaxosLog for "
                         "speaker fault tolerance)")
    network = crashed.node.network
    network.recover(name)
    replacement = type(crashed)(
        crashed.env, network, crashed.directory, crashed.partition, name,
        crashed.state_machine, execution=crashed.execution,
        log_factory=type(crashed.log),
        speaker_only=crashed.amcast.speaker_only,
        dedup=getattr(crashed.replies, "enabled", True),
        start_gate=crashed.env.event(), tracer=crashed.tracer)
    replacement.log.suspend_backfill()
    PartitionCheckpointer(replacement)
    CheckpointHost(replacement)
    replacement.recovery = PartitionRecovery(replacement, peer.node.name)
    return replacement
