"""Crash-recovery for *partitioned* replicas (closes the gap
:mod:`repro.smr.recovery` documents).

A partitioned replica's state is not a pure function of its delivered
commands — it is coupled to in-flight signal/variable exchanges, the
multicast's timestamp state and the reply cache — so classic
snapshot-and-replay is not enough. The recovery here installs a peer's
full :class:`~repro.reconfig.checkpoint.PartitionCheckpoint` (fetched
via the chunked :class:`~repro.reconfig.transfer.StateTransfer`) and
then replays the ordered-log suffix past the checkpoint's apply
position:

1. The crashed node is recovered in the network and a fresh server of
   the same class is constructed under the same name, with its executor
   *gated* and its log's automatic backfill *suspended* (otherwise it
   would pointlessly backfill history the checkpoint covers).
2. The transfer pulls a frozen checkpoint from the chosen peer; ordered
   traffic arriving meanwhile parks in the log's pending map.
3. Install: store, execution history, reply cache, epoch, multicast
   state (clock, delivered uids, pendings — unfinalised multi-group
   pendings re-arm their self-heal timers), exchange buffers and the
   checkpoint's queued deliveries. Delivered-uid install is what stops
   the backfilled suffix from double-delivering commands the queue
   already carries.
4. The log fast-forwards to the checkpoint position, backfill resumes,
   and an explicit backfill request to the peer fetches the suffix; the
   executor gate opens.

Only non-speaker members recover this way: the fixed-sequencer log dies
with its sequencer (use :class:`~repro.ordering.paxos.PaxosLog`
deployments when the speaker itself must be recoverable).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.reconfig.checkpoint import PartitionCheckpoint, PartitionCheckpointer
from repro.reconfig.transfer import (CheckpointHost, StateTransfer,
                                     StateTransferStalled)


def install_checkpoint(server, checkpoint: PartitionCheckpoint) -> None:
    """Install a checkpoint's state into a gated replacement server.

    Atomic (no yields: one virtual instant). Shared by peer-transfer
    recovery and the durable cold-start ladder (:mod:`repro.store`);
    callers follow up with ``fast_forward``/backfill/gate themselves.
    """
    for key, value in checkpoint.store.items():
        server.store.write(key, value)
    server.executed = list(checkpoint.executed)
    server.replies._replies.update(checkpoint.replies)
    server.epoch = checkpoint.epoch
    server.applied_reconfigs = set(
        getattr(checkpoint, "applied_reconfigs", ()))
    amcast = server.amcast
    state = checkpoint.amcast
    amcast._clock = state["clock"]
    amcast._delivered_uids = set(state["delivered_uids"])
    amcast._my_ts = dict(state["my_ts"])
    amcast._pending = dict(state["pending"])
    amcast._deliver_count = state["deliver_count"]
    amcast.delivery_log = list(state["delivery_log"])
    if amcast.heal_interval_ms:
        for muid, pending in amcast._pending.items():
            if (pending.proposed and pending.final_ts is None
                    and len(pending.groups) > 1):
                server.env.schedule_callback(
                    amcast.heal_interval_ms,
                    lambda m=muid: amcast._heal(m))
    exchange = server.exchange
    state = checkpoint.exchange
    exchange._signals = {cid: set(senders)
                         for cid, senders in state["signals"].items()}
    exchange._vars = dict(state["vars"])
    exchange._done = set(state["done"])
    exchange._sent = dict(state["sent"])
    server._deliveries._items.clear()
    server._deliveries._items.extend(checkpoint.queued)


class PartitionRecovery:
    """Drives one replacement server from construction to caught-up.

    Tries the primary peer first and walks ``fallback_peers`` when a
    transfer stalls (source peer gone). With every source exhausted the
    recovery turns *terminal*: ``failed`` is set, a flight-recorder
    event is logged and ``on_failure`` fires so the heal supervisor can
    escalate to spare-join or abandon — no silent hang.
    """

    #: No transfer progress for this long means the source peer is gone.
    STALL_AFTER_MS = 500.0

    def __init__(self, server, peer_name: str,
                 fallback_peers: Sequence[str] = (),
                 stall_after_ms: Optional[float] = STALL_AFTER_MS,
                 on_failure=None):
        if server._start_gate is None:
            raise ValueError("the replacement server must be constructed "
                             "with a start_gate (use "
                             "recover_partition_server)")
        self.server = server
        self.peer_name = peer_name
        self.peers = [peer_name] + [p for p in fallback_peers
                                    if p != peer_name]
        self.stall_after_ms = stall_after_ms
        self.on_failure = on_failure
        self.transfer = StateTransfer(server.node, tracer=server.tracer)
        self.installed = False
        self.failed = False
        self.peers_tried: list[str] = []
        self.checkpoint: PartitionCheckpoint | None = None
        self._process = server.env.process(
            self._run(), name=f"{server.node.name}/recovery")

    def _run(self):
        for peer in self.peers:
            self.peer_name = peer
            self.peers_tried.append(peer)
            try:
                checkpoint = yield from self.transfer.fetch(
                    peer, stall_after_ms=self.stall_after_ms)
            except StateTransferStalled as stalled:
                self.server.node.flight(
                    "recovery",
                    f"transfer from {peer} stalled in {stalled.phase} "
                    f"phase; trying next peer")
                continue
            self._install(checkpoint)
            return
        self.failed = True
        self.server.node.flight(
            "recovery", f"state transfer failed: all "
            f"{len(self.peers)} source peer(s) gone")
        if self.on_failure is not None:
            self.on_failure(self)

    def _install(self, checkpoint: PartitionCheckpoint) -> None:
        server = self.server
        install_checkpoint(server, checkpoint)
        server.log.fast_forward(max(server.log.applied_count,
                                    checkpoint.applied_count))
        server.log.resume_backfill()
        server.log.request_backfill(provider=self.peer_name)
        self.checkpoint = checkpoint
        self.installed = True
        checkpointer = getattr(server, "checkpointer", None)
        if checkpointer is not None and checkpointer.store is not None:
            # Durable deployments persist the freshly installed state so
            # the local disk can cold-start this incarnation.
            checkpointer.capture(reason="recovery")
        server._start_gate.succeed(None)


def recover_partition_server(crashed, peer, fallback_peers=(),
                             on_failure=None):
    """Bring a crashed partition replica back under the same name.

    ``crashed`` is the dead server object (any :class:`SsmrServer`
    subclass); ``peer`` is a live replica of the *same partition* with a
    checkpointer and :class:`CheckpointHost` attached, and
    ``fallback_peers`` names alternates to try if the transfer from
    ``peer`` stalls. Returns the replacement server (same class, same
    name), already recovering; its ``recovery`` attribute exposes
    progress, and a fresh checkpointer and host are attached so the
    replacement can later seed others.
    """
    if crashed.partition != peer.partition:
        raise ValueError(f"peer {peer.node.name} replicates "
                         f"{peer.partition!r}, not {crashed.partition!r}")
    name = crashed.node.name
    if crashed.directory.speaker(crashed.partition) == name:
        raise ValueError(f"{name} is the group speaker; the ordered log "
                         "cannot survive its crash (deploy PaxosLog for "
                         "speaker fault tolerance)")
    network = crashed.node.network
    network.recover(name)
    replacement = type(crashed)(
        crashed.env, network, crashed.directory, crashed.partition, name,
        crashed.state_machine, execution=crashed.execution,
        log_factory=type(crashed.log),
        speaker_only=crashed.amcast.speaker_only,
        dedup=getattr(crashed.replies, "enabled", True),
        start_gate=crashed.env.event(), tracer=crashed.tracer)
    replacement.log.suspend_backfill()
    PartitionCheckpointer(replacement)
    CheckpointHost(replacement)
    pool = getattr(crashed, "parallel", None)
    if pool is not None:
        from repro.smr.parallel import ParallelExecutionModel
        replacement.attach_parallel(
            ParallelExecutionModel(crashed.env, pool.config))
    replacement.recovery = PartitionRecovery(
        replacement, peer.node.name, fallback_peers=fallback_peers,
        on_failure=on_failure)
    return replacement
