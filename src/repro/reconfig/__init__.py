"""Elastic reconfiguration: checkpoints, state transfer, join/leave.

The subsystem behind the scalable part of *dynamic scalable* SMR:

* :mod:`repro.reconfig.checkpoint` — deterministic, epoch-tagged
  snapshots of one partition replica (store + execution history +
  protocol state + oracle location-map slice);
* :mod:`repro.reconfig.transfer` — chunked, resumable bulk state
  transfer of those checkpoints over ``repro.net``, with flow control
  and per-chunk integrity checks;
* :mod:`repro.reconfig.manager` — the :class:`ReconfigurationManager`
  drives live partition joins (epoch fence + bulk rebalance onto the
  newcomer) and leaves (drain + redistribute + retire);
* :mod:`repro.reconfig.recovery` — crash-recovery of a partitioned
  replica by installing a peer checkpoint and replaying the ordered-log
  suffix.
"""

from repro.reconfig.checkpoint import (PartitionCheckpoint,
                                       PartitionCheckpointer,
                                       canonical_bytes, state_checksum)
from repro.reconfig.manager import ReconfigError, ReconfigurationManager
from repro.reconfig.recovery import (PartitionRecovery,
                                     recover_partition_server)
from repro.reconfig.transfer import (CheckpointHost, StateTransfer,
                                     new_transfer_id)

__all__ = [
    "CheckpointHost",
    "PartitionCheckpoint",
    "PartitionCheckpointer",
    "PartitionRecovery",
    "ReconfigError",
    "ReconfigurationManager",
    "StateTransfer",
    "canonical_bytes",
    "new_transfer_id",
    "recover_partition_server",
    "state_checksum",
]
