"""Deterministic, epoch-tagged partition checkpoints.

A partition replica's state is *not* a pure function of its delivered
command sequence (unlike classic SMR): multi-partition execution couples it
to in-flight signal/variable exchanges, the Skeen multicast keeps pending
timestamp state, and the reply cache carries exactly-once obligations. A
checkpoint therefore captures everything a replacement replica needs to be
*behaviourally* identical from the capture point onward:

* the variable store and the execution history (ids + reply cache);
* the atomic-multicast endpoint state (logical clock, delivered uids,
  own timestamps, pending multi-group messages);
* the exchange buffer (received signals/variables, done flags and the
  outbound cache that serves peers' pull requests);
* the delivery queue, including the command the executor is currently
  inside (its effects are not yet in the store, so it counts as queued);
* the ordered-log apply position, bounding the log suffix to replay;
* this partition's slice of the oracle's location map (every key in the
  store lives here — ownership *is* store contents).

Captures are synchronous in virtual time, hence consistent. The checksum
is computed over a canonical serialisation (sorted dict keys, sorted
sets), so equal states yield equal checksums across replicas, runs and
``PYTHONHASHSEED`` values — the property behind the byte-deterministic
elastic scenarios.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Optional


def canonical_bytes(obj) -> bytes:
    """Stable byte serialisation: dicts sorted by key, sets sorted."""
    return repr(_canonical(obj)).encode()


def _canonical(obj):
    if isinstance(obj, dict):
        return tuple(sorted(((repr(k), _canonical(v))
                             for k, v in obj.items())))
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(v) for v in obj))
    return repr(obj)


def state_checksum(obj) -> str:
    """Short deterministic digest of any checkpoint-able structure."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()[:16]


@dataclass
class PartitionCheckpoint:
    """One consistent snapshot of one partition replica."""

    partition: str
    replica: str
    epoch: int
    taken_at: float                  # virtual ms
    store: dict
    executed: list
    replies: dict                    # cid -> cached Reply
    applied_count: int               # ordered-log apply position
    amcast: dict                     # clock / delivered / my_ts / pending
    exchange: dict                   # signals / vars / done / sent
    queued: list                     # pending AmcastDelivery objects
    location_slice: dict = field(default_factory=dict)
    # Reconfiguration entry rids already applied (re-delivery dedup must
    # survive recovery, or a replacement replica double-bumps its epoch).
    applied_reconfigs: list = field(default_factory=list)
    checksum: str = ""

    @property
    def num_keys(self) -> int:
        return len(self.store)

    def compute_checksum(self) -> str:
        return state_checksum({
            "partition": self.partition,
            "epoch": self.epoch,
            "store": self.store,
            "executed": self.executed,
            "applied_count": self.applied_count,
            "location_slice": self.location_slice,
        })


class PartitionCheckpointer:
    """Captures checkpoints of one partition server.

    Attach one per server (``PartitionCheckpointer(server)`` registers
    itself as ``server.checkpointer``); the server then auto-captures on
    every ordered reconfiguration entry (epoch boundary), and the
    state-transfer host captures on demand for recovering peers. The last
    ``keep`` epoch-tagged checkpoints are retained for inspection.
    """

    def __init__(self, server, keep: int = 4):
        self.server = server
        self.keep = keep
        self.history: list[PartitionCheckpoint] = []
        self.captures = 0
        # Durable persistence (repro.store), attached by the harness when
        # durability is armed; None keeps checkpoints memory-only.
        self.store = None
        server.checkpointer = self

    def capture(self, reason: str = "manual") -> PartitionCheckpoint:
        """Take one consistent snapshot (synchronous in virtual time)."""
        server = self.server
        queued = []
        executed = list(server.executed)
        pool = getattr(server, "parallel", None)
        if pool is not None and pool.pending:
            # Commands on the worker pool (repro.smr.parallel) have been
            # dispatched — they already sit in `executed` — but their
            # store effects land only at their finish times. A capture
            # taken mid-flight must count them as queued work, exactly
            # like `_current_delivery`: filter them back out of the
            # execution history and re-queue their deliveries (they were
            # dequeued before whatever the executor holds now, so they
            # go first).
            inflight = set(pool.inflight_cids())
            executed = [cid for cid in executed if cid not in inflight]
            queued.extend(pool.inflight_deliveries())
        if server._current_delivery is not None:
            queued.append(server._current_delivery)
        queued.extend(server._deliveries._items)
        amcast = server.amcast
        exchange = server.exchange
        checkpoint = PartitionCheckpoint(
            partition=server.partition,
            replica=server.node.name,
            epoch=server.epoch,
            taken_at=server.env.now,
            store=copy.deepcopy(server.store.snapshot()),
            executed=executed,
            replies=copy.deepcopy(server.replies._replies),
            applied_count=server.log.applied_count,
            amcast={
                "clock": amcast._clock,
                "delivered_uids": sorted(amcast._delivered_uids),
                "my_ts": dict(amcast._my_ts),
                "pending": copy.deepcopy(amcast._pending),
                "deliver_count": amcast._deliver_count,
                "delivery_log": list(amcast.delivery_log),
            },
            exchange={
                "signals": {cid: sorted(senders) for cid, senders
                            in exchange._signals.items()},
                "vars": copy.deepcopy(exchange._vars),
                "done": sorted(exchange._done),
                "sent": copy.deepcopy(exchange._sent),
            },
            queued=copy.deepcopy(queued),
            location_slice={key: server.partition
                            for key in server.store.snapshot()},
            applied_reconfigs=sorted(
                getattr(server, "applied_reconfigs", ())),
        )
        checkpoint.checksum = checkpoint.compute_checksum()
        self.captures += 1
        self.history.append(checkpoint)
        del self.history[:-self.keep]
        if self.store is not None:
            self.store.save(checkpoint)
        if server.tracer.enabled:
            server.tracer.span(
                f"ckpt:{server.node.name}:{self.captures}", "checkpoint",
                server.node.name, server.env.now, server.env.now,
                epoch=checkpoint.epoch, keys=checkpoint.num_keys,
                reason=reason)
        return checkpoint

    def latest(self) -> Optional[PartitionCheckpoint]:
        return self.history[-1] if self.history else None
