"""The Chirper state machine.

State layout: one variable per user, keyed ``u<N>``, holding::

    {"following": [ids], "followers": [ids], "timeline": [(post_id, author, text)]}

Operations (all deterministic):

* ``post(user, text, post_id)`` — reads the poster's variable, appends the
  message to the timeline of every follower *declared in the command's
  variable set* (the client proxy declares poster + followers, which is how
  the Eyrie prototype works: the access set must be known at submission).
* ``follow(follower, followee)`` / ``unfollow`` — update both users' sets.
* ``timeline(user, limit)`` — return the newest posts; single-variable.

Timelines are capped at :data:`TIMELINE_LIMIT` entries, as a real feed
service would cap materialised feeds.
"""

from __future__ import annotations

from repro.smr.command import Command
from repro.smr.state_machine import ExecutionView, StateMachine

TIMELINE_LIMIT = 50
MAX_POST_CHARS = 140


def user_key(user: int) -> str:
    """State-variable key for a user id."""
    return f"u{user}"


def _fresh_user() -> dict:
    return {"following": [], "followers": [], "timeline": []}


class ChirperStateMachine(StateMachine):
    """Deterministic Chirper application logic."""

    def initial_value(self, key, args: dict):
        return _fresh_user()

    def apply(self, command: Command, view: ExecutionView):
        op = command.op
        args = command.args
        if op == "post":
            return self._post(command, view)
        if op == "follow":
            return self._follow(args, view, add=True)
        if op == "unfollow":
            return self._follow(args, view, add=False)
        if op == "timeline":
            return self._timeline(args, view)
        raise ValueError(f"unknown Chirper operation: {op!r}")

    def _post(self, command: Command, view: ExecutionView):
        args = command.args
        text = args["text"][:MAX_POST_CHARS]
        entry = (args["post_id"], args["user"], text)
        # The command's variable set is: author first, follower keys after;
        # the post lands on every declared timeline (author's included).
        delivered = 0
        for key in command.variables:
            record = dict(view.read(key))
            timeline = list(record["timeline"])
            timeline.append(entry)
            record["timeline"] = timeline[-TIMELINE_LIMIT:]
            view.write(key, record)
            delivered += 1
        return {"delivered": delivered}

    def _follow(self, args: dict, view: ExecutionView, add: bool):
        follower_key = user_key(args["follower"])
        followee_key = user_key(args["followee"])
        follower = dict(view.read(follower_key))
        followee = dict(view.read(followee_key))
        following = set(follower["following"])
        followers = set(followee["followers"])
        if add:
            following.add(args["followee"])
            followers.add(args["follower"])
        else:
            following.discard(args["followee"])
            followers.discard(args["follower"])
        follower["following"] = sorted(following)
        followee["followers"] = sorted(followers)
        view.write(follower_key, follower)
        view.write(followee_key, followee)
        return {"following": len(follower["following"])}

    def _timeline(self, args: dict, view: ExecutionView):
        record = view.read(user_key(args["user"]))
        limit = args.get("limit", TIMELINE_LIMIT)
        return list(record["timeline"][-limit:])
