"""Chirper application client.

Wraps any protocol client proxy (classic SMR, S-SMR or DS-SMR — they all
expose the same ``run_command`` generator) with the Chirper operations. The
client holds a *social view* — the follower sets it needs to declare a
post's variable set up front. In the benchmark harness the view comes from
the workload's social graph (the driver generated the follows, so it knows
them); in the dynamic-workload experiment clients build the view as they
issue follow commands.

When pointed at a graph-partitioned oracle deployment the client also sends
workload *hints* so the oracle can learn the social graph (the paper:
"clients inform the oracle upon submitting structural operations").
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.smr.command import Command, CommandType, Reply, ReplyStatus
from repro.apps.chirper.service import TIMELINE_LIMIT, user_key

HINT_NONE = "none"
HINT_STRUCTURAL = "structural"   # hint on follow/unfollow only
HINT_ALL = "all"                 # additionally hint post access patterns


class ChirperClient:
    """Issues Chirper operations through a protocol client proxy."""

    def __init__(self, proxy, social_view: Optional[dict] = None,
                 hint_mode: str = HINT_NONE):
        if hint_mode not in (HINT_NONE, HINT_STRUCTURAL, HINT_ALL):
            raise ValueError(f"unknown hint mode: {hint_mode!r}")
        self.proxy = proxy
        self.social_view = social_view if social_view is not None else {}
        self.hint_mode = hint_mode
        self._post_counter = 0
        self._hinted_degree: dict[int, int] = {}
        self.ops_completed = 0
        self.ops_failed = 0

    # -- operations (all generators used inside client processes) -----------

    def create_user(self, user: int):
        """Generator: register a new user."""
        command = Command(op="create_user", ctype=CommandType.CREATE,
                          variables=(user_key(user),))
        reply = yield from self.proxy.run_command(command)
        if reply.status is ReplyStatus.OK:
            self.social_view.setdefault(user, set())
        return self._count(reply)

    def delete_user(self, user: int):
        """Generator: remove a user from the service (DELETE command)."""
        command = Command(op="delete_user", ctype=CommandType.DELETE,
                          variables=(user_key(user),))
        reply = yield from self.proxy.run_command(command)
        if reply.status is ReplyStatus.OK:
            self.social_view.pop(user, None)
            for followers in self.social_view.values():
                followers.discard(user)
        return self._count(reply)

    def post(self, user: int, text: str):
        """Generator: post a message to the user's followers' timelines."""
        followers = sorted(self.social_view.get(user, ()))
        variables = (user_key(user),) + tuple(user_key(f) for f in followers)
        self._post_counter += 1
        command = Command(op="post", variables=variables,
                          writes=variables,
                          args={"user": user, "text": text,
                                "post_id": f"{self.name}/{self._post_counter}"})
        reply = yield from self.proxy.run_command(command)
        if self.hint_mode == HINT_ALL and reply.status is ReplyStatus.OK:
            self._hint_post(user, followers)
        return self._count(reply)

    def follow(self, follower: int, followee: int):
        """Generator: ``follower`` starts following ``followee``."""
        return (yield from self._follow_op("follow", follower, followee))

    def unfollow(self, follower: int, followee: int):
        """Generator: ``follower`` stops following ``followee``."""
        return (yield from self._follow_op("unfollow", follower, followee))

    def timeline(self, user: int, limit: int = TIMELINE_LIMIT):
        """Generator: read a user's timeline (single-partition by design)."""
        command = Command(op="timeline", variables=(user_key(user),),
                          args={"user": user, "limit": limit})
        reply = yield from self.proxy.run_command(command)
        return self._count(reply)

    # -- helpers -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.proxy.name

    def _follow_op(self, op: str, follower: int, followee: int):
        variables = (user_key(follower), user_key(followee))
        command = Command(op=op, variables=variables, writes=variables,
                          args={"follower": follower, "followee": followee})
        reply = yield from self.proxy.run_command(command)
        if reply.status is ReplyStatus.OK:
            followers = self.social_view.setdefault(followee, set())
            if op == "follow":
                followers.add(follower)
            else:
                followers.discard(follower)
            if self.hint_mode != HINT_NONE:
                self._send_hint([user_key(follower), user_key(followee)],
                                [(user_key(follower), user_key(followee))])
        return self._count(reply)

    def _hint_post(self, user: int, followers: Iterable[int]) -> None:
        """Hint the poster's star once per observed degree (deduplicated)."""
        followers = list(followers)
        if self._hinted_degree.get(user) == len(followers):
            return
        self._hinted_degree[user] = len(followers)
        author = user_key(user)
        self._send_hint([author] + [user_key(f) for f in followers],
                        [(author, user_key(f)) for f in followers])

    def _send_hint(self, vertices, edges) -> None:
        send = getattr(self.proxy, "send_hint", None)
        if send is not None:
            send(vertices, edges)

    def _count(self, reply: Reply) -> Reply:
        if reply.status is ReplyStatus.OK:
            self.ops_completed += 1
        else:
            self.ops_failed += 1
        return reply
