"""Chirper — the paper's Twitter-like social network service.

Users follow/unfollow each other, post 140-character messages, and read
their timelines. The state is one variable per user, holding the user's
follower/following sets and timeline; timelines are *pushed*: a post appends
to every follower's variable. Consequently ``getTimeline`` is always a
single-partition command (the paper designed Chirper this way because reads
dominate social workloads), while posts and follows span partitions and are
the commands that trigger moves under DS-SMR.
"""

from repro.apps.chirper.service import (
    ChirperStateMachine,
    TIMELINE_LIMIT,
    user_key,
)
from repro.apps.chirper.client import ChirperClient

__all__ = [
    "ChirperClient",
    "ChirperStateMachine",
    "TIMELINE_LIMIT",
    "user_key",
]
