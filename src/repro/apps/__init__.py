"""Example applications built on the repro library."""
