"""Cluster builder: assemble a full deployment of any scheme.

``build_cluster`` wires up the simulation environment, the two-switch
network, the server groups (plus the oracle group for the dynamic schemes),
and returns a :class:`Cluster` handle that creates clients, preloads state
and exposes the metrics the experiments need.

Schemes:

* ``"smr"``      — classic SMR: one group, full replication.
* ``"ssmr"``     — S-SMR with a static partition map.
* ``"dssmr"``    — DS-SMR with the decentralised majority policy
  (client-issued moves), the paper's core protocol.
* ``"dynastar"`` — DS-SMR with the graph-partitioned oracle policy
  (oracle-issued moves + workload hints), the draft's extension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import (DssmrClient, DssmrServer, MajorityTargetPolicy,
                        ORACLE_GROUP, OracleReplica)
from repro.dynastar import GraphTargetPolicy
from repro.net import Network, SwitchedClusterLatency, paper_cluster_topology
from repro.obs import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.ordering import GroupDirectory
from repro.qos import (AdaptiveBatcher, AdmissionController, AimdWindow,
                       QosConfig, classify_entry)
from repro.reconfig import (CheckpointHost, PartitionCheckpointer,
                            ReconfigurationManager,
                            recover_partition_server)
from repro.resilience import RetryPolicy
from repro.sim import Environment, LatencyRecorder, SeedStream
from repro.smr import (ExecutionConfig, ExecutionModel,
                       KeyValueStateMachine, ParallelExecutionModel,
                       SmrClient, SmrReplica, StateMachine)
from repro.ssmr import SsmrClient, SsmrServer, StaticOracle, StaticPartitionMap
from repro.store import (DiskFarm, DurabilityConfig, attach_durability,
                         wipe_wal)
from repro.store.durability import detach_durability

SCHEMES = ("smr", "ssmr", "dssmr", "dynastar")


@dataclass
class ClusterConfig:
    """Parameters of a deployment."""

    scheme: str = "dssmr"
    num_partitions: int = 2
    replicas_per_partition: int = 2
    oracle_replicas: int = 2
    seed: int = 1
    max_retries: int = 3
    use_cache: bool = True
    repartition_interval: int = 200
    # Asynchronous (multi-threaded-oracle) repartitioning, dynastar only.
    async_repartition: bool = False
    # Override the graph policy's simulated repartition cost (ms per graph
    # element); None keeps the policy default. Used by the E12 ablation.
    repartition_cost_per_element: Optional[float] = None
    execution: ExecutionModel = field(default_factory=ExecutionModel)
    state_machine_factory: Callable[[], StateMachine] = KeyValueStateMachine
    # Static assignment for the ssmr scheme and for preloading: maps
    # variable key -> partition index. Unmapped keys fall back to hashing.
    initial_assignment: Optional[dict] = None
    # Client-side timeout/retry/backoff (see repro.resilience); None keeps
    # the legacy block-forever clients. The chaos campaign sets a policy.
    retry_policy: Optional[RetryPolicy] = None
    # Server-side request deduplication (reply caches). Disabling it is a
    # test-only switch for the chaos sentinel: with dedup off, client
    # resends execute twice and the checkers must catch it.
    dedup: bool = True
    # Overload control (repro.qos): None builds no controller objects and
    # keeps every hot path in its pre-QoS shape (the perf gate pins the
    # default path to the committed baseline). A QosConfig arms
    # sequencer-side admission + adaptive batching on every group speaker
    # and an AIMD congestion window on every client.
    qos: Optional[QosConfig] = None
    # Durable storage (repro.store): None builds no disks and keeps every
    # hot path in its pre-durability shape (the perf gate pins that). A
    # DurabilityConfig arms a simulated disk per server with a
    # group-committed write-ahead log, durable checkpoints, and the
    # cold-start recovery ladder (power_fail / power_restore /
    # cold_restart_server).
    durability: Optional[DurabilityConfig] = None
    # Parallel execution (repro.smr.parallel): None keeps every executor
    # on the sequential code path, byte-identical to pre-parallel runs
    # (the perf gate pins that). An ExecutionConfig arms a conflict-aware
    # worker pool per server: non-conflicting single-partition accesses
    # overlap on the configured number of simulated cores.
    parallel: Optional[ExecutionConfig] = None

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; "
                             f"pick one of {SCHEMES}")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.scheme == "smr":
            self.num_partitions = 1


class Cluster:
    """A running deployment plus its measurement instruments."""

    def __init__(self, config: ClusterConfig, tracer=None, profiler=None):
        self.config = config
        self.env = Environment()
        self.seeds = SeedStream(config.seed)
        # tracer=None keeps span collection disabled (NULL_TRACER): every
        # emission site no-ops, so tracing is strictly opt-in and the
        # disabled path adds no bookkeeping. The profiler follows the same
        # null-object pattern; the Network carries it to every node.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler
        self.partitions = tuple(f"p{i}"
                                for i in range(config.num_partitions))
        self._client_counter = itertools.count()

        groups: dict[str, list[str]] = {}
        for partition in self.partitions:
            groups[partition] = [
                f"{partition}s{j}"
                for j in range(config.replicas_per_partition)]
        self._dynamic = config.scheme in ("dssmr", "dynastar")
        if self._dynamic:
            groups[ORACLE_GROUP] = [f"or{j}"
                                    for j in range(config.oracle_replicas)]
        self.directory = GroupDirectory(groups)

        server_names = [m for p in self.partitions
                        for m in self.directory.members(p)]
        oracle_names = (self.directory.members(ORACLE_GROUP)
                        if self._dynamic else ())
        self.topology = paper_cluster_topology(server_names, oracle_names)
        self.network = Network(self.env, self.seeds.child("net"),
                               SwitchedClusterLatency(self.topology),
                               profiler=profiler)

        self.partition_map = StaticPartitionMap(
            self.partitions, assignment=config.initial_assignment)

        # Durable storage (repro.store): one simulated disk per server,
        # created lazily by the farm so disks survive server replacement
        # — that persistence *is* the durability being modelled.
        self.disks: Optional[DiskFarm] = None
        if config.durability is not None:
            self.disks = DiskFarm(self.env, self.seeds.child("disks"),
                                  config.durability)
        # Cold start re-seeds the preloaded base image before replaying
        # a WAL (see repro.store.coldstart): preloads bypass the ordered
        # log, so replay alone cannot reconstruct them.
        self._initial_locations: dict = {}
        self._initial_partition_state: dict = {}
        # Terminal recovery failures (every source peer gone): recorded
        # here and fanned out to hooks (the heal supervisor escalates).
        self.recovery_failures: list = []
        self.recovery_failure_hooks: list = []

        self.servers: dict[str, object] = {}
        self.oracles: list[OracleReplica] = []
        self._build_servers()

        # Overload control (repro.qos): one admission controller and one
        # adaptive batcher per group, armed on the group's speaker (the
        # sequencer — the only process that sees client entries before
        # they are ordered, so the admitted sequence is replica-consistent
        # by construction).
        self.qos_admission: dict[str, AdmissionController] = {}
        self.qos_batchers: dict[str, AdaptiveBatcher] = {}
        if config.qos is not None:
            for partition in self.partitions:
                speaker = self.directory.speaker(partition)
                self._attach_qos(partition, self.servers[speaker])
            if self._dynamic:
                speaker = self.directory.speaker(ORACLE_GROUP)
                for oracle in self.oracles:
                    if oracle.node.name == speaker:
                        self._attach_qos(ORACLE_GROUP, oracle)

        # Elastic reconfiguration (repro.reconfig): every partitioned
        # server gets a checkpointer + checkpoint host (pure handler
        # registration — inert until a reconfiguration or recovery runs);
        # dynamic schemes also get the manager that drives joins/leaves.
        self.reconfig: Optional[ReconfigurationManager] = None
        self.retired_partitions: tuple[str, ...] = ()
        if self._dynamic:
            self.reconfig = ReconfigurationManager(
                self.env, self.network, self.directory, "rm0",
                retry_policy=config.retry_policy,
                rng=self.seeds.child("reconfig").stream("rm0"),
                tracer=self.tracer)

        # Shared measurement: virtual time is global and monotonic, so one
        # recorder serves every client.
        self.latency = LatencyRecorder("cluster")
        self.clients: list = []
        self.registry = MetricsRegistry()
        self._register_metrics()

    # -- construction ------------------------------------------------------

    def _build_servers(self) -> None:
        config = self.config
        for partition in self.partitions:
            for name in self.directory.members(partition):
                self.servers[name] = self._make_server(partition, name)
        if self._dynamic:
            policy_factory = self._policy_factory()
            for name in self.directory.members(ORACLE_GROUP):
                oracle = OracleReplica(
                    self.env, self.network, self.directory, name,
                    self.partitions, policy=policy_factory(),
                    oracle_issues_moves=config.scheme == "dynastar",
                    async_repartition=config.async_repartition,
                    dedup=config.dedup, tracer=self.tracer)
                if self.disks is not None:
                    attach_durability(oracle, self.disks)
                self.oracles.append(oracle)

    def _make_server(self, partition: str, name: str):
        config = self.config
        state_machine = config.state_machine_factory()
        if config.scheme == "smr":
            server = SmrReplica(self.env, self.network, self.directory,
                                partition, name, state_machine,
                                execution=config.execution,
                                dedup=config.dedup, tracer=self.tracer)
        else:
            if config.scheme == "ssmr":
                server = SsmrServer(self.env, self.network, self.directory,
                                    partition, name, state_machine,
                                    execution=config.execution,
                                    dedup=config.dedup, tracer=self.tracer)
            else:
                server = DssmrServer(self.env, self.network, self.directory,
                                     partition, name, state_machine,
                                     execution=config.execution,
                                     dedup=config.dedup, tracer=self.tracer)
            PartitionCheckpointer(server)
            CheckpointHost(server)
        if self.disks is not None:
            attach_durability(server, self.disks)
        if config.parallel is not None:
            server.attach_parallel(
                ParallelExecutionModel(self.env, config.parallel))
        return server

    def _attach_qos(self, group: str, owner) -> None:
        """Arm one group's overload control on its speaker replica."""
        qcfg = self.config.qos
        admission = AdmissionController(qcfg, name=owner.node.name)
        batcher = AdaptiveBatcher(min_window_ms=qcfg.min_batch_window_ms,
                                  max_window_ms=qcfg.max_batch_window_ms,
                                  depth_per_ms=qcfg.batch_depth_per_ms,
                                  depth_fn=owner.queue_depth)
        owner.attach_qos(admission, batcher=batcher,
                         classify=classify_entry)
        self.qos_admission[group] = admission
        self.qos_batchers[group] = batcher

    def _register_metrics(self) -> None:
        """Register the deployment's scrape-time gauges (see repro.obs).

        Gauges read the live component counters at scrape time, so
        registration happens once here and the rest of the codebase keeps
        its existing plumbing. Dict-valued gauges are flattened by
        ``MetricsRegistry.scrape`` as ``name.key``.
        """
        reg = self.registry
        net = self.network
        reg.gauge("net.messages_sent", lambda: net.messages_sent)
        reg.gauge("net.messages_delivered", lambda: net.messages_delivered)
        reg.gauge("net.bytes_sent", lambda: net.bytes_sent)
        reg.gauge("net.sent_by_kind", lambda: dict(net.sent_by_kind))
        reg.gauge("queue.peak", lambda: {
            name: server.queue_peak
            for name, server in sorted(self.servers.items())})
        reg.gauge("oracle.queue_peak", lambda: sum(
            o.queue_peak for o in self.oracles))
        reg.gauge("replies.cache_hits", lambda: sum(
            s.replies.hits for s in self.servers.values())
            + sum(o.replies.hits for o in self.oracles))
        reg.gauge("exchange.pulls_sent", lambda: sum(
            s.exchange.pulls_sent for s in self.servers.values()
            if hasattr(s, "exchange")))
        reg.gauge("exchange.pulls_served", lambda: sum(
            s.exchange.pulls_served for s in self.servers.values()
            if hasattr(s, "exchange")))
        reg.gauge("oracle.consults", lambda: sum(
            o.consults.total for o in self.oracles))
        reg.gauge("oracle.moves_issued", lambda: self.moves_total())
        reg.gauge("oracle.repartitions", lambda: sum(
            o.repartitions.total for o in self.oracles))
        reg.gauge("clients.count", lambda: len(self.clients))
        reg.gauge("clients.timeouts", lambda: sum(
            c.timeouts for c in self.clients))
        reg.gauge("clients.resends", lambda: sum(
            c.resends for c in self.clients))
        reg.gauge("clients.consults", self.total_consults)
        reg.gauge("clients.cache_hits", self.total_cache_hits)
        reg.gauge("clients.retries", self.total_retries)
        reg.gauge("clients.fallbacks", self.total_fallbacks)
        reg.gauge("reconfig.epoch", lambda: (
            self.oracles[0].epoch if self.oracles else 0))
        reg.gauge("reconfig.reconfigs", lambda: sum(
            o.reconfigs.total for o in self.oracles))
        reg.gauge("reconfig.evacuations", lambda: sum(
            o.evacuations.total for o in self.oracles))
        reg.gauge("reconfig.joins", lambda: (
            self.reconfig.joins if self.reconfig else 0))
        reg.gauge("reconfig.leaves", lambda: (
            self.reconfig.leaves if self.reconfig else 0))
        reg.gauge("reconfig.keys_migrated", lambda: (
            self.reconfig.keys_migrated if self.reconfig else 0))
        reg.gauge("reconfig.batches_sent", lambda: (
            self.reconfig.batches_sent if self.reconfig else 0))
        reg.gauge("reconfig.move_resends", lambda: (
            self.reconfig.move_resends if self.reconfig else 0))
        reg.gauge("reconfig.checkpoints", lambda: sum(
            s.checkpointer.captures for s in self.servers.values()
            if getattr(s, "checkpointer", None) is not None))
        reg.gauge("reconfig.transfer_chunks", lambda: sum(
            s.recovery.transfer.chunks_received
            for s in self.servers.values()
            if getattr(s, "recovery", None) is not None))
        reg.gauge("reconfig.transfer_retries", lambda: sum(
            s.recovery.transfer.retries + s.recovery.transfer.meta_retries
            for s in self.servers.values()
            if getattr(s, "recovery", None) is not None))
        reg.gauge("reconfig.recoveries", lambda: sum(
            1 for s in self.servers.values()
            if getattr(s, "recovery", None) is not None
            and s.recovery.installed))
        if self.config.qos is not None:
            # qos.* gauges only exist on QoS-enabled deployments, so the
            # scrape output of every pre-existing campaign is unchanged.
            reg.gauge("qos.admitted", lambda: sum(
                a.admitted for a in self.qos_admission.values()))
            reg.gauge("qos.shed", lambda: sum(
                a.shed for a in self.qos_admission.values()))
            reg.gauge("qos.shed_rate", lambda: sum(
                a.shed_rate for a in self.qos_admission.values()))
            reg.gauge("qos.shed_codel", lambda: sum(
                a.shed_codel for a in self.qos_admission.values()))
            reg.gauge("qos.control_bypass", lambda: sum(
                a.bypassed for a in self.qos_admission.values()))
            reg.gauge("qos.batch_window_ms", lambda: {
                group: round(b.last_window_ms, 4)
                for group, b in sorted(self.qos_batchers.items())})
            reg.gauge("qos.overload_replies", lambda: sum(
                getattr(c, "overload_replies", 0) for c in self.clients))
            reg.gauge("qos.aimd_window_min", lambda: round(min(
                (c.congestion.window for c in self.clients
                 if getattr(c, "congestion", None) is not None),
                default=0.0), 3))
            reg.gauge("qos.retry_budget_denied", lambda: sum(
                c.retry_budget.denied for c in self.clients
                if getattr(c, "retry_budget", None) is not None))
        if self.config.durability is not None:
            # store.* gauges only exist on durable deployments, so the
            # scrape output of every pre-existing campaign is unchanged.
            reg.gauge("store", lambda: self.disks.stats.to_dict())
            reg.gauge("store.recovery_failures",
                      lambda: len(self.recovery_failures))
        if self.config.parallel is not None:
            # exec.* gauges only exist on parallel-enabled deployments,
            # so the scrape output of every sequential campaign is
            # unchanged.
            reg.gauge("exec", self.exec_stats)

    def _policy_factory(self):
        config = self.config
        if config.scheme == "dynastar":
            def make_policy():
                policy = GraphTargetPolicy(
                    self.partitions,
                    repartition_interval=config.repartition_interval)
                if config.repartition_cost_per_element is not None:
                    policy.REPARTITION_COST_PER_ELEMENT = \
                        config.repartition_cost_per_element
                return policy
            return make_policy
        return MajorityTargetPolicy

    # -- state loading --------------------------------------------------------

    def preload(self, initial_values: dict) -> None:
        """Install initial state before the run starts.

        Variables are placed according to the static partition map (i.e.
        ``config.initial_assignment``, with hash fallback); the dynamic
        schemes' oracles learn the same placement.
        """
        by_partition: dict[str, dict] = {p: {} for p in self.partitions}
        location: dict = {}
        for key, value in initial_values.items():
            partition = self.partition_map.partition_of(key)
            by_partition[partition][key] = value
            location[key] = partition
        for partition in self.partitions:
            for name in self.directory.members(partition):
                self.servers[name].load_state(by_partition[partition])
        for oracle in self.oracles:
            oracle.preload_locations(location)
        # Cold starts re-seed these base images before replaying a WAL —
        # preloads bypass the ordered log, so replay alone cannot
        # reconstruct them.
        self._initial_locations = dict(location)
        self._initial_partition_state = {
            partition: dict(contents)
            for partition, contents in by_partition.items()}

    # -- clients -----------------------------------------------------------------

    def new_client(self, name: Optional[str] = None):
        """Create a protocol client proxy appropriate for the scheme."""
        config = self.config
        name = name or f"c{next(self._client_counter)}"
        # Each client's backoff jitter has its own seeded stream, so
        # retries desynchronise deterministically.
        rng = self.seeds.child("clients").stream(name)
        if config.scheme == "smr":
            client = SmrClient(self.env, self.network, self.directory, name,
                               self.partitions[0], latency=self.latency,
                               retry_policy=config.retry_policy, rng=rng,
                               tracer=self.tracer)
        elif config.scheme == "ssmr":
            client = SsmrClient(self.env, self.network, self.directory, name,
                                StaticOracle(self.partition_map),
                                latency=self.latency,
                                retry_policy=config.retry_policy, rng=rng,
                                tracer=self.tracer)
        else:
            client = DssmrClient(self.env, self.network, self.directory,
                                 name, self.partitions,
                                 max_retries=config.max_retries,
                                 use_cache=config.use_cache,
                                 latency=self.latency,
                                 retry_policy=config.retry_policy, rng=rng,
                                 tracer=self.tracer)
        if config.qos is not None:
            qcfg = config.qos
            client.congestion = AimdWindow(
                initial=qcfg.aimd_initial, min_window=qcfg.aimd_min,
                max_window=qcfg.aimd_max, increase=qcfg.aimd_increase,
                decrease=qcfg.aimd_decrease, rtt_ms=qcfg.aimd_rtt_ms,
                cooldown_ms=qcfg.aimd_cooldown_ms)
        self.clients.append(client)
        return client

    # -- execution ------------------------------------------------------------------

    def run(self, until: float) -> None:
        """Advance the simulation to virtual time ``until`` (ms)."""
        self.env.run(until=until)

    # -- elastic reconfiguration (repro.reconfig) -----------------------------------

    def grow(self, partition: str):
        """Generator: live-join a new partition and rebalance onto it.

        Registers the group, builds its replicas (executor live but idle —
        nothing routes to them until the oracle admits the partition),
        then drives the ordered join through the manager. Clients learn
        the widened partition set once the join completes, so fallback
        executions cover the newcomer.
        """
        if self.reconfig is None:
            raise RuntimeError("elastic reconfiguration needs a dynamic "
                               "scheme (dssmr or dynastar)")
        members = [f"{partition}s{j}"
                   for j in range(self.config.replicas_per_partition)]
        self.directory.add_group(partition, members)
        base = len(self.servers)
        for offset, name in enumerate(members):
            self.topology.attach(name, (base + offset) % 2)
            server = self._make_server(partition, name)
            # Fresh groups start at the *current* configuration epoch:
            # they only deliver fences ordered after their creation.
            server.epoch = self.reconfig.epoch
            self.servers[name] = server
        if self.config.qos is not None:
            speaker = self.directory.speaker(partition)
            self._attach_qos(partition, self.servers[speaker])
        ack = yield from self.reconfig.join(partition)
        self.partitions = tuple(list(self.partitions) + [partition])
        for client in self.clients:
            if hasattr(client, "update_partitions"):
                client.update_partitions(self.partitions)
        return ack

    def shrink(self, partition: str):
        """Generator: drain ``partition`` and retire it from the deployment.

        The retired replicas stay up (they keep delivering epoch fences)
        but hold no variables and receive no commands.
        """
        if self.reconfig is None:
            raise RuntimeError("elastic reconfiguration needs a dynamic "
                               "scheme (dssmr or dynastar)")
        result = yield from self.reconfig.leave(partition)
        # A batch open on the drained partition's sequencer must not be
        # stranded mid-window: flush it now that no new traffic will
        # re-arm the window (the LogSequencer batching edge).
        for name in self.directory.members(partition):
            log = getattr(self.servers.get(name), "log", None)
            if log is not None and hasattr(log, "flush_pending"):
                log.flush_pending()
        self.partitions = tuple(p for p in self.partitions
                                if p != partition)
        self.retired_partitions = tuple(
            list(self.retired_partitions) + [partition])
        for client in self.clients:
            if hasattr(client, "update_partitions"):
                client.update_partitions(self.partitions)
        return result

    def recover_server(self, name: str):
        """Crash-recover partitioned replica ``name`` from a live peer.

        Installs a peer checkpoint and replays the log suffix (see
        :mod:`repro.reconfig.recovery`); the replacement takes over the
        crashed server's slot in :attr:`servers`. Every other live
        member is handed over as a fallback source, and a transfer that
        exhausts all of them lands in :attr:`recovery_failures` (and
        the registered hooks) instead of hanging silently.
        """
        crashed = self.servers[name]
        partition = crashed.partition
        live = [member for member in self.directory.members(partition)
                if member != name
                and not self.servers[member].node.crashed]
        if not live:
            raise RuntimeError(f"no live peer left in {partition!r} to "
                               f"recover {name} from (durable deployments "
                               "can cold_restart_server instead)")
        if self.disks is not None:
            detach_durability(crashed)
        replacement = recover_partition_server(
            crashed, self.servers[live[0]], fallback_peers=live[1:],
            on_failure=self._on_recovery_failure)
        if self.disks is not None:
            # The on-disk history belongs to the previous incarnation;
            # the transferred checkpoint supersedes it (and is persisted
            # by the recovery install), so the stale WAL is wiped.
            wipe_wal(self.disks.disk(name))
            attach_durability(replacement, self.disks)
        self.servers[name] = replacement
        if (self.config.qos is not None
                and name == self.directory.speaker(partition)):
            self._attach_qos(partition, replacement)
        return replacement

    def _on_recovery_failure(self, recovery) -> None:
        """A state transfer ran out of source peers: surface it."""
        self.recovery_failures.append(recovery)
        for hook in list(self.recovery_failure_hooks):
            hook(recovery)

    # -- durable storage (repro.store) -----------------------------------------

    def cold_restart_server(self, name: str):
        """Restart crashed replica ``name`` from its own disk.

        Runs the recovery ladder of :mod:`repro.store.coldstart`: local
        checkpoint + WAL replay when the on-disk history is intact,
        peer transfer only for a corrupted or gapped prefix.
        """
        if self.disks is None:
            raise RuntimeError("cold restart needs a durable deployment "
                               "(set ClusterConfig.durability)")
        from repro.store.coldstart import cold_start_member
        replacement = cold_start_member(self, name)
        group = replacement.log.group
        if (self.config.qos is not None
                and name == self.directory.speaker(group)):
            self._attach_qos(group, replacement)
        return replacement

    def power_fail(self) -> None:
        """Full-cluster power loss: every server and oracle crashes and
        every disk drops (or tears) its un-fsynced writes."""
        if self.disks is None:
            raise RuntimeError("power_fail needs a durable deployment "
                               "(set ClusterConfig.durability)")
        for name in sorted(self.servers):
            server = self.servers[name]
            detach_durability(server)
            if not server.node.crashed:
                server.crash()
        for oracle in self.oracles:
            detach_durability(oracle)
            if not oracle.node.crashed:
                oracle.crash()
        self.disks.power_fail_all()

    def power_restore(self) -> None:
        """Cold-start every partition — and the oracle group — from disk.

        No peer has live state after :meth:`power_fail`, so each group
        restores from the union of its members' durable WALs (see
        :mod:`repro.store.coldstart`). Retired partitions stay down:
        they hold no variables and serve no traffic.
        """
        if self.disks is None:
            raise RuntimeError("power_restore needs a durable deployment "
                               "(set ClusterConfig.durability)")
        from repro.store.coldstart import (cold_start_oracles,
                                           cold_start_partition)
        for partition in self.partitions:
            cold_start_partition(self, partition)
        if self._dynamic:
            cold_start_oracles(self)
        if self.config.qos is not None:
            for partition in self.partitions:
                speaker = self.directory.speaker(partition)
                self._attach_qos(partition, self.servers[speaker])
            if self._dynamic:
                speaker = self.directory.speaker(ORACLE_GROUP)
                for oracle in self.oracles:
                    if oracle.node.name == speaker:
                        self._attach_qos(ORACLE_GROUP, oracle)

    # -- metrics access ------------------------------------------------------------

    @property
    def oracle(self) -> Optional[OracleReplica]:
        return self.oracles[0] if self.oracles else None

    def moves_total(self) -> int:
        """Total variables moved between partitions (0 for static schemes)."""
        if not self.oracles:
            return 0
        return self.oracles[0].moves_issued.total

    def moves_series(self):
        if not self.oracles:
            return None
        return self.oracles[0].moves_issued.events

    def total_retries(self) -> int:
        return sum(getattr(c, "retry_count", 0) for c in self.clients)

    def total_consults(self) -> int:
        return sum(getattr(c, "consult_count", 0) for c in self.clients)

    def total_cache_hits(self) -> int:
        return sum(getattr(c, "cache_hits", 0) for c in self.clients)

    def total_fallbacks(self) -> int:
        return sum(getattr(c, "fallback_count", 0) for c in self.clients)

    def exec_stats(self) -> dict:
        """Aggregate ``exec.*`` snapshot over every armed worker pool.

        Core utilization is busy time over wall time summed across cores
        and servers; the conflict-stall fraction is scheduler wait over
        (wait + run). Both are virtual-time exact, hence deterministic.
        """
        pools = [server.parallel for name, server
                 in sorted(self.servers.items())
                 if getattr(server, "parallel", None) is not None]
        if not pools:
            return {}
        now = self.env.now
        stats = [pool.stats(now) for pool in pools]
        busy = sum(s["busy_ms"] for s in stats)
        serial = sum(s["serial_ms"] for s in stats)
        stall = sum(s["stall_ms"] for s in stats)
        span = now * sum(s["workers"] for s in stats)
        run = busy + serial
        return {
            "workers": stats[0]["workers"],
            "commands": sum(s["commands"] for s in stats),
            "barriers": sum(s["barriers"] for s in stats),
            "busy_ms": round(busy, 6),
            "serial_ms": round(serial, 6),
            "stall_ms": round(stall, 6),
            "utilization": round(busy / span, 6) if span > 0 else 0.0,
            "stall_fraction": (round(stall / (stall + run), 6)
                               if stall + run > 0 else 0.0),
        }


def build_cluster(tracer=None, profiler=None, **kwargs) -> Cluster:
    """Convenience: ``build_cluster(scheme="dssmr", num_partitions=4, ...)``."""
    return Cluster(ClusterConfig(**kwargs), tracer=tracer, profiler=profiler)
