"""Perf-regression suite: the engine behind ``python -m repro perfcheck``.

Runs the seeded fault-free workload of :mod:`repro.harness.tracerun`
against every scheme and condenses each run into a few headline metrics
(virtual-time throughput, latency percentiles, message/byte counts). The
numbers are pure functions of ``(seed, clients, ops, partitions,
slowdown)`` — virtual time, not wall time — so they are byte-stable
across machines and runs. That is what lets CI compare against a
committed baseline and fail on real drift without flakiness: any change
in the metrics is a change in protocol behaviour, never scheduler noise.

Baselines live in ``benchmarks/baselines/*.json`` (format
``repro-perf-baseline/1``). The gate checks throughput (lower is a
regression) and p95 latency (higher is a regression) against a relative
tolerance; ``slowdown`` scales the execution cost model to prove the
gate trips (CI injects a 20% synthetic slowdown and requires failure).

The suite also carries a ``durability`` section: one extra dssmr run
with the write-ahead log armed. The regular (WAL-off) scheme sections
are produced by the exact pre-durability deployment, so a regenerated
baseline proves the WAL default costs nothing — the scheme sections stay
byte-identical — while the WAL-on run gates the absolute latency
overhead against :data:`repro.harness.durability.OVERHEAD_BOUND_MS`.
"""

from __future__ import annotations

import json
import math
import time
from typing import Optional

from repro.harness.durability import OVERHEAD_BOUND_MS
from repro.harness.tracerun import run_traced_workload
from repro.store import DurabilityConfig

BASELINE_FORMAT = "repro-perf-baseline/1"
DEFAULT_BASELINE_PATH = "benchmarks/baselines/perf_smoke.json"
DEFAULT_TOLERANCE = 0.05
PERF_SCHEMES = ("smr", "ssmr", "dssmr", "dynastar")

#: Wall-clock substrate baseline (separate file: these numbers are NOT
#: byte-deterministic and must never enter the canonical perf payload).
SUBSTRATE_FORMAT = "repro-substrate-baseline/1"
DEFAULT_SUBSTRATE_BASELINE_PATH = \
    "benchmarks/baselines/substrate_micro.json"
#: Floors are committed at measured-rate / headroom, so the gate only
#: trips on a multiple-x substrate slowdown, never on machine variance.
SUBSTRATE_HEADROOM = 4.0


def canonical_json(obj) -> str:
    """Byte-deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def _scheme_metrics(run) -> dict:
    """Headline metrics of one workload run (all virtual-time)."""
    latency = run.cluster.latency
    finished = run.finished_at
    if finished and finished > 0:
        throughput = run.completed / (finished / 1000.0)
    else:
        throughput = 0.0
    mean = latency.mean()
    return {
        "ops_completed": run.completed,
        "ops_expected": run.expected,
        "finished_at_ms": _round(finished) if finished else None,
        "throughput_ops_per_s": _round(throughput),
        "latency_mean_ms": _round(mean) if not math.isnan(mean) else None,
        "latency_p50_ms": _round(latency.percentile(50)),
        "latency_p95_ms": _round(latency.percentile(95)),
        "latency_p99_ms": _round(latency.percentile(99)),
        "messages_sent": run.cluster.network.messages_sent,
        "bytes_sent": run.cluster.network.bytes_sent,
    }


def run_perf_suite(seed: int = 7, num_clients: int = 3,
                   ops_per_client: int = 10, num_partitions: int = 2,
                   slowdown: float = 1.0,
                   schemes: tuple = PERF_SCHEMES) -> dict:
    """Run the workload per scheme; returns a baseline-format dict."""
    results = {}
    for scheme in schemes:
        run = run_traced_workload(
            scheme, seed=seed, num_clients=num_clients,
            ops_per_client=ops_per_client, num_partitions=num_partitions,
            trace=False, slowdown=slowdown)
        results[scheme] = _scheme_metrics(run)
    durability = None
    if "dssmr" in results:
        wal_run = run_traced_workload(
            "dssmr", seed=seed, num_clients=num_clients,
            ops_per_client=ops_per_client, num_partitions=num_partitions,
            trace=False, slowdown=slowdown, durability=DurabilityConfig())
        wal_on = _scheme_metrics(wal_run)
        off_mean = results["dssmr"]["latency_mean_ms"] or 0.0
        on_mean = wal_on["latency_mean_ms"] or 0.0
        durability = {
            "scheme": "dssmr",
            "wal_on": wal_on,
            # Absolute delta against the WAL-off dssmr run above (same
            # parameters) — base latencies are sub-millisecond, so a
            # relative bound would be meaningless.
            "overhead_ms": _round(on_mean - off_mean),
            "bound_ms": OVERHEAD_BOUND_MS,
        }
    parallel = None
    if "dssmr" in results:
        # Parallel-execution section: the scheme sections above run with
        # parallel=None (byte-identical to the pre-parallel deployment —
        # zero drift when off), and one executor-bound throughput pair
        # proves the engine's headline speedup. Virtual-time numbers, so
        # byte-stable like everything else in this payload. The sweep
        # keeps its own heavy cost model (the ``slowdown`` knob targets
        # the scheme gates; a uniformly slowed model would leave this
        # ratio unchanged anyway).
        from repro.harness.parallelexec import (GATE_CONFLICT,
                                                GATE_MIN_SPEEDUP,
                                                GATE_WORKERS,
                                                run_throughput)
        sweep_kwargs = dict(conflict=GATE_CONFLICT, seed=seed,
                            num_clients=16, duration_ms=1500.0)
        seq = run_throughput(0, **sweep_kwargs)
        par = run_throughput(GATE_WORKERS, **sweep_kwargs)
        speedup = (par["throughput_kcps"] / seq["throughput_kcps"]
                   if seq["throughput_kcps"] > 0 else 0.0)
        parallel = {
            "scheme": "dssmr",
            "workers": GATE_WORKERS,
            "conflict": GATE_CONFLICT,
            "seq_throughput_kcps": seq["throughput_kcps"],
            "par_throughput_kcps": par["throughput_kcps"],
            "speedup": _round(speedup, 3),
            "min_speedup": GATE_MIN_SPEEDUP,
            "utilization": par["utilization"],
            "stall_fraction": par["stall_fraction"],
        }
    return {
        "format": BASELINE_FORMAT,
        "seed": seed,
        "num_clients": num_clients,
        "ops_per_client": ops_per_client,
        "num_partitions": num_partitions,
        "slowdown": _round(slowdown),
        "schemes": results,
        "durability": durability,
        "parallel": parallel,
    }


def compare_to_baseline(current: dict, baseline: dict,
                        tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Gate check: list of regression descriptions (empty == pass).

    Throughput may not drop, and p95 latency may not rise, by more than
    ``tolerance`` (relative) against the baseline. Incomplete runs
    (``ops_completed < ops_expected``) always fail.
    """
    failures: list[str] = []
    if baseline.get("format") != BASELINE_FORMAT:
        return [f"baseline format {baseline.get('format')!r} != "
                f"{BASELINE_FORMAT!r}"]
    for scheme, base in sorted(baseline.get("schemes", {}).items()):
        cur = current.get("schemes", {}).get(scheme)
        if cur is None:
            failures.append(f"{scheme}: missing from current run")
            continue
        if cur["ops_completed"] < cur["ops_expected"]:
            failures.append(
                f"{scheme}: incomplete run "
                f"({cur['ops_completed']}/{cur['ops_expected']} ops)")
        floor = base["throughput_ops_per_s"] * (1.0 - tolerance)
        if cur["throughput_ops_per_s"] < floor:
            failures.append(
                f"{scheme}: throughput {cur['throughput_ops_per_s']:.1f} "
                f"ops/s below floor {floor:.1f} "
                f"(baseline {base['throughput_ops_per_s']:.1f}, "
                f"tolerance {tolerance:.0%})")
        ceiling = base["latency_p95_ms"] * (1.0 + tolerance)
        if cur["latency_p95_ms"] > ceiling:
            failures.append(
                f"{scheme}: p95 latency {cur['latency_p95_ms']:.3f}ms "
                f"above ceiling {ceiling:.3f}ms "
                f"(baseline {base['latency_p95_ms']:.3f}ms, "
                f"tolerance {tolerance:.0%})")
    base_dur = baseline.get("durability")
    if base_dur is not None:
        cur_dur = current.get("durability")
        if cur_dur is None:
            failures.append("durability: missing from current run")
        else:
            on = cur_dur["wal_on"]
            if on["ops_completed"] < on["ops_expected"]:
                failures.append(
                    f"durability: incomplete WAL-on run "
                    f"({on['ops_completed']}/{on['ops_expected']} ops)")
            bound = base_dur.get("bound_ms", OVERHEAD_BOUND_MS)
            if cur_dur["overhead_ms"] > bound:
                failures.append(
                    f"durability: WAL latency overhead "
                    f"{cur_dur['overhead_ms']:.3f}ms above documented "
                    f"bound {bound:.3f}ms")
            ceiling = base_dur["wal_on"]["latency_p95_ms"] * (1.0 + tolerance)
            if on["latency_p95_ms"] > ceiling:
                failures.append(
                    f"durability: WAL-on p95 latency "
                    f"{on['latency_p95_ms']:.3f}ms above ceiling "
                    f"{ceiling:.3f}ms (baseline "
                    f"{base_dur['wal_on']['latency_p95_ms']:.3f}ms, "
                    f"tolerance {tolerance:.0%})")
    base_par = baseline.get("parallel")
    if base_par is not None:
        cur_par = current.get("parallel")
        if cur_par is None:
            failures.append("parallel: missing from current run")
        else:
            # The speedup gate is absolute (against the committed
            # minimum), not relative: the engine either delivers the
            # headline multiple or it regressed.
            minimum = base_par.get("min_speedup", cur_par["min_speedup"])
            if cur_par["speedup"] < minimum:
                failures.append(
                    f"parallel: speedup {cur_par['speedup']:.3f}x at "
                    f"{cur_par['workers']} workers / "
                    f"{cur_par['conflict']:.0%} conflict below minimum "
                    f"{minimum:.1f}x")
            floor = base_par["seq_throughput_kcps"] * (1.0 - tolerance)
            if cur_par["seq_throughput_kcps"] < floor:
                failures.append(
                    f"parallel: sequential-baseline throughput "
                    f"{cur_par['seq_throughput_kcps']:.4f} kcmd/ms below "
                    f"floor {floor:.4f} (baseline "
                    f"{base_par['seq_throughput_kcps']:.4f}, tolerance "
                    f"{tolerance:.0%})")
    return failures


# -- wall-clock substrate gate ---------------------------------------------

def run_substrate_micro(events: int = 200_000,
                        messages: int = 50_000) -> dict:
    """Measure the simulation substrate's wall-clock rates.

    Two microbenchmarks over the kernel's hottest shapes: event-heap
    churn (a self-rescheduling ``schedule_callback`` chain — the shape
    of every network delivery and parallel-execution completion) and
    end-to-end message delivery through the network fast path. Rates
    are events (messages) per wall-clock second — machine-dependent, so
    they live in their own baseline file and never touch the canonical
    perf payload.
    """
    from repro.net import FixedLatency, Network
    from repro.sim import Environment, SeedStream

    env = Environment()
    state = {"left": events}

    def tick():
        left = state["left"]
        if left:
            state["left"] = left - 1
            env.schedule_callback(0.01, tick)

    env.schedule_callback(0.0, tick)
    started = time.perf_counter()
    env.run()
    event_elapsed = time.perf_counter() - started

    env = Environment()
    net = Network(env, SeedStream(1), FixedLatency(0.05))
    net.register("b")
    started = time.perf_counter()
    for i in range(messages):
        net.send("a", "b", "k", payload=i)
    env.run()
    message_elapsed = time.perf_counter() - started
    assert net.messages_delivered == messages

    return {
        "events": events,
        "events_per_s": _round(events / event_elapsed, 1),
        "messages": messages,
        "messages_per_s": _round(messages / message_elapsed, 1),
    }


def make_substrate_baseline(current: dict,
                            headroom: float = SUBSTRATE_HEADROOM) -> dict:
    """Derive the committed floor file from one measurement."""
    return {
        "format": SUBSTRATE_FORMAT,
        "headroom": headroom,
        "events": current["events"],
        "messages": current["messages"],
        "events_per_s_floor": _round(current["events_per_s"] / headroom, 1),
        "messages_per_s_floor": _round(
            current["messages_per_s"] / headroom, 1),
    }


def compare_substrate(current: dict, baseline: dict) -> list[str]:
    """Substrate gate: list of slowdown descriptions (empty == pass)."""
    if baseline.get("format") != SUBSTRATE_FORMAT:
        return [f"substrate baseline format {baseline.get('format')!r} "
                f"!= {SUBSTRATE_FORMAT!r}"]
    failures = []
    for name in ("events", "messages"):
        rate = current[f"{name}_per_s"]
        floor = baseline[f"{name}_per_s_floor"]
        if rate < floor:
            failures.append(
                f"substrate: {name} rate {rate:,.0f}/s below committed "
                f"floor {floor:,.0f}/s ({baseline.get('headroom', 0):.0f}x "
                f"headroom baseline)")
    return failures


def load_baseline(path: str) -> Optional[dict]:
    """Parse a baseline file; None when it does not exist."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
