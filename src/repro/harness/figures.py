"""Per-figure experiment definitions (the reproduction index).

One function per figure/experiment of the paper's evaluation, each
returning a :class:`FigureData` with the regenerated series/rows and a
formatted text rendering. The benchmark suite under ``benchmarks/`` calls
these functions; EXPERIMENTS.md records their output next to the paper's
claims.

All experiments are scaled down from the paper's testbed (10k users, 100
clients/partition, minutes of wall time) to simulator scale (hundreds of
users, ~10 clients/partition, seconds of virtual time). The scaling keeps
every regime the figures show: saturation, locality transitions, and
convergence dynamics. Scale factors are documented per experiment in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph import (Graph, HashPartitioner, MultilevelPartitioner,
                         RandomPartitioner, edge_cut_fraction, imbalance)
from repro.harness.experiment import (run_chirper_experiment,
                                      static_assignment_for)
from repro.harness.metrics import ExperimentMetrics
from repro.harness.report import format_sparkline, format_table
from repro.smr import ExecutionModel
from repro.workload import clustered_graph, holme_kim_graph

#: Execution model used by the figure experiments: heavy enough that the
#: configured client counts saturate partitions (as the paper's 100 clients
#: per partition did), so throughput differences reflect parallelism.
FIGURE_EXECUTION = ExecutionModel(base_ms=0.4, per_variable_ms=0.02)

SCHEMES = ("ssmr", "dssmr", "dynastar")


@dataclass
class FigureData:
    """Output of one reproduced figure."""

    figure_id: str
    title: str
    report: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.figure_id}: {self.title} ==\n{self.report}"


def _scheme_kwargs(scheme: str, graph: Graph, num_partitions: int,
                   planted: dict | None) -> dict:
    if scheme == "ssmr":
        return {"initial_assignment":
                static_assignment_for(graph, num_partitions, planted)}
    if scheme == "dynastar":
        return {"repartition_interval": 100}
    return {}


def figure1_motivation(seed: int = 5, duration_ms: float = 10_000.0,
                       num_partitions: int = 4, n_users: int = 400,
                       clients_per_partition: int = 8) -> FigureData:
    """Fig. 1 (a–d): throughput and moves over time, strong vs weak locality.

    The "perfect static" line is S-SMR preloaded with the planted optimal
    assignment — the unrealizable ideal the paper compares against.
    """
    sections = []
    data: dict = {}
    for cut, label in [(0.0, "strong"), (0.05, "weak")]:
        graph, planted = clustered_graph(n=n_users, k=num_partitions,
                                         intra_degree=6,
                                         edge_cut_fraction=cut, seed=3)
        lines = [f"-- {label} locality (edge cut {cut:.0%}) --"]
        for scheme in SCHEMES:
            result = run_chirper_experiment(
                scheme, graph, num_partitions=num_partitions,
                clients_per_partition=clients_per_partition,
                duration_ms=duration_ms, warmup_ms=0.0, seed=seed,
                bucket_ms=duration_ms / 20, execution=FIGURE_EXECUTION,
                **_scheme_kwargs(scheme, graph, num_partitions, planted))
            data[(label, scheme)] = result
            tput, moves = result.throughput, result.moves
            lines.append(f"{scheme:9s} tput/s {format_sparkline(tput)} "
                         f"final={tput.values[-1]:8.0f}")
            lines.append(f"{'':9s} mvs/s  {format_sparkline(moves)} "
                         f"final={moves.values[-1]:8.0f} "
                         f"total={result.metrics.moves}")
        sections.append("\n".join(lines))
    return FigureData("fig1", "Motivation: throughput & moves over time",
                      "\n\n".join(sections), data)


def figure2_edgecut_sweep(seed: int = 5, duration_ms: float = 6_000.0,
                          partition_counts=(2, 4, 8),
                          edge_cuts=(0.0, 0.01, 0.05, 0.10),
                          users_per_partition: int = 100,
                          clients_per_partition: int = 8) -> FigureData:
    """Fig. "varying edge-cuts": throughput & latency grid.

    Scheme x partitions x edge-cut sweep — the paper's main comparison.
    """
    rows = []
    data: dict = {}
    for cut in edge_cuts:
        for k in partition_counts:
            graph, planted = clustered_graph(
                n=users_per_partition * k, k=k, intra_degree=6,
                edge_cut_fraction=cut, seed=3)
            for scheme in SCHEMES:
                result = run_chirper_experiment(
                    scheme, graph, num_partitions=k,
                    clients_per_partition=clients_per_partition,
                    duration_ms=duration_ms, warmup_ms=duration_ms / 3,
                    seed=seed, execution=FIGURE_EXECUTION,
                    **_scheme_kwargs(scheme, graph, k, planted))
                metrics = result.metrics
                data[(cut, k, scheme)] = metrics
                rows.append([f"{cut:.0%}", k, scheme,
                             round(metrics.throughput, 0),
                             round(metrics.latency_mean_ms, 2),
                             round(metrics.latency_p95_ms, 2),
                             metrics.moves])
    report = format_table(
        ["cut", "parts", "scheme", "tput/s", "lat-mean", "lat-p95", "moves"],
        rows)
    return FigureData("fig2", "Throughput & latency vs partitions/edge-cut",
                      report, data)


def figure3_partition_count(seed: int = 5, duration_ms: float = 6_000.0,
                            partition_counts=(2, 4, 8),
                            n_users: int = 480,
                            clients_per_partition: int = 8) -> FigureData:
    """Fig. "same graph, different partitionings".

    One fixed social graph with hierarchical community structure is split
    into 2/4/8 parts: the optimal edge-cut grows with the partition count
    (the paper reports 0.13%/1.06%/2.28%/2.67% for 2/4/6/8), so throughput
    first scales and then the cut erodes the gains.
    """
    from repro.workload import hierarchical_graph, hierarchy_split

    graph, leaves = hierarchical_graph(n_users, levels=3, intra_degree=6,
                                       seed=11)
    rows = []
    data: dict = {}
    for k in partition_counts:
        planted = hierarchy_split(leaves, levels=3, k=k)
        cut = edge_cut_fraction(graph, planted)
        result = run_chirper_experiment(
            "dynastar", graph, num_partitions=k,
            clients_per_partition=clients_per_partition,
            duration_ms=duration_ms, warmup_ms=duration_ms / 3, seed=seed,
            execution=FIGURE_EXECUTION, repartition_interval=100)
        metrics = result.metrics
        data[k] = (cut, metrics)
        rows.append([k, f"{cut:.2%}", round(metrics.throughput, 0),
                     round(metrics.latency_mean_ms, 2), metrics.moves])
    report = format_table(["parts", "planted-cut", "tput/s", "lat-mean",
                           "moves"], rows)
    return FigureData("fig3", "Fixed graph, varying partition count",
                      report, data)


def figure4_dynamic_load(seed: int = 5, duration_ms: float = 12_000.0,
                         num_partitions: int = 4, n_users: int = 300,
                         clients: int = 16,
                         repartition_interval: int = 150) -> FigureData:
    """Fig. "dynamic load": start empty; create users and follow edges live.

    The oracle repartitions as the graph grows; throughput climbs after
    each repartitioning. Implemented as a dedicated driver because the
    state starts empty (no preload).
    """
    # Local import: the driver lives beside the experiment runner.
    from repro.harness.dynamic_load import run_dynamic_load_experiment
    return run_dynamic_load_experiment(
        seed=seed, duration_ms=duration_ms, num_partitions=num_partitions,
        n_users=n_users, clients=clients,
        repartition_interval=repartition_interval,
        execution=FIGURE_EXECUTION)


def figure5_partitioner_scaling(sizes=(1_000, 3_000, 10_000, 30_000,
                                       100_000),
                                k: int = 4, seed: int = 7) -> FigureData:
    """Fig. "METIS size/time": partitioner runtime & memory vs graph size.

    The paper shows METIS scaling linearly to 10M vertices; our from-scratch
    multilevel partitioner is measured the same way at simulator scale.
    """
    import time
    import tracemalloc

    rows = []
    data: dict = {}
    for n in sizes:
        graph = holme_kim_graph(n, m=3, triad_probability=0.6, seed=seed)
        tracemalloc.start()
        start = time.perf_counter()
        assignment = MultilevelPartitioner().partition(graph, k)
        elapsed = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        cut = edge_cut_fraction(graph, assignment)
        data[n] = (elapsed, peak, cut)
        rows.append([n, graph.num_edges, f"{elapsed:.2f}s",
                     f"{peak / 1e6:.1f}MB", f"{cut:.1%}",
                     f"{imbalance(graph, assignment, k):.2%}"])
    report = format_table(["vertices", "edges", "time", "peak-mem",
                           "edge-cut", "imbalance"], rows)
    return FigureData("fig5", "Partitioner runtime & memory scaling",
                      report, data)


def figure6_oracle_load(seed: int = 5, duration_ms: float = 8_000.0,
                        partition_counts=(2, 4, 8),
                        users_per_partition: int = 100,
                        clients_per_partition: int = 8) -> FigureData:
    """Fig. "CPU load in the oracle": busy fraction over time.

    Load is high initially (cold client caches force consults) and drops as
    caches warm — the evidence that the oracle is not a bottleneck.
    """
    sections = []
    data: dict = {}
    for k in partition_counts:
        graph, planted = clustered_graph(n=users_per_partition * k, k=k,
                                         intra_degree=6,
                                         edge_cut_fraction=0.01, seed=3)
        result = run_chirper_experiment(
            "dssmr", graph, num_partitions=k,
            clients_per_partition=clients_per_partition,
            duration_ms=duration_ms, warmup_ms=0.0, seed=seed,
            bucket_ms=duration_ms / 16, execution=FIGURE_EXECUTION)
        load = result.oracle_load
        data[k] = load
        peak = max(load.values) if len(load) else 0.0
        final = load.values[-1] if len(load) else 0.0
        sections.append(f"{k} partitions  {format_sparkline(load)} "
                        f"peak={peak:.1%} final={final:.1%}")
    return FigureData("fig6", "Oracle CPU load over time",
                      "\n".join(sections), data)


def figure7_cache_ablation(seed: int = 5, duration_ms: float = 6_000.0,
                           num_partitions: int = 4,
                           users_per_partition: int = 100,
                           clients_per_partition: int = 8) -> FigureData:
    """DS-SMR-paper experiment: the client location cache on vs off."""
    graph, _planted = clustered_graph(n=users_per_partition * num_partitions,
                                      k=num_partitions, intra_degree=6,
                                      edge_cut_fraction=0.01, seed=3)
    rows = []
    data: dict = {}
    for use_cache in (True, False):
        result = run_chirper_experiment(
            "dssmr", graph, num_partitions=num_partitions,
            clients_per_partition=clients_per_partition,
            duration_ms=duration_ms, warmup_ms=duration_ms / 3, seed=seed,
            execution=FIGURE_EXECUTION, use_cache=use_cache)
        metrics = result.metrics
        data[use_cache] = metrics
        rows.append(["on" if use_cache else "off",
                     round(metrics.throughput, 0),
                     round(metrics.latency_mean_ms, 2),
                     metrics.consults, metrics.cache_hits,
                     round(metrics.oracle_busy_fraction, 3)])
    report = format_table(["cache", "tput/s", "lat-mean", "consults",
                           "cache-hits", "oracle-busy"], rows)
    return FigureData("fig7", "Location-cache ablation", report, data)


def figure8_command_mix(seed: int = 5, duration_ms: float = 6_000.0,
                        num_partitions: int = 4,
                        users_per_partition: int = 100,
                        clients_per_partition: int = 8) -> FigureData:
    """DS-SMR-paper experiment: read-heavy command mix.

    getTimeline is single-partition by design (it touches one variable),
    while posts touch the whole follower neighbourhood — under weak
    locality they are also the commands that move state. The realistic
    read-heavy mix therefore runs well above the post-only stress
    workload.
    """
    from repro.workload import MixedWorkload, PostWorkload

    # Weak locality + fanout-sensitive execution: the regime where the
    # post/timeline asymmetry matters.
    execution = ExecutionModel(base_ms=0.4, per_variable_ms=0.08)
    graph, planted = clustered_graph(n=users_per_partition * num_partitions,
                                     k=num_partitions, intra_degree=6,
                                     edge_cut_fraction=0.05, seed=3)
    rows = []
    data: dict = {}
    for label, workload in [("post-only", PostWorkload(graph, seed=seed)),
                            ("mixed", MixedWorkload(graph, seed=seed))]:
        for scheme in ("ssmr", "dssmr"):
            result = run_chirper_experiment(
                scheme, graph, num_partitions=num_partitions,
                clients_per_partition=clients_per_partition,
                duration_ms=duration_ms, warmup_ms=duration_ms / 3,
                seed=seed, workload=workload, execution=execution,
                **_scheme_kwargs(scheme, graph, num_partitions, planted))
            metrics = result.metrics
            data[(label, scheme)] = metrics
            rows.append([label, scheme, round(metrics.throughput, 0),
                         round(metrics.latency_mean_ms, 2),
                         round(metrics.latency_p95_ms, 2)])
    report = format_table(["workload", "scheme", "tput/s", "lat-mean",
                           "lat-p95"], rows)
    return FigureData("fig8", "Command-mix comparison", report, data)


def figure9_retry_fallback(seed: int = 5, duration_ms: float = 5_000.0,
                           num_partitions: int = 4,
                           users_per_partition: int = 75,
                           clients_per_partition: int = 8,
                           retry_limits=(0, 1, 3, 8)) -> FigureData:
    """Ablation: the fallback threshold n (retries before S-SMR fallback).

    An adversarial weak-locality workload makes retries common; a low limit
    falls back (expensive but bounded), a high limit keeps retrying.
    """
    graph, _planted = clustered_graph(n=users_per_partition * num_partitions,
                                      k=num_partitions, intra_degree=6,
                                      edge_cut_fraction=0.10, seed=3)
    rows = []
    data: dict = {}
    for limit in retry_limits:
        result = run_chirper_experiment(
            "dssmr", graph, num_partitions=num_partitions,
            clients_per_partition=clients_per_partition,
            duration_ms=duration_ms, warmup_ms=duration_ms / 3, seed=seed,
            execution=FIGURE_EXECUTION, max_retries=limit)
        metrics = result.metrics
        data[limit] = metrics
        rows.append([limit, round(metrics.throughput, 0),
                     round(metrics.latency_mean_ms, 2),
                     round(metrics.latency_p95_ms, 2),
                     metrics.retries, metrics.fallbacks])
    report = format_table(["max-retries", "tput/s", "lat-mean", "lat-p95",
                           "retries", "fallbacks"], rows)
    return FigureData("fig9", "Retry/fallback threshold ablation", report,
                      data)


def figure10_partitioner_ablation(n: int = 4_000, k: int = 4,
                                  seed: int = 9) -> FigureData:
    """Ablation: partitioning quality of the oracle's partitioner choices."""
    graph = holme_kim_graph(n, m=3, triad_probability=0.7, seed=seed)
    partitioners = [
        ("multilevel", MultilevelPartitioner()),
        ("hash", HashPartitioner()),
        ("random", RandomPartitioner(seed=seed)),
    ]
    rows = []
    data: dict = {}
    for label, partitioner in partitioners:
        assignment = partitioner.partition(graph, k)
        cut = edge_cut_fraction(graph, assignment)
        balance = imbalance(graph, assignment, k)
        data[label] = (cut, balance)
        rows.append([label, f"{cut:.1%}", f"{balance:.2%}"])
    report = format_table(["partitioner", "edge-cut", "imbalance"], rows)
    return FigureData("fig10", "Partitioner quality ablation", report, data)


def figure11_message_complexity(seed: int = 5,
                                duration_ms: float = 3_000.0,
                                num_partitions: int = 2,
                                users_per_partition: int = 100,
                                clients_per_partition: int = 6) -> FigureData:
    """Message complexity: network messages and bytes per command.

    Not a figure in the paper, but the quantity behind its overhead
    arguments: multi-partition commands cost several times the messages of
    single-partition ones (ordering across groups, signals, variable
    exchange), which is why reducing them pays. Reports per-scheme traffic
    and the per-kind breakdown for DS-SMR.
    """
    rows = []
    data: dict = {}
    kind_tables = []
    for cut, locality in [(0.0, "strong"), (0.05, "weak")]:
        graph, planted = clustered_graph(
            n=users_per_partition * num_partitions, k=num_partitions,
            intra_degree=6, edge_cut_fraction=cut, seed=3)
        for scheme in SCHEMES:
            result = run_chirper_experiment(
                scheme, graph, num_partitions=num_partitions,
                clients_per_partition=clients_per_partition,
                duration_ms=duration_ms, warmup_ms=0.0, seed=seed,
                execution=FIGURE_EXECUTION,
                **_scheme_kwargs(scheme, graph, num_partitions, planted))
            deployment = result.extra["deployment"]
            network = deployment.cluster.network
            commands = max(1, result.metrics.completed)
            per_command = network.messages_sent / commands
            bytes_per_command = network.bytes_sent / commands
            data[(locality, scheme)] = (per_command, bytes_per_command)
            rows.append([locality, scheme, result.metrics.completed,
                         round(per_command, 1),
                         round(bytes_per_command / 1024, 2)])
            if scheme == "dssmr":
                top = sorted(network.sent_by_kind.items(),
                             key=lambda item: -item[1])[:6]
                breakdown = ", ".join(
                    f"{kind}={count / commands:.2f}"
                    for kind, count in top)
                kind_tables.append(
                    f"dssmr {locality}: msgs/cmd by kind: {breakdown}")
    report = format_table(["locality", "scheme", "cmds", "msgs/cmd",
                           "KiB/cmd"], rows)
    report += "\n" + "\n".join(kind_tables)
    return FigureData("fig11", "Message complexity per command", report,
                      data)


def figure12_async_oracle(seed: int = 5, duration_ms: float = 6_000.0,
                          num_partitions: int = 4, n_users: int = 400,
                          clients_per_partition: int = 8,
                          repartition_interval: int = 60,
                          cost_per_element: float = 0.05) -> FigureData:
    """Ablation: blocking vs asynchronous oracle repartitioning.

    The paper's implementation section: the oracle "can service requests
    while computing a new partitioning concurrently", switching replicas
    consistently via an atomically multicast partitioning id. With the
    blocking oracle every repartition stalls consults; the asynchronous
    oracle keeps tail latency flat.
    """
    graph, _planted = clustered_graph(n=n_users, k=num_partitions,
                                      intra_degree=6,
                                      edge_cut_fraction=0.01, seed=3)
    rows = []
    data: dict = {}
    for async_mode in (False, True):
        result = run_chirper_experiment(
            "dynastar", graph, num_partitions=num_partitions,
            clients_per_partition=clients_per_partition,
            duration_ms=duration_ms, warmup_ms=duration_ms / 4, seed=seed,
            execution=FIGURE_EXECUTION,
            repartition_interval=repartition_interval,
            async_repartition=async_mode,
            repartition_cost_per_element=cost_per_element)
        metrics = result.metrics
        deployment = result.extra["deployment"]
        oracle = deployment.cluster.oracle
        data[async_mode] = metrics
        rows.append(["async" if async_mode else "blocking",
                     round(metrics.throughput, 0),
                     round(metrics.latency_mean_ms, 2),
                     round(metrics.latency_p95_ms, 2),
                     oracle.policy.repartition_count,
                     round(oracle.busy.total_busy()
                           + oracle.busy_background.total_busy(), 1)])
    report = format_table(["oracle", "tput/s", "lat-mean", "lat-p95",
                           "repartitions", "oracle-cpu-ms"], rows)
    return FigureData("fig12", "Blocking vs asynchronous repartitioning",
                      report, data)


def figure13_multicast_comparison(message_count: int = 300,
                                  group_count: int = 4,
                                  producers_per_group: int = 2,
                                  sequencer_service_ms: float = 0.05,
                                  seed: int = 5) -> FigureData:
    """Ablation: genuine (Skeen) vs centralized atomic multicast.

    The genuine protocol involves only a message's destination groups, so
    independent single-group streams order in parallel; the centralized
    baseline funnels *everything* through one global sequencer, which both
    shortens the multi-group path (fewer hops) and serialises unrelated
    traffic (the global sequencer pays ``sequencer_service_ms`` per
    message). This is the trade-off that makes genuine multicast the right
    substrate for partitioned SMR.
    """
    from repro.net import Network, SwitchedClusterLatency
    from repro.ordering import (AtomicMulticast, CentralizedAtomicMulticast,
                                GlobalSequencer, GroupDirectory,
                                ProtocolNode, SequencerLog)
    from repro.sim import Environment, LatencyRecorder, SeedStream

    groups = {f"g{i}": [f"g{i}m0", f"g{i}m1"] for i in range(group_count)}

    def run(kind: str, multi_fraction: float):
        env = Environment()
        network = Network(env, SeedStream(seed), SwitchedClusterLatency())
        directory = GroupDirectory(groups)
        endpoints = {}
        if kind == "centralized":
            GlobalSequencer(ProtocolNode(env, network, "gseq"), directory,
                            service_time_ms=sequencer_service_ms)
        for group, members in groups.items():
            for member in members:
                node = ProtocolNode(env, network, member)
                if kind == "centralized":
                    endpoints[member] = CentralizedAtomicMulticast(
                        node, directory, group, "gseq")
                else:
                    log = SequencerLog(node, directory, group)
                    endpoints[member] = AtomicMulticast(node, directory,
                                                        log)
        latency = LatencyRecorder(kind)
        waiters: dict = {}
        for member, endpoint in endpoints.items():
            endpoint.on_deliver(
                lambda d, m=member: _complete(waiters, d.uid, m))

        def _complete(waiters, uid, member):
            record = waiters.get(uid)
            if record is not None and record["origin"] == member:
                record["event"].succeed(None)
                del waiters[uid]

        import random as random_module
        per_producer = message_count // (group_count * producers_per_group)

        def producer(member, own_group, index):
            rng = random_module.Random(f"{seed}/{member}")
            my_groups = sorted(groups)
            for i in range(per_producer):
                if rng.random() < multi_fraction:
                    other = rng.choice([g for g in my_groups
                                        if g != own_group])
                    dests = [own_group, other]
                else:
                    dests = [own_group]
                started = env.now
                event = env.event()
                # Register the waiter before multicasting: a sequencer
                # member self-delivers synchronously inside multicast().
                from repro.ordering.atomic_multicast import new_amcast_uid
                uid = new_amcast_uid(member)
                waiters[uid] = {"origin": member, "event": event}
                endpoints[member].multicast(dests, i, uid=uid)
                yield event
                latency.record(env.now, env.now - started)

        for group, members in groups.items():
            for index, member in enumerate(members[:producers_per_group]):
                env.process(producer(member, group, index))
        env.run(until=600_000)
        times = latency.completions.times
        duration = times[-1] if times else 0.0
        return {
            "latency_ms": latency.mean(),
            "p95_ms": latency.percentile(95),
            "completed": latency.count,
            "wallclock_ms": duration,
            "msgs": network.messages_sent / max(1, latency.count),
        }

    rows = []
    data: dict = {}
    for kind in ("genuine", "centralized"):
        for multi_fraction, label in ((0.0, "single-group"),
                                      (0.5, "50% multi-group")):
            outcome = run(kind, multi_fraction)
            data[(kind, label)] = outcome
            rows.append([kind, label, outcome["completed"],
                         round(outcome["latency_ms"], 3),
                         round(outcome["p95_ms"], 3),
                         round(outcome["msgs"], 1),
                         round(outcome["wallclock_ms"], 1)])
    report = format_table(["protocol", "workload", "msgs-delivered",
                           "lat-mean", "lat-p95", "net-msgs/mcast",
                           "virtual-ms"], rows)
    return FigureData("fig13", "Genuine vs centralized atomic multicast",
                      report, data)


def figure14_batching(entry_count: int = 400, submitters: int = 8,
                      windows=(0.0, 1.0, 5.0),
                      seed: int = 5) -> FigureData:
    """Ablation: sequencer batching — messages saved vs latency added.

    The classic ordered-log trade-off: batching divides the fan-out message
    count by the batch size at the cost of up to one batch window of added
    latency per entry.
    """
    from repro.net import Network, SwitchedClusterLatency
    from repro.ordering import GroupDirectory, ProtocolNode, SequencerLog
    from repro.sim import Environment, LatencyRecorder, SeedStream

    rows = []
    data: dict = {}
    for window in windows:
        env = Environment()
        network = Network(env, SeedStream(seed), SwitchedClusterLatency())
        directory = GroupDirectory({"g": ["m0", "m1", "m2"]})
        logs = {}
        for member in directory.members("g"):
            node = ProtocolNode(env, network, member)
            logs[member] = SequencerLog(node, directory, "g",
                                        batch_window_ms=window)
        latency = LatencyRecorder(f"batch-{window}")
        submit_times: dict = {}
        logs["m1"].on_decide(
            lambda seq, entry: latency.record(
                env.now, env.now - submit_times[entry["uid"]]))

        def submitter(index):
            import random as random_module
            rng = random_module.Random(f"{seed}/{index}")
            for i in range(entry_count // submitters):
                yield env.timeout(rng.uniform(0.05, 0.4))
                uid = f"s{index}e{i}"
                submit_times[uid] = env.now
                logs["m0" if index % 2 else "m2"].submit({"uid": uid})

        for index in range(submitters):
            env.process(submitter(index))
        env.run(until=300_000)
        outcome = {
            "applied": latency.count,
            "latency_ms": latency.mean(),
            "decisions": logs["m0"].decisions_sent,
            "network_msgs": network.messages_sent,
        }
        data[window] = outcome
        rows.append([window, outcome["applied"],
                     round(outcome["latency_ms"], 3),
                     outcome["decisions"], outcome["network_msgs"]])
    report = format_table(["batch-window-ms", "applied", "lat-mean",
                           "decisions", "net-msgs"], rows)
    return FigureData("fig14", "Sequencer batching ablation", report, data)


def figure15_chaos_overhead(seed: int = 5,
                            drop_rates=(0.0, 0.01, 0.02, 0.05),
                            schemes=("smr", "ssmr"),
                            num_clients: int = 4,
                            ops_per_client: int = 15) -> FigureData:
    """Robustness ablation: cost of the resilience layer under faults.

    Clients run with timeout/retry/backoff (:mod:`repro.resilience`)
    against clusters whose network drops an increasing fraction of
    messages. The drop-rate-zero row is the overhead baseline: the
    resilience layer is pure bookkeeping until a timeout actually fires,
    so throughput and latency should match the non-resilient client's.
    Higher rates show the recovery cost — timeouts, resent requests, and
    the latency tail they produce.
    """
    from repro.harness.chaos import run_overhead_point

    rows = []
    data: dict = {}
    for scheme in schemes:
        for rate in drop_rates:
            outcome = run_overhead_point(scheme, rate, seed,
                                         num_clients=num_clients,
                                         ops_per_client=ops_per_client)
            data[(scheme, rate)] = outcome
            rows.append([scheme, f"{rate:.2f}",
                         f"{outcome['completed']}/{outcome['total']}",
                         round(outcome["throughput"], 1),
                         round(outcome["mean_ms"], 3),
                         round(outcome["p95_ms"], 3),
                         outcome["timeouts"], outcome["resends"]])
    report = format_table(["scheme", "drop-rate", "completed", "ops/s",
                           "lat-mean", "lat-p95", "timeouts", "resends"],
                          rows)
    return FigureData("fig15", "Resilience overhead under message loss",
                      report, data)


def figure16_elastic_scaleout(seed: int = 5,
                              duration_ms: float = 1_600.0,
                              join_at: float = 600.0,
                              num_clients: int = 12) -> FigureData:
    """E16: throughput dip and recovery during a live partition join.

    A saturated 2-partition DS-SMR deployment grows to three partitions
    mid-run (:mod:`repro.reconfig`): the epoch fence and bulk migration
    cost a brief throughput dip, after which the extra partition lifts
    steady-state throughput past the static deployment's ceiling. A
    static 2-partition run of the same workload is the control. The
    companion smoke (crash-restart recovery + join under chaos, all
    invariants on) runs last so the figure also certifies safety.
    """
    from repro.harness.elastic import (run_elastic_scenario,
                                       run_scaleout_timeline)
    from repro.sim import TimeSeries

    elastic = run_scaleout_timeline(seed=seed, duration_ms=duration_ms,
                                    join_at=join_at,
                                    num_clients=num_clients)
    static = run_scaleout_timeline(seed=seed, elastic=False,
                                   duration_ms=duration_ms,
                                   join_at=join_at,
                                   num_clients=num_clients)
    smoke = run_elastic_scenario(seed=seed)

    rows = []
    for label, outcome in [("elastic 2->3", elastic),
                           ("static 2", static)]:
        rows.append([label, outcome["total_ops"],
                     round(outcome["before"], 1),
                     round(outcome["during"], 1),
                     round(outcome["dip"], 1),
                     round(outcome["after"], 1),
                     outcome["keys_migrated"], outcome["epoch"]])
    series = TimeSeries("elastic ops per bucket")
    for index, count in enumerate(elastic["timeline"]):
        series.record(index * 40.0, count)
    sections = [
        format_table(["deployment", "ops", "before", "join-window",
                      "dip", "after", "migrated", "epoch"], rows),
        f"elastic timeline (join at {join_at:.0f} ms): "
        f"{format_sparkline(series)}",
        "",
        "-- safety smoke (crash-restart + join under chaos) --",
        smoke.report(),
    ]
    return FigureData("fig16", "Elastic scale-out: dip and recovery",
                      "\n".join(sections),
                      {"elastic": elastic, "static": static,
                       "smoke": {"ok": smoke.ok,
                                 "violations": list(smoke.violations),
                                 "epoch": smoke.epoch,
                                 "newcomer_keys": smoke.newcomer_keys,
                                 "recovery": smoke.recovery_installed,
                                 "metrics": smoke.metrics}})


def _self_healing_run(seed: int, supervisor: bool,
                      duration_ms: float, num_clients: int,
                      sample_ms: float = 5.0) -> dict:
    """One sustained crash workload, with or without the supervisor.

    A DS-SMR deployment loses a partition follower (amnesia crash), a
    partition sequencer (blackout) and an oracle replica (blackout) at
    staggered times, and *nothing* in the harness recovers them: repair
    happens only if the self-healing loop (:mod:`repro.heal`) does it.
    A ground-truth sampler — independent of the detector — polls every
    replica group each ``sample_ms`` and books unavailability for any
    group with a dead member (a 2-replica Paxos group cannot order with
    either member down), so the on/off comparison measures the healer's
    real effect, not its own opinion of itself.
    """
    import random as random_module

    from repro.harness.chaos import KEYS, _build_cluster
    from repro.harness.faults import (make_crash_restart, reset_id_counters,
                                      select_victim)
    from repro.heal import ClusterHealer
    from repro.smr import Command

    reset_id_counters()
    tag = "fig17-heal" if supervisor else "fig17-base"
    cluster = _build_cluster("dssmr", seed, tag)
    env = cluster.env
    healer = ClusterHealer(cluster) if supervisor else None

    # The crash plan: one victim per role, in different partitions, with
    # room for detection + repair between failures. No restart callback
    # is ever scheduled.
    crash_plan = [(0.18, "follower", 0), (0.45, "speaker", 1),
                  (0.70, "oracle", 0)]
    crashed_at: dict[str, float] = {}
    for fraction, role, partition_index in crash_plan:
        victim, mode = select_victim(cluster, role, partition_index)
        crash, _restart = make_crash_restart(cluster, victim, mode)
        at = round(duration_ms * fraction, 1)
        crashed_at[victim] = at
        env.schedule_callback(at, crash)

    # Ground-truth availability sampler.
    groups = list(cluster.partitions) + (["oracle"] if cluster.oracles
                                         else [])
    down_ms = {group: 0.0 for group in groups}

    def group_members(group):
        if group == "oracle":
            return sorted(o.node.name for o in cluster.oracles)
        return cluster.directory.members(group)

    def member_down(name):
        if cluster.network.is_crashed(name):
            return True
        if name in cluster.servers:
            return cluster.servers[name].node.crashed
        for oracle in cluster.oracles:
            if oracle.node.name == name:
                return oracle.node.crashed
        return True

    def sampler():
        while env.now < duration_ms:
            for group in groups:
                if any(member_down(name)
                       for name in group_members(group)):
                    down_ms[group] += sample_ms
            yield env.timeout(sample_ms)

    env.process(sampler(), name="fig17/sampler")

    # Sustained client load; per-bucket completion counts for the
    # timeline sparkline.
    bucket_ms = duration_ms / 24.0
    buckets = [0] * 24
    status = {"completed": 0}
    clients = [cluster.new_client(f"c{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random_module.Random(f"fig17/{seed}/{index}")
        while env.now < duration_ms:
            key = KEYS[rng.randrange(len(KEYS))]
            command = Command(op="incr", args={"key": key},
                              variables=(key,), writes=(key,))
            yield from client.run_command(command)
            status["completed"] += 1
            bucket = min(int(env.now / bucket_ms), len(buckets) - 1)
            buckets[bucket] += 1
            yield env.timeout(rng.uniform(0.5, 1.5))

    for index, client in enumerate(clients):
        env.process(loop(client, index), name=f"fig17/{client.name}")
    env.run(until=duration_ms)
    if healer is not None:
        healer.stop()
    heal = healer.snapshot(now=duration_ms) if healer else None
    return {
        "ops": status["completed"],
        "down_ms": {group: round(value, 1)
                    for group, value in sorted(down_ms.items())},
        "total_down_ms": round(sum(down_ms.values()), 1),
        "crashed_at": dict(sorted(crashed_at.items())),
        "timeline": buckets,
        "heal": heal,
    }


def figure17_self_healing(seed: int = 5, duration_ms: float = 1_000.0,
                          num_clients: int = 8) -> FigureData:
    """E18: MTTR and unavailability, self-healing on vs off.

    The same sustained workload loses a follower, a sequencer and an
    oracle replica with no harness-driven recovery. With the supervisor
    (:mod:`repro.heal`) each outage lasts detection + repair — tens of
    ms; without it every outage runs to the end of the experiment, so
    ground-truth unavailability (sampled independently of the failure
    detector) is strictly longer and throughput collapses after the
    sequencer dies.
    """
    from repro.sim import TimeSeries

    healed = _self_healing_run(seed, True, duration_ms, num_clients)
    baseline = _self_healing_run(seed, False, duration_ms, num_clients)

    rows = []
    for label, outcome in [("supervisor", healed),
                           ("no supervisor", baseline)]:
        rows.append([label, outcome["ops"],
                     outcome["total_down_ms"]]
                    + [outcome["down_ms"][group]
                       for group in sorted(outcome["down_ms"])])
    group_headers = [f"down:{group}"
                     for group in sorted(healed["down_ms"])]
    sections = [format_table(["run", "ops", "down-total-ms"]
                             + group_headers, rows)]
    for label, outcome in [("supervisor", healed),
                           ("no supervisor", baseline)]:
        series = TimeSeries(f"{label} ops per bucket")
        for index, count in enumerate(outcome["timeline"]):
            series.record(index * duration_ms / 24.0, count)
        sections.append(f"{label:14s} throughput: "
                        f"{format_sparkline(series)}")
    heal = healed["heal"]
    sections += [
        "",
        f"healer: {heal['detections']} detection(s), "
        f"{heal['replaces']} replace(s), {heal['reconnects']} "
        f"reconnect(s), {heal['false_suspicions']} false suspicion(s)",
        f"MTTR (ms): {heal['mttr_ms']}",
        f"crashes at: {healed['crashed_at']}",
    ]
    return FigureData("fig17", "Self-healing: MTTR and unavailability",
                      "\n".join(sections),
                      {"healed": healed, "baseline": baseline})


def figure18_cost_attribution(seed: int = 7) -> FigureData:
    """E19: where virtual time goes, per scheme (profiler cost tree).

    Runs the seeded traced workload under the virtual-time profiler and
    compares how the three schemes split their attributed cost across
    the client stages, the server roles and the network. The static
    scheme pays nothing for consults or moves; DS-SMR trades ordering
    work for consult/move overhead; the graph-partitioned oracle shifts
    cost into the oracle subtree (its consults issue the moves).
    """
    from repro.harness.tracerun import run_traced_workload
    from repro.obs.profile import VirtualProfiler

    profilers: dict[str, VirtualProfiler] = {}
    rows = []
    for scheme in SCHEMES:
        profiler = VirtualProfiler(scheme=scheme)
        run = run_traced_workload(scheme, seed=seed, trace=True,
                                  profiler=profiler)
        profilers[scheme] = profiler
        total = profiler.total_cost()

        def share(*path, total=total, profiler=profiler):
            if not total:
                return "-"
            return f"{100.0 * profiler.cost_of(*path) / total:.1f}%"

        rows.append([scheme, run.completed, round(total, 1),
                     share("client"), share("replica"), share("oracle"),
                     share("net")])
    sections = [format_table(
        ["scheme", "ops", "total-ms", "client", "replica", "oracle",
         "net"], rows), ""]
    lines = profilers["dynastar"].folded().splitlines()
    top = sorted(lines, key=lambda line: -int(line.rsplit(" ", 1)[1]))[:6]
    sections.append("dynastar folded-stack excerpt (top cost paths, us):")
    sections.extend(f"  {line}" for line in top)
    return FigureData("fig18", "Cost attribution across schemes",
                      "\n".join(sections),
                      {scheme: profiler.to_dict()
                       for scheme, profiler in profilers.items()})


def figure19_overload(seed: int = 0) -> FigureData:
    """E20: goodput under overload — congestion collapse vs QoS plateau.

    Sweeps an open-loop offered load from a quarter of nominal capacity
    to 2.5x it, with and without the QoS stack (sequencer admission
    control + adaptive batching + client AIMD windows + retry budgets).
    Without QoS the unbounded queues and retry amplification collapse
    goodput (SLO-bounded completions) far below its peak; with QoS the
    excess is shed explicitly and goodput plateaus at capacity while the
    latency of accepted traffic stays bounded.
    """
    from repro.harness.overload import (format_overload_report,
                                        run_overload_campaign)

    data = run_overload_campaign(seed=seed)
    return FigureData("fig19", "Overload: goodput collapse vs QoS plateau",
                      format_overload_report(data), data)


def figure20_durability(seed: int = 0) -> FigureData:
    """E21: durability overhead and cold-start recovery time.

    Left panel: the WAL's execution barrier adds a bounded mean latency
    per command (one group-commit window plus one batched fsync per
    delivering group). Right panel: crash-to-converged recovery time as
    the partition's state image grows — a peer state transfer ships the
    whole image in flow-controlled chunks and grows with it, while a
    cold local restart (durable checkpoint + WAL suffix replay) stays
    flat, and works with zero live peers. The same campaign proves
    replayed state hash-equals live state after whole-cluster power
    loss and that a torn-write/bit-rot disk recovers through the
    peer-fallback ladder without silent data loss.
    """
    from repro.harness.durability import (format_durability_report,
                                          run_durability_campaign)

    data = run_durability_campaign(seed=seed)
    return FigureData("fig20", "Durability: WAL overhead and cold-start "
                               "recovery",
                      format_durability_report(data), data)


def figure21_parallel_execution(seed: int = 1) -> FigureData:
    """E22: conflict-aware parallel execution throughput.

    Single DS-SMR partition, executor-bound closed-loop workload, worker
    counts 1/2/4/8 against the sequential baseline across a hot-key
    conflict-rate sweep. Low-conflict workloads scale near-linearly with
    workers (non-conflicting commands run on idle simulated cores);
    rising conflict rates serialize commands in delivery order and bend
    the curves back toward sequential. The same campaign re-proves the
    P-SMR equivalence property: under a fixed delivered log, parallel
    execution is byte-identical to sequential on every scheme.
    """
    from repro.harness.parallelexec import format_report, run_campaign

    data = run_campaign(seed=seed)
    return FigureData("fig21", "Parallel execution: throughput vs "
                               "workers and conflict rate",
                      format_report(data), data)
