"""Shared fault-victim helpers: who can crash, and how they come back.

Both fault harnesses — the chaos campaign (:mod:`repro.harness.chaos`)
and the schedule fuzzer (:mod:`repro.fuzz`) — need the same two closure
pairs for :meth:`~repro.net.failure.FailureInjector.crash_restart_at`,
previously duplicated per harness:

* **restart** (amnesia) — the victim object dies and a replacement is
  rebuilt under the same name: classic SMR replicas through
  snapshot-and-catch-up (:mod:`repro.smr.recovery`), partitioned replicas
  through checkpoint-install recovery (:mod:`repro.reconfig.recovery`).
  Valid only for non-speaker partition replicas: neither recovery path
  can resurrect an ordering endpoint's sequencer state.
* **blackout** — the victim is cut off at the network level (drops all
  traffic both ways) and later reconnects with its in-memory state
  intact (:meth:`~repro.ordering.ProtocolNode.reconnect`). Valid for
  *any* node — sequencers, Paxos leaders and oracle replicas included —
  which is exactly the fault class the chaos campaign used to exempt.

Victim *roles* name the interesting positions in a deployment
independently of scheme and shape, so seeded generators can draw a role
and let :func:`select_victim` resolve the concrete node and crash mode.
"""

from __future__ import annotations

import itertools

#: Crash-victim roles a scenario/schedule generator may draw.
VICTIM_ROLES = ("follower", "speaker", "oracle")


def reset_id_counters() -> None:
    """Reset the module-global id counters commands and multicasts draw
    from. Run behaviour then depends only on its own seeds, never on what
    ran earlier in the process — the property behind every harness's
    run-twice-compare-reports determinism test."""
    import repro.ordering.atomic_multicast as atomic_multicast
    import repro.reconfig.manager as reconfig_manager
    import repro.reconfig.transfer as reconfig_transfer
    import repro.smr.command as command
    import repro.smr.recovery as recovery
    command._cmd_counter = itertools.count()
    atomic_multicast._am_counter = itertools.count()
    recovery._recovery_counter = itertools.count()
    reconfig_manager._rid_counter = itertools.count()
    reconfig_transfer._transfer_counter = itertools.count()


def _node_of(cluster, name: str):
    """The :class:`ProtocolNode` behind ``name`` (server or oracle)."""
    if name in cluster.servers:
        return cluster.servers[name].node
    for oracle in cluster.oracles:
        if oracle.node.name == name:
            return oracle.node
    raise KeyError(f"no such node in this deployment: {name!r}")


def select_victim(cluster, role: str,
                  partition_index: int = 0) -> tuple[str, str]:
    """Resolve a victim role to ``(node_name, crash_mode)``.

    ``crash_mode`` is ``"restart"`` (amnesia + full recovery) for
    followers and ``"blackout"`` (network cut + reconnect) for speakers
    and oracle replicas. The ``oracle`` role degrades to ``speaker`` on
    schemes without an oracle group, so scheme-agnostic scenarios stay
    runnable everywhere.
    """
    if role not in VICTIM_ROLES:
        raise ValueError(f"unknown victim role {role!r}; "
                         f"pick one of {VICTIM_ROLES}")
    if role == "oracle" and not cluster.oracles:
        role = "speaker"
    if role == "oracle":
        # The oracle group's own speaker: consults and moves stall until
        # the reconnect, the hardest oracle fault the protocols must ride.
        names = sorted(o.node.name for o in cluster.oracles)
        return names[partition_index % len(names)], "blackout"
    partition = cluster.partitions[partition_index % len(cluster.partitions)]
    members = cluster.directory.members(partition)
    speaker = cluster.directory.speaker(partition)
    if role == "speaker":
        return speaker, "blackout"
    followers = [name for name in members if name != speaker]
    if not followers:    # single-replica partition: only a blackout works
        return speaker, "blackout"
    return followers[-1], "restart"


def crash_victim(cluster, victim: str) -> None:
    """Amnesia-crash server ``victim`` (object-level: the process dies)."""
    cluster.servers[victim].crash()


def recover_victim(cluster, victim: str):
    """Recover an amnesia-crashed server under the same name.

    One helper for every scheme — classic SMR replicas come back through
    peer-snapshot recovery, partitioned replicas through the
    checkpoint-install path (:meth:`Cluster.recover_server`). Durable
    deployments (``ClusterConfig.durability``) restart from the victim's
    own disk instead, falling back to peers only for a gapped or
    corrupted local history (:mod:`repro.store.coldstart`). Returns the
    replacement server.
    """
    if getattr(cluster, "disks", None) is not None:
        return cluster.cold_restart_server(victim)
    if cluster.config.scheme == "smr":
        from repro.smr.recovery import RecoveryHost, recover_replica
        crashed = cluster.servers[victim]
        partition = crashed.group
        live = [member for member in cluster.directory.members(partition)
                if member != victim
                and not cluster.servers[member].node.crashed]
        for name in live:
            peer = cluster.servers[name]
            if getattr(peer, "recovery_host", None) is None:
                peer.recovery_host = RecoveryHost(peer)
        cluster.servers[victim] = recover_replica(
            crashed, cluster.servers[live[0]], fallback_peers=live[1:])
        return cluster.servers[victim]
    return cluster.recover_server(victim)


def blackout_victim(cluster, victim: str) -> None:
    """Cut ``victim`` off the network; its in-memory state survives."""
    node = _node_of(cluster, victim)
    cluster.network.crash(node.name)


def reconnect_victim(cluster, victim: str) -> None:
    """End a blackout: rejoin the network and re-arm message dispatch."""
    _node_of(cluster, victim).reconnect()


def make_crash_restart(cluster, victim: str, mode: str):
    """The ``(crash, restart)`` closure pair for
    :meth:`~repro.net.failure.FailureInjector.crash_restart_at`."""
    if mode == "restart":
        return (lambda: crash_victim(cluster, victim),
                lambda: recover_victim(cluster, victim))
    if mode == "blackout":
        return (lambda: blackout_victim(cluster, victim),
                lambda: reconnect_victim(cluster, victim))
    raise ValueError(f"unknown crash mode {mode!r}")
