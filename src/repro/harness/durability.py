"""Durability campaign: crash-consistent cold start, proven end to end.

The experiment behind figure 20 and ``python -m repro durability``. Four
sections, every one seeded and byte-deterministic (the CLI byte-compares
two same-seed runs in CI):

* **Replay equivalence** — for every scheme, a chaos-style workload
  runs to completion, the whole cluster loses power (every un-fsynced
  byte drops), cold-starts from disk alone with *zero* live peers, and
  the replayed state must hash-equal the live state it replaced:
  ``state == replay(wal)``, the fundamental WAL correctness property.
  A second workload wave then proves the revived cluster is live, and
  the end-state invariant suite must stay clean.
* **Power loss under live load** — the same whole-cluster power cycle,
  but *mid-workload* through the fuzzer's single execution path
  (:func:`~repro.fuzz.runner.run_schedule`): in-flight commands ride
  client retries across the outage and the recorded history must stay
  linearizable.
* **Fault ladder** — a follower's disk suffers a torn write *and* bit
  rot before an amnesia crash; its cold start must detect the damage
  (CRC, not trust), fall back to a peer state transfer
  (``peer_fallbacks`` rises), and converge to its speaker's exact
  state — corruption is never silently skipped.
* **Overhead & recovery time** — the same closed-loop workload with
  durability off and on (the fsync barrier's price, figure 20 left
  panel), and crash-to-converged recovery time of a cold local restart
  vs a full peer state transfer (right panel): the point of carrying a
  WAL is that restarting from local disk beats re-shipping the whole
  partition image.
"""

from __future__ import annotations

import random

from repro.harness.chaos import INITIAL, KEYS, _random_access
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.faults import reset_id_counters
from repro.harness.invariants import cluster_invariants
from repro.reconfig.checkpoint import state_checksum
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.store import DurabilityConfig

#: Schemes the replay-equivalence section proves.
SCHEMES = ("smr", "ssmr", "dssmr", "dynastar")
SMOKE_SCHEMES = ("smr", "dssmr")

#: Documented ceiling on the WAL's added latency per command, in
#: virtual ms. The execution barrier waits for at most one group-commit
#: window (``group_commit_ms`` = 1.0) plus one fsync (``fsync_ms`` =
#: 0.3 + the batch's bytes at 4096 bytes/ms); multi-partition commands
#: may pay it once per delivering group. Figure 20 and the perf gate
#: assert the *measured* mean overhead stays under this bound.
OVERHEAD_BOUND_MS = 4.0


def _build(scheme: str, seed: int, tag: str,
           durability: bool = True, extra_keys: int = 0) -> Cluster:
    reset_id_counters()
    cluster_seed = (SeedStream(seed).child("durability")
                    .stream(tag).randrange(2 ** 31))
    contents = dict(INITIAL)
    assignment = {key: i % 2 for i, key in enumerate(KEYS)}
    for index in range(extra_keys):
        # Never-accessed ballast on partition 0: inflates the state
        # image a peer transfer must ship without perturbing the
        # workload (the recovery-time section sweeps this).
        contents[f"x{index}"] = index
        assignment[f"x{index}"] = 0
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        initial_assignment=assignment if scheme != "smr" else None,
        durability=DurabilityConfig() if durability else None))
    cluster.preload(contents)
    return cluster


def _wave(cluster: Cluster, num_clients: int, ops: int, tag: str):
    """Spawn a closed-loop workload wave; returns (status, done event)."""
    status = {"completed": 0, "finished": 0, "done_at": None,
              "latency_ms": 0.0}
    done = cluster.env.event()
    clients = [cluster.new_client(f"{tag}{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random.Random(f"{tag}/{index}")
        for _ in range(ops):
            command = _random_access(rng)
            invoked = cluster.env.now
            yield from client.run_command(command)
            status["latency_ms"] += cluster.env.now - invoked
            status["completed"] += 1
            yield cluster.env.timeout(rng.uniform(0.0, 1.0))
        status["finished"] += 1
        if status["finished"] == num_clients:
            status["done_at"] = cluster.env.now
            done.succeed(None)

    for index, client in enumerate(clients):
        cluster.env.process(loop(client, index),
                            name=f"durability/{tag}{index}")
    return status, done


def _member_image(server) -> dict:
    return {"store": server.store.snapshot(),
            "executed": list(server.executed)}


def _cluster_hash(cluster: Cluster) -> str:
    """One digest over every member's store and execution order."""
    return state_checksum({name: _member_image(cluster.servers[name])
                           for name in sorted(cluster.servers)})


# -- section 1: replay equivalence -------------------------------------------


def _replay_equivalence(scheme: str, seed: int, num_clients: int,
                        ops: int) -> dict:
    cluster = _build(scheme, seed, f"replay/{scheme}")
    _, done = _wave(cluster, num_clients, ops, "w")
    cluster.run(until=1_500.0)
    completed_first = done.triggered
    live_hash = _cluster_hash(cluster)

    cluster.power_fail()
    cluster.run(until=cluster.env.now + 50.0)
    cluster.power_restore()
    cluster.run(until=cluster.env.now + 1_000.0)
    replayed_hash = _cluster_hash(cluster)

    status2, done2 = _wave(cluster, 2, max(ops // 2, 3), "x")
    cluster.run(until=cluster.env.now + 1_500.0)
    violations = cluster_invariants(cluster)
    stats = cluster.disks.stats
    return {
        "scheme": scheme,
        "live_hash": live_hash,
        "replayed_hash": replayed_hash,
        "hash_equal": live_hash == replayed_hash,
        "first_wave_completed": completed_first,
        "second_wave_ops": status2["completed"],
        "second_wave_completed": done2.triggered,
        "cold_starts": stats.cold_starts,
        "peer_fallbacks": stats.peer_fallbacks,
        "records_replayed": stats.records_replayed,
        "violations": list(violations),
    }


# -- section 2: power loss under live load -----------------------------------


def _power_under_load(scheme: str, seed: int, num_clients: int,
                      ops: int) -> dict:
    from repro.fuzz.runner import run_schedule
    from repro.fuzz.schedule import FaultSchedule

    schedule = FaultSchedule(
        seed=seed, index=0, scheme=scheme,
        events=(
            {"kind": "drop", "at": 0.0, "end": 300.0, "fraction": 0.01},
            {"kind": "power_loss", "at": 90.0, "duration": 60.0},
        ),
        num_clients=num_clients, ops_per_client=ops,
        durability=True)
    run = run_schedule(schedule)
    return {
        "scheme": scheme,
        "schedule": schedule.describe(),
        "ops_completed": run.ops_completed,
        "ops_expected": run.ops_expected,
        "linearizability": run.linearizability,
        "violations": list(run.violations),
        "ok": run.ok,
    }


# -- section 3: torn write + bit rot -> peer-fallback ladder ------------------


def _fault_ladder(scheme: str, seed: int, num_clients: int,
                  ops: int) -> dict:
    cluster = _build(scheme, seed, f"ladder/{scheme}")
    _, _ = _wave(cluster, num_clients, ops, "w")
    cluster.run(until=500.0)

    partition = cluster.partitions[0]
    members = list(cluster.directory.members(partition))
    speaker = cluster.directory.speaker(partition)
    victim = next(m for m in members if m != speaker)
    disk = cluster.disks.disk(victim)
    disk.inject_bitrot()
    disk.tear_tail()
    cluster.servers[victim].crash()
    cluster.cold_restart_server(victim)

    _, _ = _wave(cluster, 2, max(ops // 2, 3), "x")
    cluster.run(until=cluster.env.now + 2_000.0)
    violations = cluster_invariants(cluster)
    stats = cluster.disks.stats
    victim_hash = state_checksum(_member_image(cluster.servers[victim]))
    speaker_hash = state_checksum(_member_image(cluster.servers[speaker]))
    return {
        "scheme": scheme,
        "victim": victim,
        "peer_fallbacks": stats.peer_fallbacks,
        "corrupt_records": stats.corrupt_records,
        "torn_tails": stats.torn_tails,
        "converged": victim_hash == speaker_hash,
        "violations": list(violations),
    }


# -- section 4: overhead and recovery time -----------------------------------


def _overhead(scheme: str, seed: int, num_clients: int, ops: int) -> dict:
    """Mean client-observed command latency, durability off vs on.

    The WAL's price is the execution barrier: a command's reply waits
    for its log entry to be durable. Group commit bounds the wait to
    one commit window plus one (batched) fsync per delivering group.
    """
    latency = {}
    for durable in (False, True):
        cluster = _build(scheme, seed, f"overhead/{scheme}",
                         durability=durable)
        status, done = _wave(cluster, num_clients, ops, "w")
        cluster.run(until=4_000.0)
        key = "wal_on" if durable else "wal_off"
        latency[key] = (round(status["latency_ms"] / status["completed"], 3)
                        if done.triggered and status["completed"] else None)
    off, on = latency["wal_off"], latency["wal_on"]
    overhead = round(on - off, 3) if off is not None and on is not None \
        else None
    return {
        "scheme": scheme,
        "mean_latency_ms_wal_off": off,
        "mean_latency_ms_wal_on": on,
        "overhead_ms": overhead,
        "bound_ms": OVERHEAD_BOUND_MS,
        "within_bound": (overhead is not None
                         and overhead <= OVERHEAD_BOUND_MS),
    }


def _converge_ms(cluster: Cluster, victim: str, speaker: str,
                 deadline_ms: float = 3_000.0):
    """Virtual ms until the victim's image matches its speaker's."""
    start = cluster.env.now
    step = 5.0
    while cluster.env.now - start < deadline_ms:
        cluster.run(until=cluster.env.now + step)
        victim_hash = state_checksum(
            _member_image(cluster.servers[victim]))
        speaker_hash = state_checksum(
            _member_image(cluster.servers[speaker]))
        if victim_hash == speaker_hash:
            return round(cluster.env.now - start, 3)
    return None


def _recovery_time(scheme: str, seed: int, num_clients: int, ops: int,
                   mode: str, extra_keys: int) -> dict:
    """Crash-to-converged time: cold local restart vs peer transfer.

    The steady-state deployment shape: a durable checkpoint exists (the
    periodic checkpointer fires every ``checkpoint_every`` entries; the
    short measurement wave forces one explicitly) so a cold local
    restart is checkpoint-install plus a short WAL suffix — flat in the
    state-image size — while a peer transfer ships the whole image in
    flow-controlled chunks and grows with it.
    """
    cluster = _build(scheme, seed, f"recovery/{scheme}/{mode}",
                     extra_keys=extra_keys)
    _, _ = _wave(cluster, num_clients, ops, "w")
    cluster.run(until=500.0)

    partition = cluster.partitions[0]
    speaker = cluster.directory.speaker(partition)
    victim = next(m for m in cluster.directory.members(partition)
                  if m != speaker)
    cluster.servers[victim].checkpointer.capture(reason="measurement")
    cluster.run(until=cluster.env.now + 20.0)   # let the capture fsync
    cluster.servers[victim].crash()
    if mode == "cold_local":
        cluster.cold_restart_server(victim)
    else:
        cluster.recover_server(victim)
    converge = _converge_ms(cluster, victim, speaker)
    return {
        "scheme": scheme,
        "mode": mode,
        "extra_keys": extra_keys,
        "recovery_ms": converge,
        "violations": list(cluster_invariants(cluster)),
    }


# -- campaign ----------------------------------------------------------------


def run_durability_campaign(seed: int = 0, smoke: bool = False) -> dict:
    """Run every section; canonical, JSON-stable result dict."""
    schemes = SMOKE_SCHEMES if smoke else SCHEMES
    num_clients = 2 if smoke else 3
    ops = 5 if smoke else 10

    replay = [_replay_equivalence(s, seed, num_clients, ops)
              for s in schemes]
    power = [_power_under_load(s, seed, num_clients, ops)
             for s in (("dssmr",) if smoke else schemes)]
    ladder = [_fault_ladder(s, seed, num_clients, ops)
              for s in (("dssmr",) if smoke else ("smr", "dssmr"))]
    overhead = [_overhead(s, seed, num_clients, ops)
                for s in (("dssmr",) if smoke else ("ssmr", "dssmr"))]
    sizes = (0, 500) if smoke else (0, 500, 2000)
    recovery = [_recovery_time("dssmr", seed, num_clients, ops, mode,
                               extra_keys)
                for extra_keys in sizes
                for mode in ("cold_local", "peer_transfer")]

    replay_ok = all(r["hash_equal"] and r["second_wave_completed"]
                    and not r["violations"] for r in replay)
    power_ok = all(p["ok"] for p in power)
    ladder_ok = all(l["peer_fallbacks"] >= 1 and l["converged"]
                    and not l["violations"] for l in ladder)
    overhead_ok = all(o["within_bound"] for o in overhead)
    recovery_ok = all(r["recovery_ms"] is not None
                      and not r["violations"] for r in recovery)
    return {
        "seed": seed,
        "smoke": smoke,
        "replay_equivalence": replay,
        "power_under_load": power,
        "fault_ladder": ladder,
        "overhead": overhead,
        "recovery_time": recovery,
        "summary": {
            "replay_ok": replay_ok,
            "power_ok": power_ok,
            "ladder_ok": ladder_ok,
            "overhead_ok": overhead_ok,
            "recovery_ok": recovery_ok,
            "ok": (replay_ok and power_ok and ladder_ok
                   and overhead_ok and recovery_ok),
        },
    }


def format_durability_report(data: dict) -> str:
    lines = [f"durability campaign (seed {data['seed']}"
             f"{', smoke' if data['smoke'] else ''})", ""]
    lines.append("replay equivalence (power loss, zero live peers):")
    for r in data["replay_equivalence"]:
        lines.append(
            f"  {r['scheme']:9s} hash_equal={r['hash_equal']} "
            f"cold_starts={r['cold_starts']} "
            f"records_replayed={r['records_replayed']} "
            f"violations={len(r['violations'])}")
    lines.append("power loss under live load:")
    for p in data["power_under_load"]:
        lines.append(
            f"  {p['scheme']:9s} {p['ops_completed']}/{p['ops_expected']} "
            f"ops, {p['linearizability']}, "
            f"violations={len(p['violations'])}")
    lines.append("torn write + bit rot -> peer-fallback ladder:")
    for l in data["fault_ladder"]:
        lines.append(
            f"  {l['scheme']:9s} victim={l['victim']} "
            f"fallbacks={l['peer_fallbacks']} "
            f"converged={l['converged']} "
            f"violations={len(l['violations'])}")
    lines.append("WAL overhead (mean command latency):")
    for o in data["overhead"]:
        lines.append(
            f"  {o['scheme']:9s} off={o['mean_latency_ms_wal_off']}ms "
            f"on={o['mean_latency_ms_wal_on']}ms "
            f"overhead={o['overhead_ms']}ms "
            f"(bound {o['bound_ms']}ms)")
    lines.append("recovery time (crash -> converged with speaker):")
    for r in data["recovery_time"]:
        lines.append(f"  {r['mode']:13s} +{r['extra_keys']:4d} keys: "
                     f"{r['recovery_ms']}ms")
    summary = data["summary"]
    lines.append("")
    lines.append("summary: " + " ".join(
        f"{key}={value}" for key, value in sorted(summary.items())))
    return "\n".join(lines)
