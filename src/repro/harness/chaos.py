"""Chaos campaign: randomized fault schedules against every scheme.

Each scenario is drawn from a seeded generator — a mix of message drops,
latency spikes, duplication, bounded reordering, a network partition window
and a follower crash-restart (recovered through :mod:`repro.smr.recovery`
for classic SMR and through checkpoint-install recovery,
:mod:`repro.reconfig.recovery`, for the partitioned schemes). The campaign
runs each scenario against classic SMR, S-SMR and DS-SMR deployments whose
clients use the resilience layer (:mod:`repro.resilience`), then checks
the system's guarantees after the network heals:

* every client request completed before the deadline;
* the recorded history is linearizable (Wing–Gong checker);
* the shared end-state invariants (:mod:`repro.harness.invariants`):
  exactly-once execution, replica convergence, unique placement, oracle
  map accuracy and configuration-epoch agreement.

Everything — fault schedule, workload, backoff jitter — derives from the
campaign seed, so ``run_campaign(n, seed)`` is fully deterministic: two
runs produce byte-identical reports. The CLI entry point is
``python -m repro chaos --scenarios N --seed S``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.checkers import History, KvSequentialSpec, check_linearizable
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.invariants import cluster_invariants
from repro.harness.report import format_table
from repro.net import FailureInjector
from repro.obs import CommandTracer, command_timeline, find_anomalies
from repro.obs.report import slowest_traces
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ReplyStatus
from repro.smr.recovery import RecoveryHost, recover_replica

#: Schemes every scenario is run against.
CHAOS_SCHEMES = ("smr", "ssmr", "dssmr")

#: Keys preloaded into every cluster (spread over both partitions).
KEYS = tuple(f"k{i}" for i in range(6))
INITIAL = {key: 0 for key in KEYS}

#: Virtual-time bounds of one scenario run (ms).
DEADLINE_MS = 8_000.0
SETTLE_MS = 400.0


def _reset_id_counters() -> None:
    """Reset the module-global id counters commands and multicasts draw
    from. Scenario behaviour then depends only on (seed, index, scheme),
    never on what ran earlier in the process — the property behind the
    campaign's run-twice-compare-reports determinism test."""
    import repro.ordering.atomic_multicast as atomic_multicast
    import repro.reconfig.manager as reconfig_manager
    import repro.reconfig.transfer as reconfig_transfer
    import repro.smr.command as command
    import repro.smr.recovery as recovery
    command._cmd_counter = itertools.count()
    atomic_multicast._am_counter = itertools.count()
    recovery._recovery_counter = itertools.count()
    reconfig_manager._rid_counter = itertools.count()
    reconfig_transfer._transfer_counter = itertools.count()


# ---------------------------------------------------------------------------
# scenario generation


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded fault schedule (times in virtual ms).

    Optional faults are ``None`` when the scenario does not include them;
    ``crash`` is ``(time, partition_index, recover_time)`` and always hits
    a *follower* replica — sequencers are a fixed point of the ordering
    layer (crash-tolerant ordering is :mod:`repro.ordering.paxos`'s job).
    """

    index: int
    fault_end: float
    drop_fraction: float
    delay: Optional[tuple] = None        # (fraction, spike_ms)
    duplicate: Optional[tuple] = None    # (fraction, extra_copies)
    reorder: Optional[tuple] = None      # (fraction, window_ms)
    partition_window: Optional[tuple] = None   # (start, end)
    crash: Optional[tuple] = None        # (time, partition_index, recover)

    def describe(self) -> str:
        parts = [f"drop={self.drop_fraction:.3f}"]
        if self.delay:
            parts.append(f"delay({self.delay[0]:.2f},{self.delay[1]:.0f}ms)")
        if self.duplicate:
            parts.append(f"dup({self.duplicate[0]:.2f})")
        if self.reorder:
            parts.append(f"reorder({self.reorder[0]:.2f})")
        if self.partition_window:
            start, end = self.partition_window
            parts.append(f"split[{start:.0f},{end:.0f})")
        if self.crash:
            parts.append(f"crash(p{self.crash[1]}@{self.crash[0]:.0f})")
        return " ".join(parts)


def generate_scenario(seed: int, index: int,
                      fault_end: float = 300.0) -> ChaosScenario:
    """Draw scenario ``index`` of campaign ``seed`` (pure function)."""
    rng = SeedStream(seed).child("scenario").stream(f"s{index}")
    drop_fraction = round(rng.uniform(0.005, 0.025), 4)
    delay = duplicate = reorder = partition_window = crash = None
    if rng.random() < 0.5:
        delay = (round(rng.uniform(0.05, 0.20), 3),
                 round(rng.uniform(5.0, 20.0), 2))
    if rng.random() < 0.5:
        duplicate = (round(rng.uniform(0.05, 0.20), 3), 1)
    if rng.random() < 0.5:
        reorder = (round(rng.uniform(0.10, 0.30), 3),
                   round(rng.uniform(1.0, 4.0), 2))
    if rng.random() < 0.4:
        start = round(rng.uniform(40.0, 180.0), 1)
        partition_window = (start,
                            round(start + rng.uniform(30.0, 60.0), 1))
    if rng.random() < 0.4:
        time = round(rng.uniform(40.0, 150.0), 1)
        crash = (time, rng.randrange(2),
                 round(time + rng.uniform(50.0, 100.0), 1))
    return ChaosScenario(index=index, fault_end=fault_end,
                         drop_fraction=drop_fraction, delay=delay,
                         duplicate=duplicate, reorder=reorder,
                         partition_window=partition_window, crash=crash)


# ---------------------------------------------------------------------------
# one scenario run


@dataclass
class ScenarioResult:
    """Outcome of one (scenario, scheme) run."""

    scheme: str
    scenario: ChaosScenario
    ops_completed: int
    ops_expected: int
    finished_at: Optional[float]    # virtual ms; None if the run got stuck
    timeouts: int
    resends: int
    messages_sent: int
    violations: tuple[str, ...]
    # Trace context for failed runs: stuck commands, anomaly flags and the
    # slowest command's timeline — enough to start debugging without
    # re-running the scenario. Empty when the run passed.
    trace_notes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


def _random_access(rng: random.Random) -> Command:
    """The linearizability workload mix: reads, increments, swaps, sums."""
    kind = rng.random()
    if kind < 0.30:
        key = rng.choice(KEYS)
        return Command(op="get", args={"key": key}, variables=(key,))
    if kind < 0.65:
        key = rng.choice(KEYS)
        return Command(op="incr", args={"key": key}, variables=(key,),
                       writes=(key,))
    if kind < 0.85:
        a, b = rng.sample(KEYS, 2)
        return Command(op="swap", args={"a": a, "b": b}, variables=(a, b),
                       writes=(a, b))
    keys = rng.sample(KEYS, 2)
    return Command(op="sum", args={"keys": keys}, variables=tuple(keys))


def _build_cluster(scheme: str, seed: int, tag: str,
                   dedup: bool = True, tracer=None) -> Cluster:
    assignment = None
    if scheme != "smr":
        assignment = {key: i % 2 for i, key in enumerate(KEYS)}
    cluster_seed = SeedStream(seed).child(scheme).stream(tag).randrange(2**31)
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        initial_assignment=assignment, dedup=dedup), tracer=tracer)
    cluster.preload(dict(INITIAL))
    return cluster


def _spawn_workload(cluster: Cluster, history: Optional[History],
                    num_clients: int, ops_per_client: int,
                    workload_tag: str):
    """Start client processes; returns (status dict, all-done event)."""
    env = cluster.env
    status = {"completed": 0, "finished_clients": 0}
    done = env.event()
    clients = [cluster.new_client(f"c{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random.Random(f"{workload_tag}/{index}")
        for _ in range(ops_per_client):
            command = _random_access(rng)
            invoked = env.now
            reply = yield from client.run_command(command)
            result = reply.value if reply.status is not ReplyStatus.NOK \
                else str(reply.value)
            if history is not None:
                history.record(client.name, command.op, command.args,
                               result, invoked, env.now)
            status["completed"] += 1
            yield env.timeout(rng.uniform(0.0, 1.0))
        status["finished_clients"] += 1
        if status["finished_clients"] == num_clients:
            done.succeed(None)

    for index, client in enumerate(clients):
        env.process(loop(client, index), name=f"chaos/{client.name}")
    return status, done


def run_scenario(scheme: str, scenario: ChaosScenario, seed: int,
                 num_clients: int = 3, ops_per_client: int = 8,
                 dedup: bool = True) -> ScenarioResult:
    """Run one scenario against one scheme and check every invariant."""
    _reset_id_counters()
    # Spans touch no RNG and schedule no events, so tracing every scenario
    # costs only memory and never perturbs the fault schedule — and a
    # failing run carries its own trace context (see trace_notes).
    tracer = CommandTracer()
    cluster = _build_cluster(scheme, seed, f"cluster{scenario.index}",
                             dedup=dedup, tracer=tracer)
    env = cluster.env

    if scheme == "smr":
        for server in cluster.servers.values():
            RecoveryHost(server)

    # -- fault schedule ----------------------------------------------------
    injector = FailureInjector(env, cluster.network,
                               cluster.seeds.child(f"chaos{scenario.index}"))
    injector.drop_fraction(scenario.drop_fraction)
    if scenario.delay:
        injector.delay_spikes(*scenario.delay)
    if scenario.duplicate:
        injector.duplicate_fraction(*scenario.duplicate)
    if scenario.reorder:
        injector.reorder_fraction(*scenario.reorder)
    if scenario.partition_window:
        start, end = scenario.partition_window
        if len(cluster.partitions) > 1:
            island_a = cluster.directory.members(cluster.partitions[0])
            island_b = cluster.directory.members(cluster.partitions[1])
        else:  # classic SMR: cut the follower off from the sequencer
            members = cluster.directory.members(cluster.partitions[0])
            island_a, island_b = members[:1], members[1:]
        injector.partition_between(start, end, island_a, island_b)
    # A clean network for the post-fault phase: invariants are end-state
    # guarantees, and trailing in-window faults would otherwise race them.
    env.schedule_callback(scenario.fault_end, injector.heal_all)

    if scenario.crash:
        crash_time, partition_index, recover_time = scenario.crash
        partition = cluster.partitions[partition_index
                                       % len(cluster.partitions)]
        victim = f"{partition}s1"   # follower; never the sequencer

        def do_crash() -> None:
            cluster.servers[victim].crash()

        if scheme == "smr":
            peer = cluster.servers[f"{partition}s0"]

            def do_restart() -> None:
                cluster.servers[victim] = recover_replica(
                    cluster.servers[victim], peer)
        else:
            def do_restart() -> None:
                cluster.recover_server(victim)

        injector.crash_restart_at(crash_time, victim,
                                  recover_time - crash_time,
                                  crash=do_crash, restart=do_restart)

    # -- workload ----------------------------------------------------------
    history = History()
    status, done = _spawn_workload(
        cluster, history, num_clients, ops_per_client,
        workload_tag=f"{seed}/{scheme}/{scenario.index}")
    end_marker = {"at": None}

    def driver():
        yield done
        if env.now < scenario.fault_end + 10.0:
            yield env.timeout(scenario.fault_end + 10.0 - env.now)
        # Cooldown round on a fresh client: new log entries make any
        # replica with a trailing gap detect it and request backfill
        # (gaps in the *middle* of a log self-heal on later traffic, but
        # a gap at the very end needs one more entry to become visible).
        cooldown = cluster.new_client("cool")
        for key in KEYS:
            yield from cooldown.run_command(
                Command(op="get", args={"key": key}, variables=(key,)))
        yield env.timeout(SETTLE_MS)
        end_marker["at"] = env.now

    env.process(driver(), name="chaos/driver")
    env.run(until=DEADLINE_MS)

    # -- invariants --------------------------------------------------------
    violations: list[str] = []
    expected = num_clients * ops_per_client
    if status["completed"] != expected or end_marker["at"] is None:
        violations.append(f"only {status['completed']}/{expected} ops "
                          f"completed before the deadline")
    elif not check_linearizable(history, KvSequentialSpec(dict(INITIAL))):
        violations.append("history is not linearizable")

    violations.extend(cluster_invariants(cluster))

    trace_notes: list[str] = []
    if violations:
        stuck = tracer.open_traces()
        if stuck:
            trace_notes.append(
                "stuck commands (root span never closed): "
                + ", ".join(stuck[:6])
                + (f" (+{len(stuck) - 6} more)" if len(stuck) > 6 else ""))
        trace_notes.extend(find_anomalies(tracer.spans)[:4])
        slow = slowest_traces(tracer.spans, 1)
        if slow:
            trace_notes.append(command_timeline(tracer.spans, slow[0]))

    return ScenarioResult(
        scheme=scheme, scenario=scenario,
        ops_completed=status["completed"], ops_expected=expected,
        finished_at=end_marker["at"],
        timeouts=sum(c.timeouts for c in cluster.clients),
        resends=sum(c.resends for c in cluster.clients),
        messages_sent=cluster.network.messages_sent,
        violations=tuple(violations),
        trace_notes=tuple(trace_notes))


# ---------------------------------------------------------------------------
# campaign


@dataclass
class CampaignResult:
    """All scenario runs of one campaign, plus the printable report."""

    seed: int
    results: tuple[ScenarioResult, ...]

    @property
    def violations(self) -> list[tuple[ScenarioResult, str]]:
        return [(result, violation) for result in self.results
                for violation in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        schemes = sorted({result.scheme for result in self.results},
                         key=CHAOS_SCHEMES.index)
        scenarios = {result.scenario.index for result in self.results}
        rows = []
        for result in self.results:
            rows.append([
                result.scenario.index, result.scheme,
                result.scenario.describe(),
                f"{result.ops_completed}/{result.ops_expected}",
                (f"{result.finished_at:.0f}"
                 if result.finished_at is not None else "stuck"),
                result.timeouts, result.resends,
                "ok" if result.ok else "FAIL",
            ])
        table = format_table(
            ["#", "scheme", "faults", "ops", "done-ms",
             "timeouts", "resends", "verdict"], rows)
        lines = [f"chaos campaign: seed={self.seed}, "
                 f"{len(scenarios)} scenario(s) x "
                 f"{'/'.join(schemes)}", "", table, ""]
        if self.ok:
            lines.append(f"no invariant violations in "
                         f"{len(self.results)} runs")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            for result, violation in self.violations:
                lines.append(f"  - [{result.scheme} #"
                             f"{result.scenario.index}] {violation}")
            for result in self.results:
                if result.ok or not result.trace_notes:
                    continue
                lines.append(f"  trace context [{result.scheme} "
                             f"#{result.scenario.index}]:")
                for note in result.trace_notes:
                    for note_line in note.splitlines():
                        lines.append(f"    {note_line}")
        return "\n".join(lines)


def run_campaign(num_scenarios: int = 10, seed: int = 0,
                 schemes: Sequence[str] = CHAOS_SCHEMES,
                 num_clients: int = 3, ops_per_client: int = 8,
                 dedup: bool = True) -> CampaignResult:
    """Run ``num_scenarios`` seeded scenarios against every scheme."""
    results = []
    for index in range(num_scenarios):
        scenario = generate_scenario(seed, index)
        for scheme in schemes:
            results.append(run_scenario(
                scheme, scenario, seed, num_clients=num_clients,
                ops_per_client=ops_per_client, dedup=dedup))
    return CampaignResult(seed=seed, results=tuple(results))


# ---------------------------------------------------------------------------
# overhead measurement (experiment E15)


def run_overhead_point(scheme: str, drop_fraction: float, seed: int,
                       num_clients: int = 4,
                       ops_per_client: int = 15) -> dict:
    """Throughput/latency of the resilience layer at one drop rate."""
    _reset_id_counters()
    cluster = _build_cluster(scheme, seed, f"overhead{drop_fraction}")
    env = cluster.env
    if drop_fraction:
        injector = FailureInjector(env, cluster.network,
                                   cluster.seeds.child("overhead"))
        injector.drop_fraction(drop_fraction)
    status, done = _spawn_workload(
        cluster, None, num_clients, ops_per_client,
        workload_tag=f"{seed}/{scheme}/overhead/{drop_fraction}")
    end_marker = {"at": None}

    def driver():
        yield done
        end_marker["at"] = env.now

    env.process(driver(), name="chaos/overhead")
    env.run(until=DEADLINE_MS * 4)
    elapsed = end_marker["at"] or env.now
    total = num_clients * ops_per_client
    return {
        "completed": status["completed"],
        "total": total,
        "throughput": total / (elapsed / 1000.0) if elapsed else 0.0,
        "mean_ms": cluster.latency.mean(),
        "p95_ms": cluster.latency.percentile(95),
        "timeouts": sum(c.timeouts for c in cluster.clients),
        "resends": sum(c.resends for c in cluster.clients),
    }
