"""Chaos campaign: randomized fault schedules against every scheme.

Each scenario is drawn from a seeded generator — a mix of message drops,
latency spikes, duplication, bounded reordering, a network partition window
and a crash-restart whose victim is drawn by *role*: followers die with
amnesia and recover through :mod:`repro.smr.recovery` (classic SMR) or
checkpoint-install recovery (:mod:`repro.reconfig.recovery`); speakers
and oracle replicas suffer a network blackout and reconnect with their
in-memory ordering state intact (no recovery path can rebuild a
sequencer). The campaign runs each scenario against classic SMR, S-SMR
and DS-SMR deployments whose clients use the resilience layer
(:mod:`repro.resilience`), then checks the system's guarantees after the
network heals:

* every client request completed before the deadline;
* the recorded history is linearizable (Wing–Gong checker);
* the shared end-state invariants (:mod:`repro.harness.invariants`):
  exactly-once execution, replica convergence, unique placement, oracle
  map accuracy and configuration-epoch agreement.

Everything — fault schedule, workload, backoff jitter — derives from the
campaign seed, so ``run_campaign(n, seed)`` is fully deterministic: two
runs produce byte-identical reports. The CLI entry point is
``python -m repro chaos --scenarios N --seed S``.

Execution is shared with the fuzzer: a :class:`ChaosScenario` converts to
a :class:`~repro.fuzz.schedule.FaultSchedule` (:meth:`to_schedule`) and
:func:`run_scenario` delegates to :func:`repro.fuzz.runner.run_schedule`,
so both harnesses exercise the exact same build/inject/workload/check
path and any chaos scenario can be shrunk or replayed with the fuzzer's
tooling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fuzz.generate import shape_nodes
from repro.fuzz.schedule import FaultSchedule
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.faults import VICTIM_ROLES, reset_id_counters
from repro.harness.report import format_table
from repro.net import FailureInjector
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ReplyStatus

#: Schemes every scenario is run against.
CHAOS_SCHEMES = ("smr", "ssmr", "dssmr")

#: Keys preloaded into every cluster (spread over both partitions).
KEYS = tuple(f"k{i}" for i in range(6))
INITIAL = {key: 0 for key in KEYS}

#: Virtual-time bounds of one scenario run (ms).
DEADLINE_MS = 8_000.0
SETTLE_MS = 400.0


# Canonical implementation lives with the other shared fault helpers;
# the alias keeps this module's historical import surface
# (repro.harness.elastic and older tests import it from here).
_reset_id_counters = reset_id_counters


# ---------------------------------------------------------------------------
# scenario generation


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded fault schedule (times in virtual ms).

    Optional faults are ``None`` when the scenario does not include them;
    ``crash`` is ``(time, partition_index, recover_time)`` and
    ``crash_role`` picks the victim position: a *follower* dies with
    amnesia and runs full recovery, a *speaker* (sequencer) or *oracle*
    replica suffers a network blackout and reconnects with state intact.
    """

    index: int
    fault_end: float
    drop_fraction: float
    delay: Optional[tuple] = None        # (fraction, spike_ms)
    duplicate: Optional[tuple] = None    # (fraction, extra_copies)
    reorder: Optional[tuple] = None      # (fraction, window_ms)
    partition_window: Optional[tuple] = None   # (start, end)
    crash: Optional[tuple] = None        # (time, partition_index, recover)
    crash_role: str = "follower"         # follower | speaker | oracle

    def describe(self) -> str:
        parts = [f"drop={self.drop_fraction:.3f}"]
        if self.delay:
            parts.append(f"delay({self.delay[0]:.2f},{self.delay[1]:.0f}ms)")
        if self.duplicate:
            parts.append(f"dup({self.duplicate[0]:.2f})")
        if self.reorder:
            parts.append(f"reorder({self.reorder[0]:.2f})")
        if self.partition_window:
            start, end = self.partition_window
            parts.append(f"split[{start:.0f},{end:.0f})")
        if self.crash:
            parts.append(f"crash({self.crash_role}:p{self.crash[1]}"
                         f"@{self.crash[0]:.0f})")
        return " ".join(parts)

    def _crash_victim(self, scheme: str) -> tuple[str, str]:
        """Resolve ``crash_role`` to ``(node, mode)`` for ``scheme``.

        Mirrors :func:`repro.harness.faults.select_victim` but works on
        the *static* deployment shape (:func:`shape_nodes`), so the
        schedule can be built before any cluster exists. The oracle role
        degrades to speaker on schemes without an oracle group.
        """
        shape = shape_nodes(scheme)
        _, partition_index, _ = self.crash
        role = self.crash_role
        if role == "oracle" and not shape["oracles"]:
            role = "speaker"
        if role == "oracle":
            pool = shape["oracles"]
            return pool[partition_index % len(pool)], "blackout"
        if role == "speaker":
            pool = shape["speakers"]
            return pool[partition_index % len(pool)], "blackout"
        pool = shape["followers"]
        return pool[partition_index % len(pool)], "restart"

    def to_schedule(self, scheme: str, seed: int,
                    num_clients: int = 3, ops_per_client: int = 8,
                    dedup: bool = True,
                    supervisor: bool = False) -> FaultSchedule:
        """The equivalent :class:`FaultSchedule` (the fuzzer's format).

        The conversion is what lets :func:`run_scenario` delegate to the
        shared schedule runner — and what makes any chaos scenario
        shrinkable and replayable with the fuzzer's tooling.
        """
        shape = shape_nodes(scheme)
        events: list[dict] = [{"kind": "drop", "at": 0.0,
                               "end": self.fault_end,
                               "fraction": self.drop_fraction}]
        if self.delay:
            events.append({"kind": "delay", "at": 0.0,
                           "end": self.fault_end,
                           "fraction": self.delay[0],
                           "spike_ms": self.delay[1]})
        if self.duplicate:
            events.append({"kind": "duplicate", "at": 0.0,
                           "end": self.fault_end,
                           "fraction": self.duplicate[0],
                           "copies": self.duplicate[1]})
        if self.reorder:
            events.append({"kind": "reorder", "at": 0.0,
                           "end": self.fault_end,
                           "fraction": self.reorder[0],
                           "window_ms": self.reorder[1]})
        if self.partition_window:
            start, end = self.partition_window
            if len(shape["partitions"]) > 1:
                island_a = list(shape["servers"][shape["partitions"][0]])
                island_b = list(shape["servers"][shape["partitions"][1]])
            else:   # classic SMR: cut the follower off from the sequencer
                members = shape["servers"][shape["partitions"][0]]
                island_a, island_b = [members[0]], list(members[1:])
            events.append({"kind": "partition", "at": start, "end": end,
                           "island_a": island_a, "island_b": island_b})
        if self.crash:
            crash_time, _, recover_time = self.crash
            node, mode = self._crash_victim(scheme)
            events.append({"kind": "crash", "at": crash_time,
                           "node": node, "mode": mode,
                           "duration": recover_time - crash_time})
        return FaultSchedule(
            seed=seed, index=self.index, scheme=scheme,
            events=tuple(events), horizon_ms=self.fault_end,
            deadline_ms=DEADLINE_MS, num_clients=num_clients,
            ops_per_client=ops_per_client, num_keys=len(KEYS),
            inject_bug=None if dedup else "no_dedup",
            supervisor=supervisor)


def generate_scenario(seed: int, index: int,
                      fault_end: float = 300.0) -> ChaosScenario:
    """Draw scenario ``index`` of campaign ``seed`` (pure function)."""
    rng = SeedStream(seed).child("scenario").stream(f"s{index}")
    drop_fraction = round(rng.uniform(0.005, 0.025), 4)
    delay = duplicate = reorder = partition_window = crash = None
    crash_role = "follower"
    if rng.random() < 0.5:
        delay = (round(rng.uniform(0.05, 0.20), 3),
                 round(rng.uniform(5.0, 20.0), 2))
    if rng.random() < 0.5:
        duplicate = (round(rng.uniform(0.05, 0.20), 3), 1)
    if rng.random() < 0.5:
        reorder = (round(rng.uniform(0.10, 0.30), 3),
                   round(rng.uniform(1.0, 4.0), 2))
    if rng.random() < 0.4:
        start = round(rng.uniform(40.0, 180.0), 1)
        partition_window = (start,
                            round(start + rng.uniform(30.0, 60.0), 1))
    if rng.random() < 0.4:
        time = round(rng.uniform(40.0, 150.0), 1)
        crash = (time, rng.randrange(2),
                 round(time + rng.uniform(50.0, 100.0), 1))
        crash_role = VICTIM_ROLES[rng.randrange(len(VICTIM_ROLES))]
    return ChaosScenario(index=index, fault_end=fault_end,
                         drop_fraction=drop_fraction, delay=delay,
                         duplicate=duplicate, reorder=reorder,
                         partition_window=partition_window, crash=crash,
                         crash_role=crash_role)


# ---------------------------------------------------------------------------
# one scenario run


@dataclass
class ScenarioResult:
    """Outcome of one (scenario, scheme) run."""

    scheme: str
    scenario: ChaosScenario
    ops_completed: int
    ops_expected: int
    finished_at: Optional[float]    # virtual ms; None if the run got stuck
    timeouts: int
    resends: int
    messages_sent: int
    violations: tuple[str, ...]
    # Trace context for failed runs: stuck commands, anomaly flags and the
    # slowest command's timeline — enough to start debugging without
    # re-running the scenario. Empty when the run passed.
    trace_notes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


def _random_access(rng: random.Random) -> Command:
    """The linearizability workload mix: reads, increments, swaps, sums."""
    kind = rng.random()
    if kind < 0.30:
        key = rng.choice(KEYS)
        return Command(op="get", args={"key": key}, variables=(key,))
    if kind < 0.65:
        key = rng.choice(KEYS)
        return Command(op="incr", args={"key": key}, variables=(key,),
                       writes=(key,))
    if kind < 0.85:
        a, b = rng.sample(KEYS, 2)
        return Command(op="swap", args={"a": a, "b": b}, variables=(a, b),
                       writes=(a, b))
    keys = rng.sample(KEYS, 2)
    return Command(op="sum", args={"keys": keys}, variables=tuple(keys))


def _build_cluster(scheme: str, seed: int, tag: str,
                   dedup: bool = True, tracer=None) -> Cluster:
    assignment = None
    if scheme != "smr":
        assignment = {key: i % 2 for i, key in enumerate(KEYS)}
    cluster_seed = SeedStream(seed).child(scheme).stream(tag).randrange(2**31)
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        initial_assignment=assignment, dedup=dedup), tracer=tracer)
    cluster.preload(dict(INITIAL))
    return cluster


def _spawn_workload(cluster: Cluster, history: Optional[History],
                    num_clients: int, ops_per_client: int,
                    workload_tag: str):
    """Start client processes; returns (status dict, all-done event)."""
    env = cluster.env
    status = {"completed": 0, "finished_clients": 0}
    done = env.event()
    clients = [cluster.new_client(f"c{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random.Random(f"{workload_tag}/{index}")
        for _ in range(ops_per_client):
            command = _random_access(rng)
            invoked = env.now
            reply = yield from client.run_command(command)
            result = reply.value if reply.status is not ReplyStatus.NOK \
                else str(reply.value)
            if history is not None:
                history.record(client.name, command.op, command.args,
                               result, invoked, env.now)
            status["completed"] += 1
            yield env.timeout(rng.uniform(0.0, 1.0))
        status["finished_clients"] += 1
        if status["finished_clients"] == num_clients:
            done.succeed(None)

    for index, client in enumerate(clients):
        env.process(loop(client, index), name=f"chaos/{client.name}")
    return status, done


def run_scenario(scheme: str, scenario: ChaosScenario, seed: int,
                 num_clients: int = 3, ops_per_client: int = 8,
                 dedup: bool = True,
                 supervisor: bool = False) -> ScenarioResult:
    """Run one scenario against one scheme and check every invariant.

    Delegates to the schedule runner shared with the fuzzer
    (:func:`repro.fuzz.runner.run_schedule`): one build/inject/workload/
    check path for both harnesses. With ``supervisor=True`` the scenario
    runs under the autonomous recovery supervisor (:mod:`repro.heal`)
    and crash events get no harness-driven restart.
    """
    # Imported here, not at module top: the runner imports the cluster
    # harness, whose package init imports this module — a cycle that only
    # resolves when neither side needs the other at import time.
    from repro.fuzz.runner import run_schedule

    schedule = scenario.to_schedule(scheme, seed, num_clients=num_clients,
                                    ops_per_client=ops_per_client,
                                    dedup=dedup, supervisor=supervisor)
    run = run_schedule(schedule)
    return ScenarioResult(
        scheme=scheme, scenario=scenario,
        ops_completed=run.ops_completed, ops_expected=run.ops_expected,
        finished_at=run.finished_at, timeouts=run.timeouts,
        resends=run.resends, messages_sent=run.messages_sent,
        violations=run.violations, trace_notes=run.trace_notes)


# ---------------------------------------------------------------------------
# campaign


@dataclass
class CampaignResult:
    """All scenario runs of one campaign, plus the printable report."""

    seed: int
    results: tuple[ScenarioResult, ...]

    @property
    def violations(self) -> list[tuple[ScenarioResult, str]]:
        return [(result, violation) for result in self.results
                for violation in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        schemes = sorted({result.scheme for result in self.results},
                         key=CHAOS_SCHEMES.index)
        scenarios = {result.scenario.index for result in self.results}
        rows = []
        for result in self.results:
            rows.append([
                result.scenario.index, result.scheme,
                result.scenario.describe(),
                f"{result.ops_completed}/{result.ops_expected}",
                (f"{result.finished_at:.0f}"
                 if result.finished_at is not None else "stuck"),
                result.timeouts, result.resends,
                "ok" if result.ok else "FAIL",
            ])
        table = format_table(
            ["#", "scheme", "faults", "ops", "done-ms",
             "timeouts", "resends", "verdict"], rows)
        lines = [f"chaos campaign: seed={self.seed}, "
                 f"{len(scenarios)} scenario(s) x "
                 f"{'/'.join(schemes)}", "", table, ""]
        if self.ok:
            lines.append(f"no invariant violations in "
                         f"{len(self.results)} runs")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            for result, violation in self.violations:
                lines.append(f"  - [{result.scheme} #"
                             f"{result.scenario.index}] {violation}")
            for result in self.results:
                if result.ok or not result.trace_notes:
                    continue
                lines.append(f"  trace context [{result.scheme} "
                             f"#{result.scenario.index}]:")
                for note in result.trace_notes:
                    for note_line in note.splitlines():
                        lines.append(f"    {note_line}")
        return "\n".join(lines)


def run_campaign(num_scenarios: int = 10, seed: int = 0,
                 schemes: Sequence[str] = CHAOS_SCHEMES,
                 num_clients: int = 3, ops_per_client: int = 8,
                 dedup: bool = True,
                 supervisor: bool = False) -> CampaignResult:
    """Run ``num_scenarios`` seeded scenarios against every scheme."""
    results = []
    for index in range(num_scenarios):
        scenario = generate_scenario(seed, index)
        for scheme in schemes:
            results.append(run_scenario(
                scheme, scenario, seed, num_clients=num_clients,
                ops_per_client=ops_per_client, dedup=dedup,
                supervisor=supervisor))
    return CampaignResult(seed=seed, results=tuple(results))


# ---------------------------------------------------------------------------
# overhead measurement (experiment E15)


def run_overhead_point(scheme: str, drop_fraction: float, seed: int,
                       num_clients: int = 4,
                       ops_per_client: int = 15) -> dict:
    """Throughput/latency of the resilience layer at one drop rate."""
    _reset_id_counters()
    cluster = _build_cluster(scheme, seed, f"overhead{drop_fraction}")
    env = cluster.env
    if drop_fraction:
        injector = FailureInjector(env, cluster.network,
                                   cluster.seeds.child("overhead"))
        injector.drop_fraction(drop_fraction)
    status, done = _spawn_workload(
        cluster, None, num_clients, ops_per_client,
        workload_tag=f"{seed}/{scheme}/overhead/{drop_fraction}")
    end_marker = {"at": None}

    def driver():
        yield done
        end_marker["at"] = env.now

    env.process(driver(), name="chaos/overhead")
    env.run(until=DEADLINE_MS * 4)
    elapsed = end_marker["at"] or env.now
    total = num_clients * ops_per_client
    return {
        "completed": status["completed"],
        "total": total,
        "throughput": total / (elapsed / 1000.0) if elapsed else 0.0,
        "mean_ms": cluster.latency.mean(),
        "p95_ms": cluster.latency.percentile(95),
        "timeouts": sum(c.timeouts for c in cluster.clients),
        "resends": sum(c.resends for c in cluster.clients),
    }
