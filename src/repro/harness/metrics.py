"""Aggregated experiment metrics.

One :class:`ExperimentMetrics` summarises a run: the throughput/latency
numbers of the paper's main figures plus the protocol-internal counters
(moves, retries, consults, cache hits, fallbacks, oracle load) behind the
motivation and oracle experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import TimeSeries


@dataclass
class ExperimentMetrics:
    """Summary of one experiment run (times in ms, rates in ops/second)."""

    scheme: str
    num_partitions: int
    duration_ms: float
    completed: int
    throughput: float            # commands per second of virtual time
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float = math.nan
    moves: int = 0
    retries: int = 0
    consults: int = 0
    cache_hits: int = 0
    fallbacks: int = 0
    oracle_busy_fraction: float = 0.0
    extra: dict = field(default_factory=dict)

    def row(self) -> list:
        """Fixed-order row for the report tables."""
        return [
            self.scheme,
            self.num_partitions,
            self.completed,
            round(self.throughput, 1),
            round(self.latency_mean_ms, 3),
            round(self.latency_p95_ms, 3),
            round(self.latency_p99_ms, 3),
            self.moves,
            self.retries,
        ]

    ROW_HEADERS = ["scheme", "parts", "cmds", "tput/s", "lat-mean",
                   "lat-p95", "lat-p99", "moves", "retries"]


def summarize(cluster, duration_ms: float, warmup_ms: float = 0.0,
              extra: Optional[dict] = None) -> ExperimentMetrics:
    """Build metrics from a finished cluster run.

    ``warmup_ms`` excludes the initial transient from throughput/latency
    (the paper's steady-state numbers do the same); counters like moves and
    retries cover the whole run.
    """
    recorder = cluster.latency
    times = recorder.completions.times
    values = recorder.completions.values
    window = [v for t, v in zip(times, values) if t >= warmup_ms]
    measured_ms = duration_ms - warmup_ms
    completed = len(window)
    throughput = completed / measured_ms * 1000.0 if measured_ms > 0 else 0.0

    def pct(p: float) -> float:
        if not window:
            return math.nan
        ordered = sorted(window)
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    oracle_busy = 0.0
    if cluster.oracle is not None and duration_ms > 0:
        oracle_busy = cluster.oracle.busy.busy_fraction(0.0, duration_ms)
    merged_extra = dict(extra or {})
    registry = getattr(cluster, "registry", None)
    if registry is not None:
        for name, value in registry.scrape().items():
            merged_extra.setdefault(name, value)
    return ExperimentMetrics(
        scheme=cluster.config.scheme,
        num_partitions=cluster.config.num_partitions,
        duration_ms=duration_ms,
        completed=completed,
        throughput=throughput,
        latency_mean_ms=(sum(window) / completed) if completed else math.nan,
        latency_p50_ms=pct(50),
        latency_p95_ms=pct(95),
        latency_p99_ms=pct(99),
        moves=cluster.moves_total(),
        retries=cluster.total_retries(),
        consults=cluster.total_consults(),
        cache_hits=cluster.total_cache_hits(),
        fallbacks=cluster.total_fallbacks(),
        oracle_busy_fraction=oracle_busy,
        extra=merged_extra,
    )


def throughput_series(cluster, bucket_ms: float,
                      end_ms: float) -> TimeSeries:
    """Completed commands per second, per time bucket."""
    counts = TimeSeries("completions")
    for t in cluster.latency.completions.times:
        counts.record(t, 1.0)
    rate = counts.bucketed_rate(bucket_ms, end=end_ms)
    scaled = TimeSeries("throughput-ops-per-s")
    for t, v in rate:
        scaled.record(t, v * 1000.0)
    return scaled


def moves_rate_series(cluster, bucket_ms: float, end_ms: float) -> TimeSeries:
    """Variables moved per second, per time bucket (0-series if static)."""
    series = cluster.moves_series()
    out = TimeSeries("moves-per-s")
    if series is None:
        edge = bucket_ms
        while edge <= end_ms + 1e-9:
            out.record(edge, 0.0)
            edge += bucket_ms
        return out
    rate = series.bucketed_rate(bucket_ms, end=end_ms)
    for t, v in rate:
        out.record(t, v * 1000.0)
    return out
