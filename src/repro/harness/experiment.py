"""Chirper experiment driver.

Builds a cluster, loads the social graph as Chirper state, starts
closed-loop clients (the paper used 100 clients per partition; the count is
a parameter here), runs for a fixed stretch of virtual time and returns the
aggregated metrics plus the time series behind the over-time figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.chirper import ChirperClient, ChirperStateMachine, user_key
from repro.apps.chirper.client import HINT_ALL, HINT_NONE
from repro.graph import Graph, MultilevelPartitioner
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.metrics import (ExperimentMetrics, moves_rate_series,
                                   summarize, throughput_series)
from repro.sim import TimeSeries
from repro.workload import PostWorkload, WorkloadOp


@dataclass
class ExperimentResult:
    """Everything one run produces."""

    metrics: ExperimentMetrics
    throughput: TimeSeries
    moves: TimeSeries
    latency_over_time: TimeSeries
    oracle_load: Optional[TimeSeries] = None
    extra: dict = field(default_factory=dict)


class ChirperDeployment:
    """A cluster with Chirper state loaded and client plumbing ready."""

    def __init__(self, graph: Graph, config: ClusterConfig,
                 hint_mode: Optional[str] = None):
        self.graph = graph
        config.state_machine_factory = ChirperStateMachine
        self.cluster = Cluster(config)
        self.hint_mode = hint_mode if hint_mode is not None else (
            HINT_ALL if config.scheme == "dynastar" else HINT_NONE)
        # Social view shared by all clients: followers(u) = neighbours(u)
        # (the paper treats social edges as mutual follow relations).
        self.social_view = {u: set(graph.neighbours(u))
                            for u in graph.vertices()}
        self._load_state()
        self.chirper_clients: list[ChirperClient] = []

    def _load_state(self) -> None:
        initial = {}
        for u in self.graph.vertices():
            initial[user_key(u)] = {
                "following": sorted(self.graph.neighbours(u)),
                "followers": sorted(self.graph.neighbours(u)),
                "timeline": [],
            }
        self.cluster.preload(initial)

    def new_chirper_client(self) -> ChirperClient:
        proxy = self.cluster.new_client()
        client = ChirperClient(proxy, social_view=self.social_view,
                               hint_mode=self.hint_mode)
        self.chirper_clients.append(client)
        return client

    def start_closed_loop_clients(self, count: int, workload,
                                  end_time_ms: float) -> None:
        """Spawn ``count`` client processes issuing ops until ``end_time_ms``."""
        for index in range(count):
            client = self.new_chirper_client()
            stream = workload.stream(index)
            self.cluster.env.process(
                _client_loop(self.cluster.env, client, stream, end_time_ms),
                name=f"client-loop-{index}")


def _client_loop(env, client: ChirperClient, stream, end_time_ms: float):
    for op in stream:
        if env.now >= end_time_ms:
            return
        yield from _dispatch(client, op)


def _dispatch(client: ChirperClient, op: WorkloadOp):
    if op.op == "post":
        return (yield from client.post(op.user, op.text))
    if op.op == "timeline":
        return (yield from client.timeline(op.user))
    if op.op == "follow":
        return (yield from client.follow(op.user, op.other))
    if op.op == "unfollow":
        return (yield from client.unfollow(op.user, op.other))
    raise ValueError(f"unknown workload op: {op.op!r}")


def static_assignment_for(graph: Graph, num_partitions: int,
                          planted: Optional[dict] = None) -> dict:
    """The "optimized static" assignment: planted communities when the
    workload has them, otherwise the multilevel partitioner's output.
    Keys are translated to Chirper variable keys."""
    if planted is not None:
        assignment = planted
    else:
        assignment = MultilevelPartitioner().partition(graph, num_partitions)
    return {user_key(u): part for u, part in assignment.items()}


def run_chirper_experiment(scheme: str, graph: Graph, num_partitions: int,
                           clients_per_partition: int = 10,
                           duration_ms: float = 10_000.0,
                           warmup_ms: float = 2_000.0,
                           seed: int = 1,
                           initial_assignment: Optional[dict] = None,
                           workload=None,
                           bucket_ms: float = 1_000.0,
                           grace_ms: float = 2_000.0,
                           **config_kwargs) -> ExperimentResult:
    """Run one configuration end to end and aggregate everything.

    ``initial_assignment`` maps Chirper variable keys to partition indices
    (see :func:`static_assignment_for`); when omitted, variables are placed
    by stable hashing — the cold-start situation the dynamic schemes are
    designed for.
    """
    # A bucket wider than the run would produce empty series.
    bucket_ms = min(bucket_ms, duration_ms / 4)
    config = ClusterConfig(scheme=scheme, num_partitions=num_partitions,
                           seed=seed,
                           initial_assignment=initial_assignment,
                           **config_kwargs)
    deployment = ChirperDeployment(graph, config)
    cluster = deployment.cluster
    workload = workload or PostWorkload(graph, seed=seed)
    total_clients = clients_per_partition * config.num_partitions
    deployment.start_closed_loop_clients(total_clients, workload,
                                         duration_ms)
    cluster.run(until=duration_ms + grace_ms)

    metrics = summarize(cluster, duration_ms, warmup_ms=warmup_ms)
    oracle_load = None
    if cluster.oracle is not None:
        oracle_load = cluster.oracle.busy.load_series(bucket_ms, duration_ms)
    return ExperimentResult(
        metrics=metrics,
        throughput=throughput_series(cluster, bucket_ms, duration_ms),
        moves=moves_rate_series(cluster, bucket_ms, duration_ms),
        latency_over_time=cluster.latency.windowed_mean(bucket_ms,
                                                        duration_ms),
        oracle_load=oracle_load,
        extra={"deployment": deployment},
    )
