"""Parallel-execution campaign: equivalence proof + worker/conflict sweep.

The driver behind ``python -m repro parallelexec`` and figure 21 (E22).
Two halves:

* **Equivalence** — the P-SMR correctness property: for a *fixed delivered
  log*, conflict-aware parallel execution produces byte-identical state,
  execution history and replies to sequential execution. A closed-loop
  workload cannot test this (faster replies change submission times and
  hence the log itself), so the equivalence workload is *open-loop*: each
  client submits on a fixed virtual-time grid, spaced widely enough that
  every command's full lifetime fits inside its slot. Submission times —
  and therefore message order, latency draws and the ordered log — are
  then identical whether executors run sequentially or on worker pools,
  and the end states must match byte for byte.

* **Throughput sweep** — an executor-bound closed-loop workload against a
  single DS-SMR partition: many clients, a heavy execution cost model, and
  a hot-key conflict knob (each op hits a shared hot variable with
  probability ``conflict``, its client-private variable otherwise). Varying
  the worker count shows the parallel engine converting idle simulated
  cores into throughput until conflicts serialize it — the figure-21
  surface. The campaign gates on the headline claim: >= 2.5x single-
  partition throughput at 4 workers under 10% conflict.

Everything derives from the seed and runs in virtual time, so campaign
results are byte-deterministic: the CI smoke job runs the campaign twice
and compares the JSON payloads byte for byte.
"""

from __future__ import annotations

import json
import random
from typing import Optional

from repro.harness.chaos import INITIAL, KEYS, _random_access, \
    _reset_id_counters
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.report import format_table
from repro.reconfig.checkpoint import state_checksum
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ExecutionConfig, ExecutionModel, ReplyStatus

RESULT_FORMAT = "repro-parallelexec/1"

#: Equivalence schedule: one command per client per slot. The slot must
#: swallow a command's whole lifetime (consult + order + execute + reply,
#: including a DS-SMR move/retry chain) in *both* executions, so that
#: submission times never depend on reply times.
SLOT_MS = 50.0
CLIENT_STAGGER_MS = 12.0
EQUIVALENCE_DEADLINE_MS = 60_000.0

#: Throughput sweep deployment: one partition, closed loop, executor-bound.
SWEEP_EXECUTION = ExecutionModel(base_ms=1.0, per_variable_ms=0.02)
HOT_KEY = "h0"

#: Headline gate (ISSUE acceptance): 4 workers, 10% conflict, vs sequential.
GATE_WORKERS = 4
GATE_CONFLICT = 0.1
GATE_MIN_SPEEDUP = 2.5

EQUIVALENCE_SCHEMES = ("smr", "ssmr", "dssmr", "dynastar")


# -- equivalence ------------------------------------------------------------

def _equivalence_cluster(scheme: str, seed: int,
                         parallel: Optional[ExecutionConfig]) -> Cluster:
    assignment = None
    if scheme != "smr":
        assignment = {key: i % 2 for i, key in enumerate(KEYS)}
    cluster_seed = SeedStream(seed).child(scheme).stream("parallelexec") \
        .randrange(2 ** 31)
    return Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        initial_assignment=assignment, parallel=parallel))


def run_equivalence_case(scheme: str, seed: int,
                         parallel: Optional[ExecutionConfig],
                         num_clients: int = 4,
                         ops_per_client: int = 10) -> dict:
    """One open-loop run; returns the run's behavioural fingerprint.

    The fingerprint covers everything the P-SMR argument promises is
    invariant under parallel execution: per-replica stores, execution
    histories, reply caches, and the reply values each client observed.
    Reply *times* are deliberately excluded — finishing earlier is the
    entire point of the engine.
    """
    _reset_id_counters()
    cluster = _equivalence_cluster(scheme, seed, parallel)
    cluster.preload(dict(INITIAL))
    env = cluster.env
    observed: list = []
    status = {"completed": 0, "finished": 0}
    done = env.event()

    def loop(client, index):
        rng = random.Random(f"parallelexec/{seed}/{scheme}/{index}")
        start = (index + 1) * CLIENT_STAGGER_MS
        yield env.timeout(start)
        for op in range(ops_per_client):
            slot = start + op * SLOT_MS
            if env.now < slot:
                yield env.timeout(slot - env.now)
            command = _random_access(rng)
            reply = yield from client.run_command(command)
            observed.append((client.name, op, command.op,
                             reply.status.value, repr(reply.value)))
            status["completed"] += 1
        status["finished"] += 1
        if status["finished"] == num_clients:
            done.succeed(None)

    for index in range(num_clients):
        client = cluster.new_client(f"c{index}")
        env.process(loop(client, index), name=f"parallelexec/c{index}")
    env.run(until=EQUIVALENCE_DEADLINE_MS)

    servers = sorted(cluster.servers.items())
    fingerprint = {
        "stores": {name: server.store.snapshot()
                   for name, server in servers},
        "executed": {name: list(server.executed)
                     for name, server in servers},
        "replies": {name: {cid: (reply.status.value, repr(reply.value))
                           for cid, reply
                           in sorted(server.replies._replies.items())}
                    for name, server in servers},
        "observed": sorted(observed),
    }
    return {
        "completed": status["completed"],
        "expected": num_clients * ops_per_client,
        "checksum": state_checksum(fingerprint),
    }


def run_equivalence(schemes=EQUIVALENCE_SCHEMES, seeds=(1, 2, 3),
                    workers=(1, 2, 4)) -> dict:
    """Sequential-vs-parallel fingerprint comparison, every case.

    Returns per-case rows plus an overall verdict; a single mismatched
    checksum anywhere fails the campaign gate.
    """
    cases = []
    all_equal = True
    for scheme in schemes:
        for seed in seeds:
            base = run_equivalence_case(scheme, seed, None)
            row = {
                "scheme": scheme,
                "seed": seed,
                "completed": base["completed"],
                "expected": base["expected"],
                "sequential_checksum": base["checksum"],
                "workers": {},
            }
            for count in workers:
                run = run_equivalence_case(
                    scheme, seed, ExecutionConfig(workers=count))
                equal = (run["checksum"] == base["checksum"]
                         and run["completed"] == base["completed"])
                row["workers"][str(count)] = {
                    "checksum": run["checksum"],
                    "equal": equal,
                }
                all_equal = all_equal and equal
            cases.append(row)
    return {"cases": cases, "all_equal": all_equal}


# -- throughput sweep -------------------------------------------------------

def run_throughput(workers: int, conflict: float, seed: int = 1,
                   num_clients: int = 24,
                   duration_ms: float = 3000.0) -> dict:
    """One closed-loop, executor-bound cell of the figure-21 surface.

    ``workers=0`` runs the sequential executor (``parallel=None``) — the
    baseline row of the sweep.
    """
    _reset_id_counters()
    parallel = ExecutionConfig(workers=workers) if workers else None
    cluster_seed = SeedStream(seed).child("parallelexec") \
        .stream(f"sweep/{workers}/{conflict}").randrange(2 ** 31)
    cluster = Cluster(ClusterConfig(
        scheme="dssmr", num_partitions=1, replicas_per_partition=2,
        seed=cluster_seed, execution=SWEEP_EXECUTION, parallel=parallel))
    initial = {HOT_KEY: 0}
    initial.update({f"c{i}": 0 for i in range(num_clients)})
    cluster.preload(initial)
    env = cluster.env
    status = {"completed": 0}

    def loop(client, index):
        rng = random.Random(f"sweep/{seed}/{workers}/{conflict}/{index}")
        while True:
            key = HOT_KEY if rng.random() < conflict else f"c{index}"
            command = Command(op="incr", args={"key": key},
                              variables=(key,), writes=(key,))
            reply = yield from client.run_command(command)
            if (reply.status is ReplyStatus.OK
                    and env.now <= duration_ms):
                status["completed"] += 1

    for index in range(num_clients):
        client = cluster.new_client(f"w{index}")
        env.process(loop(client, index), name=f"sweep/w{index}")
    env.run(until=duration_ms)

    cell = {
        "workers": workers,
        "conflict": conflict,
        "completed": status["completed"],
        "throughput_kcps": round(status["completed"] / duration_ms, 4),
    }
    if parallel is not None:
        stats = cluster.exec_stats()
        cell["utilization"] = stats["utilization"]
        cell["stall_fraction"] = stats["stall_fraction"]
        cell["barriers"] = stats["barriers"]
    return cell


def run_sweep(workers=(1, 2, 4, 8), conflicts=(0.0, 0.1, 0.5, 1.0),
              seed: int = 1, num_clients: int = 24,
              duration_ms: float = 3000.0) -> dict:
    """The figure-21 surface: throughput over workers x conflict rate.

    Every conflict column includes the sequential baseline (``workers=0``)
    and per-cell speedup relative to it.
    """
    cells = []
    baselines = {}
    for conflict in conflicts:
        base = run_throughput(0, conflict, seed=seed,
                              num_clients=num_clients,
                              duration_ms=duration_ms)
        baselines[conflict] = base["throughput_kcps"]
        cells.append(base)
        for count in workers:
            cell = run_throughput(count, conflict, seed=seed,
                                  num_clients=num_clients,
                                  duration_ms=duration_ms)
            baseline = baselines[conflict]
            cell["speedup"] = (round(cell["throughput_kcps"] / baseline, 3)
                               if baseline > 0 else 0.0)
            cells.append(cell)
    return {"cells": cells}


def _gate(sweep: dict, equivalence: dict) -> dict:
    speedup = None
    for cell in sweep["cells"]:
        if (cell["workers"] == GATE_WORKERS
                and cell["conflict"] == GATE_CONFLICT):
            speedup = cell.get("speedup")
    passed = (equivalence["all_equal"] and speedup is not None
              and speedup >= GATE_MIN_SPEEDUP)
    return {
        "equivalent": equivalence["all_equal"],
        "speedup_at_gate": speedup,
        "gate_workers": GATE_WORKERS,
        "gate_conflict": GATE_CONFLICT,
        "min_speedup": GATE_MIN_SPEEDUP,
        "passed": passed,
    }


# -- campaign ---------------------------------------------------------------

def run_campaign(seed: int = 1, smoke: bool = False) -> dict:
    """The full parallel-execution campaign (equivalence + sweep + gate)."""
    if smoke:
        equivalence = run_equivalence(seeds=(seed,), workers=(1, 4))
        sweep = run_sweep(workers=(1, 2, 4), conflicts=(0.0, GATE_CONFLICT),
                          seed=seed, num_clients=16, duration_ms=1500.0)
    else:
        equivalence = run_equivalence(seeds=(seed, seed + 1, seed + 2))
        sweep = run_sweep(seed=seed)
    return {
        "format": RESULT_FORMAT,
        "seed": seed,
        "smoke": smoke,
        "equivalence": equivalence,
        "sweep": sweep,
        "gate": _gate(sweep, equivalence),
    }


def to_json(results: dict) -> str:
    """Canonical byte-deterministic serialisation (CI compares these)."""
    return json.dumps(results, sort_keys=True, separators=(",", ":"))


def format_report(results: dict) -> str:
    lines = ["parallel execution campaign",
             f"  seed {results['seed']}"
             f"{' (smoke)' if results['smoke'] else ''}", ""]
    eq_rows = []
    for case in results["equivalence"]["cases"]:
        for count, run in sorted(case["workers"].items(),
                                 key=lambda item: int(item[0])):
            eq_rows.append([case["scheme"], str(case["seed"]), count,
                            "ok" if run["equal"] else "MISMATCH",
                            f"{case['completed']}/{case['expected']}"])
    lines.append(format_table(
        ["scheme", "seed", "workers", "state", "ops"], eq_rows))
    lines.append("")
    sweep_rows = []
    for cell in results["sweep"]["cells"]:
        sweep_rows.append([
            "seq" if cell["workers"] == 0 else str(cell["workers"]),
            f"{cell['conflict']:.2f}",
            f"{cell['throughput_kcps']:.4f}",
            f"{cell.get('speedup', 1.0):.3f}x" if cell["workers"] else "-",
            f"{cell.get('utilization', 0.0):.3f}" if cell["workers"] else "-",
            f"{cell.get('stall_fraction', 0.0):.3f}"
            if cell["workers"] else "-",
        ])
    lines.append(format_table(
        ["workers", "conflict", "kcmd/ms", "speedup", "util", "stall"],
        sweep_rows))
    gate = results["gate"]
    lines.append("")
    lines.append(
        f"gate: equivalence {'ok' if gate['equivalent'] else 'FAILED'}, "
        f"speedup {gate['speedup_at_gate']}x at {gate['gate_workers']} "
        f"workers / {gate['gate_conflict']:.0%} conflict "
        f"(need >= {gate['min_speedup']}x) -> "
        f"{'PASS' if gate['passed'] else 'FAIL'}")
    return "\n".join(lines)
