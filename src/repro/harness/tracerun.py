"""Seeded traced workload runs: the driver behind ``python -m repro trace``.

Runs a fault-free workload (same command mix as the chaos campaign)
against one scheme with a :class:`~repro.obs.tracing.CommandTracer`
attached, and returns the cluster plus the collected spans. Everything
derives from ``(scheme, seed, clients, ops)``, so two identical
invocations produce byte-identical span streams — the property the trace
CLI's determinism check (and its test) relies on.

Tracing itself never perturbs the simulation: spans touch no RNG and
schedule no events, so ``trace=False`` yields the exact same virtual-time
results (the zero-overhead-when-disabled guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.chaos import INITIAL, KEYS, _reset_id_counters, \
    _spawn_workload
from repro.harness.cluster import Cluster, ClusterConfig
from repro.obs import CommandTracer
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.smr import ExecutionModel

#: Virtual-time bound of one traced run (ms); fault-free runs finish far
#: earlier, the bound only catches a wedged deployment.
DEADLINE_MS = 20_000.0


@dataclass
class TraceRun:
    """Outcome of one traced workload run."""

    scheme: str
    seed: int
    completed: int
    expected: int
    finished_at: Optional[float]    # virtual ms; None if the run got stuck
    tracer: Optional[CommandTracer]
    cluster: Cluster
    profiler: object = None

    @property
    def spans(self):
        return self.tracer.spans if self.tracer is not None else []


def run_traced_workload(scheme: str, seed: int = 7, num_clients: int = 3,
                        ops_per_client: int = 10, num_partitions: int = 2,
                        trace: bool = True, profiler=None,
                        slowdown: float = 1.0,
                        durability=None, parallel=None) -> TraceRun:
    """Run the seeded workload against ``scheme``, collecting spans.

    ``trace=False`` runs the identical workload with the null tracer —
    used by the overhead test to show disabled tracing changes nothing.
    ``profiler`` attaches a :class:`~repro.obs.profile.VirtualProfiler`
    (cost attribution rides the same hook sites as tracing). ``slowdown``
    scales the execution cost model — the perf gate's synthetic
    regression knob (1.0 = the real model). ``durability`` (a
    :class:`~repro.store.DurabilityConfig`) arms the write-ahead log —
    the perf gate's WAL-overhead measurement; the default ``None`` runs
    the exact pre-durability deployment. ``parallel`` (a
    :class:`~repro.smr.ExecutionConfig`) arms conflict-aware parallel
    execution; the default ``None`` runs the sequential executors.
    """
    _reset_id_counters()
    tracer = CommandTracer() if trace else None
    assignment = None
    if scheme != "smr":
        assignment = {key: i % num_partitions
                      for i, key in enumerate(KEYS)}
    cluster_seed = SeedStream(seed).child(scheme).stream("trace") \
        .randrange(2 ** 31)
    base = ExecutionModel()
    execution = ExecutionModel(base_ms=base.base_ms * slowdown,
                               per_variable_ms=base.per_variable_ms * slowdown)
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=num_partitions,
        replicas_per_partition=2, seed=cluster_seed,
        retry_policy=RetryPolicy(), initial_assignment=assignment,
        execution=execution, durability=durability, parallel=parallel),
        tracer=tracer, profiler=profiler)
    cluster.preload(dict(INITIAL))
    status, done = _spawn_workload(
        cluster, None, num_clients, ops_per_client,
        workload_tag=f"{seed}/{scheme}/trace")
    end_marker = {"at": None}

    def driver():
        yield done
        end_marker["at"] = cluster.env.now

    cluster.env.process(driver(), name="trace/driver")
    cluster.env.run(until=DEADLINE_MS)
    return TraceRun(
        scheme=scheme, seed=seed, completed=status["completed"],
        expected=num_clients * ops_per_client,
        finished_at=end_marker["at"], tracer=tracer, cluster=cluster,
        profiler=profiler)
