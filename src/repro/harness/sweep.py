"""Parameter sweeps: factorial experiment grids with CSV export.

The figure experiments cover the paper's configurations; this utility is
for *exploring beyond them* — any callable that returns an
:class:`~repro.harness.metrics.ExperimentMetrics` (or a plain dict) can be
swept over a cartesian parameter grid, and the collected rows exported as
CSV or rendered as a table.

Example::

    from repro.harness.sweep import sweep

    def run(num_partitions, edge_cut):
        ...
        return metrics

    result = sweep(run, {"num_partitions": [2, 4, 8],
                         "edge_cut": [0.0, 0.05]})
    result.to_csv("sweep.csv")
    print(result.to_table())
"""

from __future__ import annotations

import csv
import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.harness.report import format_table


@dataclass
class SweepResult:
    """Rows collected from one sweep (one dict per configuration)."""

    param_names: list[str]
    rows: list[dict] = field(default_factory=list)

    def columns(self) -> list[str]:
        """Parameter columns first, then result columns, insertion order."""
        seen: dict[str, None] = {name: None for name in self.param_names}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def to_table(self) -> str:
        columns = self.columns()
        return format_table(columns,
                            [[row.get(col, "") for col in columns]
                             for row in self.rows])

    def to_csv(self, path) -> None:
        columns = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns,
                                    extrasaction="ignore")
            writer.writeheader()
            writer.writerows(self.rows)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def best(self, metric: str, maximize: bool = True) -> dict:
        """The row with the best value of ``metric``."""
        if not self.rows:
            raise ValueError("empty sweep")
        chooser = max if maximize else min
        return chooser(self.rows, key=lambda row: row.get(metric, 0))


def _flatten(value: Any) -> dict:
    """Turn a run result into a flat dict of columns."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field_info in dataclasses.fields(value):
            item = getattr(value, field_info.name)
            if isinstance(item, (int, float, str, bool)):
                out[field_info.name] = item
        return out
    if isinstance(value, Mapping):
        return {key: item for key, item in value.items()
                if isinstance(item, (int, float, str, bool))}
    raise TypeError(f"sweep functions must return a dataclass or mapping, "
                    f"got {type(value).__name__}")


def sweep(run: Callable[..., Any], grid: Mapping[str, Sequence],
          fixed: Optional[Mapping[str, Any]] = None,
          on_row: Optional[Callable[[dict], None]] = None) -> SweepResult:
    """Run ``run(**params)`` for every combination of ``grid`` values.

    ``fixed`` parameters are passed to every run; ``on_row`` (if given) is
    called with each completed row — handy for printing progress during
    long sweeps.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = list(grid)
    result = SweepResult(param_names=names)
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        outcome = run(**params, **dict(fixed or {}))
        row = {**params, **_flatten(outcome)}
        result.rows.append(row)
        if on_row is not None:
            on_row(row)
    return result
