"""Plain-text reporting: tables and series, as the benchmarks print them.

The benchmark harness reproduces the paper's figures as printed rows and
series rather than images — EXPERIMENTS.md pairs each printed series with
the corresponding figure of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sim import TimeSeries


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [[_cell(value) for value in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: TimeSeries, label: str = "",
                  time_unit: str = "ms", precision: int = 1) -> str:
    """One-line-per-sample rendering of a time series."""
    label = label or series.name
    lines = [f"# {label}"]
    for t, v in series:
        lines.append(f"{t:>10.0f} {time_unit}  {v:>12.{precision}f}")
    return "\n".join(lines)


def format_sparkline(series: TimeSeries, width: int = 60) -> str:
    """Unicode sparkline — a quick visual of a series' shape in terminals."""
    blocks = "▁▂▃▄▅▆▇█"
    values = series.values
    if not values:
        return "(empty)"
    if len(values) > width:
        # Downsample by averaging consecutive chunks.
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):max(int(i * chunk) + 1,
                                          int((i + 1) * chunk))])
            / max(1, int((i + 1) * chunk) - int(i * chunk))
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(blocks[min(len(blocks) - 1,
                              int((v - low) / span * (len(blocks) - 1)))]
                   for v in values)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)
