"""Overload campaign: goodput under saturation, with and without QoS.

The experiment behind figure 19 and ``python -m repro qos``. An open-loop
arrival process offers load at a fixed multiple of the cluster's nominal
execution capacity; every arrival is a single-partition command issued
through a pool of client proxies. Offered load is *open loop* — arrivals
do not wait for earlier commands to finish — so beyond saturation the
uncontrolled system accumulates queueing without bound and its *goodput*
(completions within the latency SLO) collapses, while raw completions
stay near capacity (reply caches make resends cheap). With
:class:`~repro.qos.QosConfig` armed, sequencer-side CoDel shedding plus
the clients' AIMD windows and retry budgets bound the queues, so goodput
plateaus at capacity instead.

Everything derives from the campaign seed (arrival jitter, key choice,
client backoff), so two runs with the same arguments produce identical
result dicts — the CLI byte-compares its canonical JSON in CI.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.faults import reset_id_counters
from repro.qos import QosConfig
from repro.resilience import RequestTimeout, RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ExecutionModel

#: Keys preloaded into every cluster, spread over both partitions.
KEYS = tuple(f"k{i}" for i in range(8))

#: Per-command simulated execution cost (ms). With two partitions the
#: nominal cluster capacity is ``2 * 1000 / EXEC_MS`` commands/s.
EXEC_MS = 1.0

#: Latency SLO (ms) defining goodput: a completion slower than this is
#: throughput, not goodput.
SLO_MS = 75.0

#: Offered-load multipliers of nominal capacity, sub- to super-saturation.
MULTIPLIERS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.5)
SMOKE_MULTIPLIERS = (0.5, 2.0)


def _round(value: float, digits: int = 3) -> float:
    if value != value or math.isinf(value):  # NaN / inf -> JSON-safe zero
        return 0.0
    return round(value, digits)


def nominal_capacity_per_s(num_partitions: int = 2) -> float:
    """Commands/s the partitioned executors can sustain, pre-coordination."""
    return num_partitions * 1000.0 / EXEC_MS


def run_overload_point(multiplier: float, qos_on: bool, seed: int = 0,
                       scheme: str = "ssmr",
                       duration_ms: float = 2_000.0,
                       drain_ms: float = 1_000.0,
                       num_proxies: int = 32,
                       slo_ms: float = SLO_MS) -> dict:
    """Run one offered-load point and return its measurements.

    ``multiplier`` scales nominal capacity; ``qos_on`` arms the full QoS
    stack (admission + adaptive batching + AIMD + retry budget) versus
    the uncontrolled baseline (fixed batching, plain infinite retries).
    Arrivals stop at ``duration_ms``; the run then drains for
    ``drain_ms`` so in-flight commands can finish. Goodput counts
    completions within ``slo_ms``, per second of the arrival window.
    """
    reset_id_counters()
    assignment = {key: i % 2 for i, key in enumerate(KEYS)}
    tag = f"{scheme}/{multiplier}/{'on' if qos_on else 'off'}"
    cluster_seed = SeedStream(seed).child("overload").stream(tag) \
        .randrange(2 ** 31)
    retry = RetryPolicy(budget_ratio=0.2 if qos_on else None)
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=retry,
        execution=ExecutionModel(base_ms=EXEC_MS, per_variable_ms=0.0),
        initial_assignment=assignment,
        # Rate-limit each partition's intake just under its executor
        # capacity (1000/EXEC_MS cmd/s); CoDel mops up queueing that the
        # bucket's burst allowance lets through.
        qos=QosConfig(rate_per_s=0.95 * 1000.0 / EXEC_MS)
        if qos_on else None))
    cluster.preload({key: 0 for key in KEYS})

    env = cluster.env
    proxies = [cluster.new_client(f"c{i}") for i in range(num_proxies)]
    offered_per_s = multiplier * nominal_capacity_per_s()
    mean_gap_ms = 1000.0 / offered_per_s
    rng = random.Random(f"overload/{seed}/{tag}")
    stats = {"arrivals": 0, "completed": 0, "good": 0, "gave_up": 0}
    latencies: list[float] = []
    # Latency of traffic served on its first protocol attempt — the
    # latency the admission controller is accountable for. All-completion
    # percentiles mix in the retry churn of the shed excess, which in an
    # open-loop overload grows with run length by construction.
    accepted: list[float] = []

    def one_op(client, key):
        invoked = env.now
        command = Command(op="incr", args={"key": key}, variables=(key,),
                          writes=(key,), client=client.name)
        try:
            # Open-loop pressure still honours the client's AIMD window:
            # the pacing wait counts against the op's SLO latency.
            yield from client.pace()
            reply = yield from client.run_command(command)
        except RequestTimeout:
            stats["gave_up"] += 1
            return
        latency = env.now - invoked
        stats["completed"] += 1
        latencies.append(latency)
        if reply.attempt == 1:
            accepted.append(latency)
        if latency <= slo_ms:
            stats["good"] += 1

    def arrivals():
        index = 0
        while True:
            # Seeded jitter around the mean keeps arrivals aperiodic
            # (mean of 0.5 + U[0,1) is 1.0) without a second knob.
            yield env.timeout(mean_gap_ms * (0.5 + rng.random()))
            if env.now >= duration_ms:
                return
            key = rng.choice(KEYS)
            client = proxies[index % num_proxies]
            env.process(one_op(client, key), name=f"op{index}")
            stats["arrivals"] += 1
            index += 1

    env.process(arrivals(), name="overload/arrivals")
    cluster.run(until=duration_ms + drain_ms)

    seconds = duration_ms / 1000.0
    shed = sum(a.shed for a in cluster.qos_admission.values())
    admitted = sum(a.admitted for a in cluster.qos_admission.values())
    return {
        "multiplier": multiplier,
        "qos": qos_on,
        "offered_per_s": _round(offered_per_s),
        "arrivals": stats["arrivals"],
        "completed": stats["completed"],
        "gave_up": stats["gave_up"],
        "goodput_per_s": _round(stats["good"] / seconds),
        "throughput_per_s": _round(stats["completed"] / seconds),
        "p50_ms": _round(_percentile(latencies, 50)),
        "p99_ms": _round(_percentile(latencies, 99)),
        "accepted": len(accepted),
        "accepted_p99_ms": _round(_percentile(accepted, 99)),
        "timeouts": sum(c.timeouts for c in cluster.clients),
        "resends": sum(c.resends for c in cluster.clients),
        "overload_replies": sum(c.overload_replies
                                for c in cluster.clients),
        "shed": shed,
        "admitted": admitted,
        "aimd_window_min": _round(min(
            (c.congestion.window for c in cluster.clients
             if c.congestion is not None), default=0.0)),
        "retry_budget_denied": sum(
            c.retry_budget.denied for c in cluster.clients
            if c.retry_budget is not None),
    }


def _percentile(samples: list, p: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
    return ordered[rank]


def run_overload_campaign(seed: int = 0, smoke: bool = False,
                          scheme: str = "ssmr",
                          multipliers: Optional[tuple] = None) -> dict:
    """Sweep offered load with QoS off and on; return the result dict.

    The dict is stable under repetition (same seed, same arguments) and
    is what ``python -m repro qos`` serialises as canonical JSON.
    """
    if multipliers is None:
        multipliers = SMOKE_MULTIPLIERS if smoke else MULTIPLIERS
    duration_ms = 800.0 if smoke else 2_000.0
    drain_ms = 600.0 if smoke else 1_000.0
    # The proxy pool must be wide enough that the AIMD min-window pacing
    # floor (window 1 → one send per rtt_ms per proxy) clears the top
    # offered rate, or client-side queueing would cap goodput below the
    # admission controller's plateau.
    num_proxies = 24 if smoke else 32
    points = []
    for qos_on in (False, True):
        for multiplier in multipliers:
            points.append(run_overload_point(
                multiplier, qos_on, seed=seed, scheme=scheme,
                duration_ms=duration_ms, drain_ms=drain_ms,
                num_proxies=num_proxies))
    return {
        "format": "repro-qos/1",
        "scheme": scheme,
        "seed": seed,
        "smoke": smoke,
        "capacity_per_s": _round(nominal_capacity_per_s()),
        "slo_ms": SLO_MS,
        "duration_ms": duration_ms,
        "points": points,
        "summary": _summary(points),
    }


def _summary(points: list) -> dict:
    """Peak vs beyond-saturation goodput, per mode (the fig19 claim)."""
    out = {}
    for qos_on, label in ((False, "qos_off"), (True, "qos_on")):
        mode = [p for p in points if p["qos"] is qos_on]
        peak = max((p["goodput_per_s"] for p in mode), default=0.0)
        tail = [p for p in mode if p["multiplier"] > 1.0]
        tail_min = min((p["goodput_per_s"] for p in tail), default=peak)
        out[label] = {
            "peak_goodput_per_s": _round(peak),
            "tail_min_goodput_per_s": _round(tail_min),
            "tail_ratio": _round(tail_min / peak if peak else 0.0),
            "tail_p99_ms": _round(max(
                (p["p99_ms"] for p in tail), default=0.0)),
            "tail_accepted_p99_ms": _round(max(
                (p["accepted_p99_ms"] for p in tail), default=0.0)),
        }
    return out


def format_overload_report(data: dict) -> str:
    """Human-readable table for stderr / the committed results file."""
    lines = [
        f"overload campaign: scheme={data['scheme']} seed={data['seed']} "
        f"capacity={data['capacity_per_s']:.0f}/s slo={data['slo_ms']:.0f}ms"
        + (" (smoke)" if data["smoke"] else ""),
        f"{'mode':>4} {'xcap':>5} {'offered/s':>9} {'goodput/s':>9} "
        f"{'thru/s':>7} {'p50ms':>7} {'p99ms':>8} {'shed':>6} "
        f"{'resend':>6} {'ovld':>6}",
    ]
    for p in data["points"]:
        mode = "on" if p["qos"] else "off"
        lines.append(
            f"{mode:>4} {p['multiplier']:>5.2f} {p['offered_per_s']:>9.0f} "
            f"{p['goodput_per_s']:>9.1f} {p['throughput_per_s']:>7.1f} "
            f"{p['p50_ms']:>7.2f} {p['p99_ms']:>8.2f} {p['shed']:>6} "
            f"{p['resends']:>6} {p['overload_replies']:>6}")
    for label, s in data["summary"].items():
        lines.append(
            f"{label}: peak {s['peak_goodput_per_s']:.1f}/s, "
            f"beyond-saturation min {s['tail_min_goodput_per_s']:.1f}/s "
            f"(ratio {s['tail_ratio']:.2f}), tail p99 "
            f"{s['tail_p99_ms']:.1f}ms, accepted p99 "
            f"{s['tail_accepted_p99_ms']:.1f}ms")
    return "\n".join(lines)
