"""Dynamic-workload driver (the paper's "adding nodes and repartitioning").

Starts from an *empty* service. Clients continuously create users, follow
each other (mostly within their own affinity group, occasionally across)
and post. The oracle starts with no knowledge: new users are placed
least-loaded (scattering affinity groups across partitions), follows feed
the workload graph via hints, and every ``repartition_interval`` hints the
oracle recomputes the ideal partitioning — after which moves gather each
group and throughput climbs. This is the experiment behind the paper's
"dynamic load" figure.
"""

from __future__ import annotations

import random

from repro.apps.chirper import ChirperClient
from repro.apps.chirper.client import HINT_STRUCTURAL
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.metrics import moves_rate_series, throughput_series
from repro.harness.report import format_sparkline
from repro.smr import ExecutionModel
from repro.apps.chirper import ChirperStateMachine


def run_dynamic_load_experiment(seed: int = 5,
                                duration_ms: float = 12_000.0,
                                num_partitions: int = 4,
                                n_users: int = 300,
                                clients: int = 16,
                                repartition_interval: int = 150,
                                execution: ExecutionModel | None = None,
                                cross_group_fraction: float = 0.1):
    """Run the growing-graph experiment; returns a FigureData."""
    from repro.harness.figures import FigureData  # avoid import cycle

    config = ClusterConfig(scheme="dynastar", num_partitions=num_partitions,
                           seed=seed,
                           repartition_interval=repartition_interval,
                           state_machine_factory=ChirperStateMachine,
                           execution=execution or ExecutionModel())
    cluster = Cluster(config)
    env = cluster.env
    users_per_client = max(2, n_users // clients)

    target_degree = 6
    buildup_ms = duration_ms * 0.35

    def client_loop(index: int):
        rng = random.Random(f"{seed}/dynamic/{index}")
        proxy = cluster.new_client()
        chirper = ChirperClient(proxy, hint_mode=HINT_STRUCTURAL)
        mine: list[int] = []
        degree: dict[int, int] = {}
        post_count = 0
        neighbour_base = ((index + 1) % clients) * 100_000
        while env.now < duration_ms:
            building = env.now < buildup_ms
            need_users = len(mine) < users_per_client
            need_edges = mine and min(degree.values()) < target_degree
            if building and need_users:
                user = index * 100_000 + len(mine)
                reply = yield from chirper.create_user(user)
                if reply.status.value == "ok":
                    mine.append(user)
                    degree[user] = 0
                continue
            if mine and (building or rng.random() < 0.05) and need_edges:
                follower = min(mine, key=lambda u: (degree[u], u))
                if rng.random() < cross_group_fraction:
                    followee = neighbour_base + rng.randrange(
                        users_per_client)
                else:
                    followee = rng.choice(mine)
                if follower != followee:
                    reply = yield from chirper.follow(follower, followee)
                    if reply.status.value == "ok":
                        degree[follower] += 1
                continue
            if not mine:
                yield env.timeout(1.0)  # nothing to post yet; back off
                continue
            poster = rng.choice(mine)
            post_count += 1
            yield from chirper.post(poster, f"dyn {index}/{post_count}")

    for index in range(clients):
        env.process(client_loop(index), name=f"dyn-client-{index}")
    cluster.run(until=duration_ms + 2_000.0)

    bucket = duration_ms / 24
    tput = throughput_series(cluster, bucket, duration_ms)
    moves = moves_rate_series(cluster, bucket, duration_ms)
    oracle = cluster.oracle
    repartitions = oracle.repartitions.total if oracle else 0
    policy = oracle.policy if oracle else None
    lines = [
        f"ops/s   {format_sparkline(tput)} "
        f"first={tput.values[0]:.0f} final={tput.values[-1]:.0f}",
        f"moves/s {format_sparkline(moves)} total={cluster.moves_total()}",
        f"repartitions: {repartitions}; workload graph: "
        f"{getattr(getattr(policy, 'workload', None), 'num_vertices', 0)} vertices, "
        f"{getattr(getattr(policy, 'workload', None), 'num_edges', 0)} edges",
    ]
    return FigureData("fig4", "Dynamic load: growth + on-line repartitioning",
                      "\n".join(lines),
                      {"throughput": tput, "moves": moves,
                       "repartitions": repartitions})
