"""Reusable end-state invariant checks for a quiesced cluster.

Factored out of the chaos campaign so every harness that perturbs a
deployment — chaos scenarios, the elastic reconfiguration runner, tests —
checks the same guarantees:

* exactly-once execution on every live replica (no duplicated command ids);
* replicas of each partition converge on state and execution order;
* retired partitions are fully drained (hold no variables);
* each variable lives in exactly one partition, the oracle replicas agree
  on the location map, and the map matches the actual placement;
* every live epoch-aware component (partition servers and oracle replicas)
  agrees on the configuration epoch — the reconfiguration fence worked.

Callers pass ``dead`` for replicas that are legitimately gone (crashed and
never recovered); those are excluded, everything else must hold.
"""

from __future__ import annotations

from typing import Iterable


def _freeze(store: dict) -> tuple:
    return tuple(sorted(store.items()))


def _live_members(cluster, partition: str, dead: frozenset) -> list[str]:
    return [name for name in cluster.directory.members(partition)
            if name not in dead
            and not cluster.servers[name].node.crashed]


def cluster_invariants(cluster, dead: Iterable[str] = ()) -> list[str]:
    """Check every end-state guarantee; returns violations (empty = ok)."""
    dead = frozenset(dead)
    violations: list[str] = []

    # Exactly-once: no live replica executed a command id twice.
    for name in sorted(cluster.servers):
        if name in dead or cluster.servers[name].node.crashed:
            continue
        executed = cluster.servers[name].executed
        duplicated = len(executed) - len(set(executed))
        if duplicated:
            violations.append(f"{name} executed {duplicated} command(s) "
                              f"more than once")

    # Replica convergence within each live partition.
    for partition in cluster.partitions:
        live = _live_members(cluster, partition, dead)
        stores = {_freeze(cluster.servers[name].store.snapshot())
                  for name in live}
        if len(stores) > 1:
            violations.append(f"{partition} replicas diverge on state")
        orders = {tuple(cluster.servers[name].executed) for name in live}
        if len(orders) > 1:
            violations.append(f"{partition} replicas diverge on "
                              f"execution order")

    # Retired partitions must be drained empty.
    for partition in getattr(cluster, "retired_partitions", ()):
        for name in _live_members(cluster, partition, dead):
            leftover = cluster.servers[name].store.snapshot()
            if leftover:
                violations.append(
                    f"retired partition {partition} still holds "
                    f"{len(leftover)} variable(s) on {name}")

    # Oracle checks: unique placement, replica agreement, map accuracy.
    if cluster.oracles:
        placement: dict = {}
        for partition in cluster.partitions:
            live = _live_members(cluster, partition, dead)
            if not live:
                continue
            for key in cluster.servers[live[0]].store.snapshot():
                if key in placement:
                    violations.append(f"{key} present in both "
                                      f"{placement[key]} and {partition}")
                placement[key] = partition
        maps = {_freeze(oracle.location) for oracle in cluster.oracles}
        if len(maps) > 1:
            violations.append("oracle replicas diverge on the location map")
        oracle_map = cluster.oracles[0].location
        for key, partition in sorted(placement.items(), key=str):
            if oracle_map.get(key) != partition:
                violations.append(
                    f"oracle maps {key} to {oracle_map.get(key)} "
                    f"but it lives in {partition}")
        for key in sorted(set(oracle_map) - set(placement), key=str):
            violations.append(f"oracle maps {key} to {oracle_map[key]} "
                              f"but no partition stores it")

    # Epoch agreement: the reconfiguration fence reached everyone.
    epochs: dict[str, int] = {}
    for oracle in cluster.oracles:
        if not oracle.node.crashed:
            epochs[oracle.node.name] = oracle.epoch
    known = (tuple(cluster.partitions)
             + tuple(getattr(cluster, "retired_partitions", ())))
    for partition in known:
        for name in _live_members(cluster, partition, dead):
            epoch = getattr(cluster.servers[name], "epoch", None)
            if epoch is not None:
                epochs[name] = epoch
    if len(set(epochs.values())) > 1:
        detail = ", ".join(f"{name}={epoch}"
                           for name, epoch in sorted(epochs.items()))
        violations.append(f"configuration epochs diverge: {detail}")

    return violations
