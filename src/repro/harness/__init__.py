"""Experiment harness: build clusters, drive workloads, report figures.

The harness assembles full deployments of any of the four schemes (classic
SMR, static S-SMR, DS-SMR, DS-SMR with the graph-partitioned oracle),
drives closed-loop Chirper clients against them, and aggregates the metrics
behind every figure of the paper: throughput and latency, move counts over
time, retry/consult rates, and oracle CPU load.
"""

from repro.harness.chaos import (
    CampaignResult,
    ChaosScenario,
    ScenarioResult,
    generate_scenario,
    run_campaign,
    run_scenario,
)
from repro.harness.cluster import Cluster, ClusterConfig, build_cluster
from repro.harness.elastic import (
    ElasticResult,
    run_elastic_scenario,
    run_scaleout_timeline,
)
from repro.harness.invariants import cluster_invariants
from repro.harness.metrics import ExperimentMetrics
from repro.harness.experiment import (
    ChirperDeployment,
    ExperimentResult,
    run_chirper_experiment,
)
from repro.harness.report import format_series, format_table
from repro.harness.sweep import SweepResult, sweep
from repro.harness.tracerun import TraceRun, run_traced_workload

__all__ = [
    "CampaignResult",
    "ChaosScenario",
    "ChirperDeployment",
    "Cluster",
    "ClusterConfig",
    "ElasticResult",
    "ExperimentMetrics",
    "ExperimentResult",
    "ScenarioResult",
    "SweepResult",
    "TraceRun",
    "build_cluster",
    "cluster_invariants",
    "format_series",
    "format_table",
    "generate_scenario",
    "run_campaign",
    "run_chirper_experiment",
    "run_elastic_scenario",
    "run_scaleout_timeline",
    "run_scenario",
    "run_traced_workload",
    "sweep",
]
