"""Elastic reconfiguration scenarios: crash-recovery and live scale-out.

Two seeded, fully deterministic drivers on top of the chaos machinery:

* :func:`run_elastic_scenario` — the invariant-checked smoke: a DS-SMR
  cluster under light chaos runs a linearizability workload while a
  partitioned replica crash-restarts (checkpoint-install recovery,
  :mod:`repro.reconfig.recovery`) and a brand-new partition joins
  mid-run (:meth:`~repro.harness.cluster.Cluster.grow`). After healing
  and a cooldown, every shared invariant must hold — linearizability,
  exactly-once, convergence, placement, oracle accuracy and epoch
  agreement — and the emitted metrics JSON is byte-identical across
  same-seed runs (the CI smoke compares two runs with ``cmp``).
* :func:`run_scaleout_timeline` — the measurement behind figure E16:
  closed-loop clients saturate the deployment while a partition joins;
  the per-bucket completion timeline shows the throughput dip during
  bulk migration and the recovery past the old ceiling.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.checkers import History, KvSequentialSpec, check_linearizable
from repro.harness.chaos import _reset_id_counters
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.invariants import cluster_invariants
from repro.harness.report import format_table
from repro.net import FailureInjector
from repro.obs import CommandTracer
from repro.resilience import RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ExecutionModel, ReplyStatus

#: Preloaded keys (spread over the two initial partitions).
ELASTIC_KEYS = tuple(f"k{i:02d}" for i in range(24))

DEADLINE_MS = 12_000.0
SETTLE_MS = 400.0
BUCKET_MS = 40.0


def _random_access(rng: random.Random, keys) -> Command:
    kind = rng.random()
    if kind < 0.30:
        key = rng.choice(keys)
        return Command(op="get", args={"key": key}, variables=(key,))
    if kind < 0.70:
        key = rng.choice(keys)
        return Command(op="incr", args={"key": key}, variables=(key,),
                       writes=(key,))
    if kind < 0.88:
        a, b = rng.sample(keys, 2)
        return Command(op="swap", args={"a": a, "b": b}, variables=(a, b),
                       writes=(a, b))
    chosen = rng.sample(keys, 2)
    return Command(op="sum", args={"keys": chosen},
                   variables=tuple(chosen))


def _timeline(completions, end: float, bucket_ms: float = BUCKET_MS):
    """Completed-ops count per ``bucket_ms`` bucket of virtual time."""
    buckets = [0] * (int(end // bucket_ms) + 1)
    for at in completions:
        index = int(at // bucket_ms)
        if index < len(buckets):
            buckets[index] += 1
    return buckets


@dataclass
class ElasticResult:
    """Outcome of one elastic reconfiguration scenario."""

    seed: int
    scheme: str
    ops_completed: int
    ops_expected: int
    finished_at: float | None
    epoch: int
    newcomer_keys: int
    recovery_installed: bool
    violations: tuple[str, ...]
    metrics: dict = field(default_factory=dict)
    timeline: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def metrics_json(self) -> str:
        """Canonical JSON of the scrape — byte-stable across same-seed
        runs (the determinism artifact the CI smoke compares)."""
        return json.dumps({"seed": self.seed, "scheme": self.scheme,
                           "epoch": self.epoch,
                           "newcomer_keys": self.newcomer_keys,
                           "ops": self.ops_completed,
                           "timeline": self.timeline,
                           "metrics": self.metrics},
                          sort_keys=True, separators=(",", ":"))

    def report(self) -> str:
        rows = [["ops", f"{self.ops_completed}/{self.ops_expected}"],
                ["finished-ms", (f"{self.finished_at:.0f}"
                                 if self.finished_at is not None
                                 else "stuck")],
                ["epoch", self.epoch],
                ["newcomer-keys", self.newcomer_keys],
                ["recovery", "installed" if self.recovery_installed
                 else "MISSING"],
                ["keys-migrated",
                 self.metrics.get("reconfig.keys_migrated", 0)],
                ["checkpoints",
                 self.metrics.get("reconfig.checkpoints", 0)],
                ["verdict", "ok" if self.ok else "FAIL"]]
        lines = [f"elastic scenario: seed={self.seed} scheme={self.scheme}",
                 "", format_table(["metric", "value"], rows)]
        if self.violations:
            lines.append("")
            lines.extend(f"  - {violation}"
                         for violation in self.violations)
        return "\n".join(lines)


def run_elastic_scenario(seed: int = 0, scheme: str = "dssmr",
                         num_clients: int = 4, ops_per_client: int = 36,
                         chaos: bool = True,
                         crash_at: float = 60.0,
                         recover_after: float = 80.0,
                         join_at: float = 220.0,
                         fault_end: float = 340.0) -> ElasticResult:
    """One full elastic scenario: crash-restart + live join under chaos."""
    _reset_id_counters()
    tracer = CommandTracer()
    assignment = {key: i % 2 for i, key in enumerate(ELASTIC_KEYS)}
    cluster_seed = SeedStream(seed).child("elastic").stream(scheme) \
        .randrange(2**31)
    cluster = Cluster(ClusterConfig(
        scheme=scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        initial_assignment=assignment), tracer=tracer)
    initial = {key: 0 for key in ELASTIC_KEYS}
    cluster.preload(dict(initial))
    env = cluster.env

    injector = FailureInjector(env, cluster.network,
                               cluster.seeds.child("elastic-faults"))
    if chaos:
        injector.drop_fraction(0.01)
        injector.delay_spikes(0.08, 8.0)
        injector.duplicate_fraction(0.05)
    env.schedule_callback(fault_end, injector.heal_all)

    victim = "p0s1"      # follower; the sequencer is a fixed point

    def do_crash() -> None:
        cluster.servers[victim].crash()

    def do_restart() -> None:
        cluster.recover_server(victim)

    injector.crash_restart_at(crash_at, victim, recover_after,
                              crash=do_crash, restart=do_restart)

    join_done = {"ack": None}

    def join_driver():
        yield env.timeout(join_at)
        join_done["ack"] = yield from cluster.grow("p2")

    env.process(join_driver(), name="elastic/join")

    # -- workload (same shape as the chaos campaign, paced so the
    # crash/recovery/join land mid-run) ------------------------------------
    history = History()
    status = {"completed": 0, "finished": 0}
    completions: list[float] = []
    done = env.event()
    clients = [cluster.new_client(f"c{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random.Random(f"elastic/{seed}/{index}")
        for _ in range(ops_per_client):
            command = _random_access(rng, ELASTIC_KEYS)
            invoked = env.now
            reply = yield from client.run_command(command)
            result = reply.value if reply.status is not ReplyStatus.NOK \
                else str(reply.value)
            history.record(client.name, command.op, command.args,
                           result, invoked, env.now)
            status["completed"] += 1
            completions.append(env.now)
            yield env.timeout(rng.uniform(3.0, 9.0))
        status["finished"] += 1
        if status["finished"] == num_clients:
            done.succeed(None)

    for index, client in enumerate(clients):
        env.process(loop(client, index), name=f"elastic/{client.name}")

    end_marker = {"at": None}

    def driver():
        yield done
        if env.now < fault_end + 10.0:
            yield env.timeout(fault_end + 10.0 - env.now)
        while join_done["ack"] is None:   # never under default timings
            yield env.timeout(20.0)
        # Cooldown: reads on a fresh client surface trailing log gaps.
        cooldown = cluster.new_client("cool")
        for key in ELASTIC_KEYS:
            yield from cooldown.run_command(
                Command(op="get", args={"key": key}, variables=(key,)))
        yield env.timeout(SETTLE_MS)
        end_marker["at"] = env.now

    env.process(driver(), name="elastic/driver")
    env.run(until=DEADLINE_MS)

    # -- invariants --------------------------------------------------------
    violations: list[str] = []
    expected = num_clients * ops_per_client
    if status["completed"] != expected or end_marker["at"] is None:
        violations.append(f"only {status['completed']}/{expected} ops "
                          f"completed before the deadline")
    elif not check_linearizable(history, KvSequentialSpec(dict(initial))):
        violations.append("history is not linearizable")
    violations.extend(cluster_invariants(cluster))

    newcomer_keys = 0
    if "p2" in cluster.partitions:
        newcomer_keys = len(
            cluster.servers["p2s0"].store.snapshot())
        if newcomer_keys == 0:
            violations.append("join rebalanced no keys onto p2")
    else:
        violations.append("partition p2 never joined")
    recovered = cluster.servers[victim]
    recovery_installed = bool(getattr(recovered, "recovery", None)
                              and recovered.recovery.installed)
    if not recovery_installed:
        violations.append(f"{victim} never finished recovery")

    metrics = cluster.registry.scrape()
    wanted = [name for name in metrics
              if name.startswith(("reconfig.", "clients.", "oracle."))]
    end = end_marker["at"] or env.now
    return ElasticResult(
        seed=seed, scheme=scheme,
        ops_completed=status["completed"], ops_expected=expected,
        finished_at=end_marker["at"],
        epoch=cluster.oracles[0].epoch if cluster.oracles else 0,
        newcomer_keys=newcomer_keys,
        recovery_installed=recovery_installed,
        violations=tuple(violations),
        metrics={name: metrics[name] for name in sorted(wanted)},
        timeline=_timeline(completions, end))


def run_scaleout_timeline(seed: int = 7, elastic: bool = True,
                          duration_ms: float = 1_600.0,
                          join_at: float = 600.0,
                          num_clients: int = 12) -> dict:
    """Throughput timeline of a (possibly) scaling deployment (E16).

    Closed-loop clients saturate a 2-partition DS-SMR cluster; with
    ``elastic=True`` a third partition joins at ``join_at``. Returns the
    bucketed completion timeline plus before/during/after throughput.
    """
    _reset_id_counters()
    keys = tuple(f"k{i:02d}" for i in range(48))
    assignment = {key: i % 2 for i, key in enumerate(keys)}
    cluster_seed = SeedStream(seed).child("fig16") \
        .stream("elastic" if elastic else "static").randrange(2**31)
    cluster = Cluster(ClusterConfig(
        scheme="dssmr", num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed, retry_policy=RetryPolicy(),
        execution=ExecutionModel(base_ms=0.4, per_variable_ms=0.02),
        initial_assignment=assignment))
    cluster.preload({key: 0 for key in keys})
    env = cluster.env

    completions: list[float] = []
    clients = [cluster.new_client(f"c{i}") for i in range(num_clients)]

    def loop(client, index):
        rng = random.Random(f"fig16/{seed}/{index}")
        while env.now < duration_ms:
            command = _random_access(rng, keys)
            yield from client.run_command(command)
            completions.append(env.now)

    for index, client in enumerate(clients):
        env.process(loop(client, index), name=f"fig16/{client.name}")

    if elastic:
        def join_driver():
            yield env.timeout(join_at)
            yield from cluster.grow("p2")

        env.process(join_driver(), name="fig16/join")

    env.run(until=duration_ms + SETTLE_MS)

    def rate(start: float, end: float) -> float:
        span = (end - start) / 1000.0
        count = sum(1 for at in completions if start <= at < end)
        return count / span if span > 0 else 0.0

    dip_window = 160.0
    timeline = _timeline(completions, duration_ms)
    lo = int(join_at // BUCKET_MS)
    hi = min(int((join_at + dip_window) // BUCKET_MS), len(timeline))
    dip = (min(timeline[lo:hi]) / (BUCKET_MS / 1000.0)
           if lo < hi else 0.0)
    return {
        "elastic": elastic,
        "total_ops": len(completions),
        "timeline": timeline,
        "before": rate(200.0, join_at),
        "during": rate(join_at, join_at + dip_window),
        "dip": dip,
        "after": rate(duration_ms - 400.0, duration_ms),
        "keys_migrated": (cluster.reconfig.keys_migrated
                          if cluster.reconfig else 0),
        "epoch": cluster.oracles[0].epoch if cluster.oracles else 0,
    }
