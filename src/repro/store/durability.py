"""Wiring durable storage onto live servers and oracles.

``attach_durability(owner, farm)`` gives ``owner`` (an ``SmrReplica``,
``SsmrServer``/``DssmrServer`` or ``OracleReplica``) a write-ahead log
on its own disk in ``farm`` and hooks it into the ordered log: every
applied position is appended before execution, and the executor yields
a ``sync_barrier`` before executing (and therefore before replying), so
acknowledged commands are always durable somewhere.

Owners that carry a ``PartitionCheckpointer`` (the ssmr family) also
get a :class:`~repro.store.checkpoints.DurableCheckpointStore`: every
captured checkpoint is persisted and, once fsynced, truncates the WAL
segments behind it. A decide-callback counter triggers a periodic
capture every ``checkpoint_every`` applied entries so replay stays
bounded. Checkpoint-less owners (smr replicas, oracles) replay their
whole WAL from position zero on cold start.
"""

from __future__ import annotations

from repro.store.checkpoints import DurableCheckpointStore
from repro.store.disk import DiskFarm
from repro.store.wal import WriteAheadLog


def attach_durability(owner, farm: DiskFarm) -> None:
    """Attach a WAL (and checkpoint store, if applicable) to ``owner``."""
    config = farm.config
    disk = farm.disk(owner.node.name)
    wal = WriteAheadLog(owner.node.env, disk, farm.stats,
                        group_commit_ms=config.group_commit_ms,
                        segment_records=config.segment_records)
    owner.wal = wal
    owner.log.attach_wal(wal)
    checkpointer = getattr(owner, "checkpointer", None)
    if checkpointer is None:
        owner.ckpt_store = None
        return
    store = DurableCheckpointStore(owner.node.env, disk, farm.stats,
                                   keep=config.keep_checkpoints, wal=wal)
    checkpointer.store = store
    owner.ckpt_store = store

    applied = {"count": 0}

    def periodic_capture(seq, entry) -> None:
        applied["count"] += 1
        if applied["count"] % config.checkpoint_every == 0:
            checkpointer.capture(reason="wal-periodic")

    owner.log.on_decide(periodic_capture)


def detach_durability(owner) -> None:
    """Stop the owner's durable machinery (its process is dead)."""
    wal = getattr(owner, "wal", None)
    if wal is not None:
        wal.close()
    store = getattr(owner, "ckpt_store", None)
    if store is not None:
        store.close()
