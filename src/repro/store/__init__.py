"""Durable storage: simulated disks, write-ahead log, checkpoints.

The :mod:`repro.store` subsystem gives every node a crash-faithful
local disk (:class:`SimulatedDisk` behind a :class:`DiskFarm`), a
segmented CRC-checksummed write-ahead log (:class:`WriteAheadLog`) and
a durable checkpoint store (:class:`DurableCheckpointStore`). Ordered
deliveries are appended to the WAL before execution and fsynced by a
group commit; reconfig checkpoints truncate WAL segments behind them;
and cold start replays local state through a protocol-aware ladder
(checkpoint -> WAL replay -> peer backfill -> peer state transfer)
that distinguishes a torn tail ("never written") from corruption.
"""

from repro.store.disk import DiskFarm, DurabilityConfig, SimulatedDisk, StoreStats
from repro.store.wal import (WalReplay, WriteAheadLog, encode_record,
                             replay_wal, wipe_wal)
from repro.store.checkpoints import (DurableCheckpointStore,
                                     load_latest_checkpoint)
from repro.store.durability import attach_durability

__all__ = [
    "DiskFarm",
    "DurabilityConfig",
    "DurableCheckpointStore",
    "SimulatedDisk",
    "StoreStats",
    "WalReplay",
    "WriteAheadLog",
    "attach_durability",
    "encode_record",
    "load_latest_checkpoint",
    "replay_wal",
    "wipe_wal",
]
