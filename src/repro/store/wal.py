"""Segmented, CRC-checksummed write-ahead log with group commit.

Record framing is ``<u32 payload_len><u32 crc32><u64 seq><payload>``
where the CRC covers ``seq`` *and* the pickled payload, so a flipped
byte anywhere in a record — length, checksum, sequence number or body —
is detected. Records append into segment files named
``wal.<start_seq>``; a new segment opens every ``segment_records``
appends so checkpoints can truncate whole durable segments behind them.

Durability is group-committed: ``append`` buffers the record on the
simulated disk and schedules one flush ``group_commit_ms`` later; the
flush fsyncs every dirty segment and fires the ``sync_barrier`` events
of all appends it made durable. Executors yield a barrier before
executing (and therefore before replying), so an acknowledged command
is always fsynced somewhere.

Replay implements the torn-vs-corrupt distinction the recovery ladder
depends on: a *truncated* record at the tail of the **last** segment is
a torn write — bytes that never finished hitting the platter — and ends
the log cleanly, while a CRC mismatch anywhere, or truncation in a
non-final segment, is *corruption*: the log cannot be trusted past that
point and recovery must fall back to a peer for the suffix instead of
silently treating it as end-of-log.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.core import Environment, Event
from repro.store.disk import SimulatedDisk, StoreStats

#: ``<payload length, crc32(seq || payload), seq>``
RECORD_HEADER = struct.Struct("<IIQ")

#: Default file-name prefix for WAL segments.
WAL_PREFIX = "wal"


def _record_crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(seq.to_bytes(8, "little") + payload) & 0xFFFFFFFF


def encode_record(seq: int, entry: dict) -> bytes:
    """One framed WAL record for ``entry`` at log position ``seq``."""
    payload = pickle.dumps(entry, protocol=4)
    return RECORD_HEADER.pack(len(payload), _record_crc(seq, payload),
                              seq) + payload


@dataclass
class WalReplay:
    """Outcome of scanning a disk's WAL segments after a crash."""

    #: Valid records in append order.
    entries: List[Tuple[int, dict]] = field(default_factory=list)
    #: ``clean`` | ``torn`` (truncated tail record — never written) |
    #: ``corrupt`` (CRC failure or mid-log truncation — data lost).
    status: str = "clean"
    corrupt_records: int = 0
    torn_tail: bool = False

    @property
    def max_seq(self) -> Optional[int]:
        return max((seq for seq, _ in self.entries), default=None)


def replay_wal(disk: SimulatedDisk, prefix: str = WAL_PREFIX,
               stats: Optional[StoreStats] = None) -> WalReplay:
    """Scan durable segments, CRC-checking every record.

    Stops at the first anomaly. The anomaly's position decides its
    meaning: a short read at the very tail of the final segment is a
    torn write (clean end of log); anything else is corruption.
    """
    replay = WalReplay()
    files = disk.files(prefix + ".")
    for index, path in enumerate(files):
        data = disk.read(path)
        last_file = index == len(files) - 1
        offset = 0
        anomaly = None
        while offset < len(data):
            if len(data) - offset < RECORD_HEADER.size:
                anomaly = "short"
                break
            length, crc, seq = RECORD_HEADER.unpack_from(data, offset)
            body_start = offset + RECORD_HEADER.size
            if len(data) - body_start < length:
                anomaly = "short"
                break
            payload = bytes(data[body_start:body_start + length])
            if _record_crc(seq, payload) != crc:
                anomaly = "crc"
                break
            try:
                entry = pickle.loads(payload)
            except Exception:
                anomaly = "crc"
                break
            replay.entries.append((seq, entry))
            offset = body_start + length
        if anomaly == "short" and last_file:
            replay.torn_tail = True
            replay.status = "torn"
            break
        if anomaly is not None:
            replay.corrupt_records += 1
            replay.status = "corrupt"
            break
    if stats is not None:
        stats.records_replayed += len(replay.entries)
        stats.corrupt_records += replay.corrupt_records
        stats.torn_tails += 1 if replay.torn_tail else 0
    return replay


def wipe_wal(disk: SimulatedDisk, prefix: str = WAL_PREFIX) -> None:
    """Delete every WAL segment (cold start compacts by re-appending)."""
    for path in list(disk.files(prefix + ".")):
        disk.delete(path)
    # Pending bytes of an old incarnation must not resurrect either.
    for path in [p for p in list(disk._pending) if p.startswith(prefix + ".")]:
        disk.delete(path)


class WriteAheadLog:
    """Group-committed segmented WAL on one simulated disk."""

    def __init__(self, env: Environment, disk: SimulatedDisk,
                 stats: StoreStats, group_commit_ms: float = 1.0,
                 segment_records: int = 32, prefix: str = WAL_PREFIX):
        self.env = env
        self.disk = disk
        self.stats = stats
        self.group_commit_ms = group_commit_ms
        self.segment_records = segment_records
        self.prefix = prefix
        self.closed = False
        self._appended_seq: Optional[int] = None
        self._durable_seq: Optional[int] = None
        self._segment: Optional[str] = None
        self._segment_count = 0
        self._dirty: Dict[str, bool] = {}
        self._barriers: List[Tuple[int, Event]] = []
        self._flush_scheduled = False

    # -- append / barrier ----------------------------------------------------

    def append(self, seq: int, entry: dict) -> bool:
        """Buffer one record; idempotent for already-appended positions."""
        if self.closed:
            return False
        if self._appended_seq is not None and seq <= self._appended_seq:
            self.stats.skipped_appends += 1
            return False
        if self._segment is None:
            self._segment = f"{self.prefix}.{seq:010d}"
            self._segment_count = 0
        self.disk.append(self._segment, encode_record(seq, entry))
        self._dirty[self._segment] = True
        self._appended_seq = seq
        self._segment_count += 1
        if self._segment_count >= self.segment_records:
            self._segment = None
        self._schedule_flush()
        return True

    def sync_barrier(self) -> Event:
        """An event that fires once everything appended so far is durable."""
        event = self.env.event()
        if self._appended_seq is None or (
                self._durable_seq is not None
                and self._appended_seq <= self._durable_seq):
            event.succeed(None)
            return event
        self._barriers.append((self._appended_seq, event))
        self._schedule_flush()
        return event

    @property
    def durable_seq(self) -> Optional[int]:
        return self._durable_seq

    # -- group commit --------------------------------------------------------

    def _schedule_flush(self) -> None:
        if self._flush_scheduled or self.closed:
            return
        self._flush_scheduled = True
        self.env.schedule_callback(
            self.group_commit_ms,
            lambda: self.env.process(
                self._flush(), name=f"wal/{self.disk.name}/flush"))

    def _flush(self):
        self._flush_scheduled = False
        if self.closed:
            return
        target = self._appended_seq
        dirty = list(self._dirty)
        self._dirty = {}
        for path in dirty:
            yield from self.disk.fsync(path)
            if self.closed:
                return
        if target is not None:
            self._durable_seq = (target if self._durable_seq is None
                                 else max(self._durable_seq, target))
        self.stats.group_commits += 1
        still_waiting = []
        for seq, event in self._barriers:
            if self._durable_seq is not None and seq <= self._durable_seq:
                event.succeed(None)
            else:
                still_waiting.append((seq, event))
        self._barriers = still_waiting
        if self._dirty or self._barriers:
            self._schedule_flush()

    # -- maintenance ---------------------------------------------------------

    def truncate_below(self, position: int) -> int:
        """Drop durable segments wholly below ``position`` (checkpointed)."""
        files = self.disk.files(self.prefix + ".")
        starts = [int(path.rsplit(".", 1)[1]) for path in files]
        dropped = 0
        for index, path in enumerate(files):
            next_start = (starts[index + 1] if index + 1 < len(starts)
                          else None)
            if (next_start is not None and next_start <= position
                    and path != self._segment):
                self.disk.delete(path)
                dropped += 1
        self.stats.segments_truncated += dropped
        return dropped

    def close(self) -> None:
        """Stop flushing; pending barriers never fire (owner is dead)."""
        self.closed = True
        self._barriers = []
        self._dirty = {}
