"""Durable, epoch-tagged checkpoint store.

``save`` is callable from the synchronous capture path: it buffers one
CRC-framed record on the disk immediately and spawns a background
process to fsync it. Only after the fsync completes does the store
prune old checkpoint files and truncate WAL segments behind the new
checkpoint — a crash mid-save therefore always leaves the previous
checkpoint (and the WAL suffix it needs) intact.

``load_latest_checkpoint`` walks the durable checkpoint files newest
first and CRC-verifies each; a bit-rotted checkpoint is skipped (and
counted) in favour of the next older generation, which is why the
store keeps ``keep_checkpoints`` of them.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Optional, Tuple

from repro.sim.core import Environment
from repro.store.disk import SimulatedDisk, StoreStats
from repro.store.wal import WriteAheadLog

#: ``<payload length, crc32(payload)>``
CKPT_HEADER = struct.Struct("<II")

#: Default file-name prefix for checkpoint files.
CKPT_PREFIX = "ckpt"


def load_latest_checkpoint(disk: SimulatedDisk,
                           stats: Optional[StoreStats] = None,
                           prefix: str = CKPT_PREFIX
                           ) -> Tuple[Optional[object], int]:
    """Newest durable checkpoint that passes its CRC, plus skip count."""
    skipped = 0
    for path in reversed(disk.files(prefix + ".")):
        data = disk.read(path)
        try:
            if len(data) < CKPT_HEADER.size:
                raise ValueError("short header")
            length, crc = CKPT_HEADER.unpack_from(data, 0)
            payload = bytes(data[CKPT_HEADER.size:CKPT_HEADER.size + length])
            if len(payload) < length:
                raise ValueError("short payload")
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise ValueError("crc mismatch")
            checkpoint = pickle.loads(payload)
        except Exception:
            skipped += 1
            if stats is not None:
                stats.checkpoint_corrupt += 1
            continue
        return checkpoint, skipped
    return None, skipped


class DurableCheckpointStore:
    """Persists ``PartitionCheckpoint``s and truncates the WAL behind them."""

    def __init__(self, env: Environment, disk: SimulatedDisk,
                 stats: StoreStats, keep: int = 2,
                 prefix: str = CKPT_PREFIX,
                 wal: Optional[WriteAheadLog] = None):
        self.env = env
        self.disk = disk
        self.stats = stats
        self.keep = keep
        self.prefix = prefix
        self.wal = wal
        self.closed = False

    def save(self, checkpoint) -> None:
        """Buffer the checkpoint now, fsync + prune + truncate async."""
        if self.closed:
            return
        path = (f"{self.prefix}.{checkpoint.epoch:06d}"
                f".{checkpoint.applied_count:010d}")
        if self.disk.exists(path):
            return
        payload = pickle.dumps(checkpoint, protocol=4)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self.disk.append(path, CKPT_HEADER.pack(len(payload), crc) + payload)
        self.env.process(
            self._persist(path, checkpoint.applied_count),
            name=f"ckpt/{self.disk.name}/{checkpoint.applied_count}")

    def _persist(self, path: str, position: int):
        yield from self.disk.fsync(path)
        if self.closed:
            return
        self.stats.checkpoints_saved += 1
        files = self.disk.files(self.prefix + ".")
        while len(files) > self.keep:
            self.disk.delete(files.pop(0))
            self.stats.checkpoints_pruned += 1
        if self.wal is not None:
            self.wal.truncate_below(position)

    def load_latest(self) -> Tuple[Optional[object], int]:
        return load_latest_checkpoint(self.disk, self.stats, self.prefix)

    def close(self) -> None:
        self.closed = True
