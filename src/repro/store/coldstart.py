"""Crash-consistent cold start: the protocol-aware recovery ladder.

A durable deployment (:class:`~repro.harness.cluster.ClusterConfig` with
``durability`` set) can bring a crashed replica back **from its own
disk**, without any live peer — the capability peer-transfer recovery
(:mod:`repro.smr.recovery`, :mod:`repro.reconfig.recovery`) cannot
provide. The ladder, per member:

1. **Read the local images.** The member's disk first suffers a
   power-fail (un-fsynced page-cache bytes are dropped or torn — cold
   start models a machine restart, the conservative interpretation of
   any crash), then the newest CRC-valid durable checkpoint is loaded
   and the WAL segments are scanned. A short read at the tail of the
   *last* segment is a torn write — "never happened", clean end of
   history; a CRC mismatch or mid-log truncation is *corruption* and
   ends the usable prefix there (never silently skipped).
2. **Gap check.** The surviving entries must continue the checkpoint's
   apply position without holes. Replayed history below the position is
   already covered by the checkpoint and is ignored.
3. **Local replay (rung 1).** Checkpoint installed atomically
   (:func:`~repro.reconfig.recovery.install_checkpoint`), the old WAL
   files wiped, a fresh WAL attached, and the surviving suffix fed back
   through the ordered log — each entry re-appends to the fresh WAL
   (replay *is* compaction) and re-executes through the normal decide →
   deliver → execute pipeline. Replay is deterministic because the
   atomic multicast's timestamp exchange itself rides the ordered log.
4. **Peer fallback (rung 2).** A gapped/corrupted prefix on a
   partitioned scheme falls back to a full peer state transfer
   (:class:`~repro.reconfig.recovery.PartitionRecovery`, which itself
   walks fallback peers and turns terminal when all are gone). Classic
   SMR falls back to snapshot recovery. ``peer_fallbacks`` counts these.
5. **Unrecoverable suffix (rung 3).** With a gap and *no* live peer,
   the contiguous prefix is installed, the loss is flight-recorded, and
   the lost suffix is left to client resends. Because executors gate on
   the WAL's ``sync_barrier`` before executing, no reply was ever sent
   for a lost entry — losing it is externally unobservable.

A restarting *sequencer* additionally reconciles its next sequence
number and sequenced-uid set against the replayed history and any live
member's decided log (the standard sequencer sync round, collapsed to
one virtual instant) so it can never hand out a sequence number twice.

Whole-group power loss (:meth:`Cluster.power_fail` /
:meth:`Cluster.power_restore`) restores every member of a partition
from the **union** of the members' surviving WALs — group commit means
different members fsynced to different depths, and any member's durable
record of a position is authoritative for all.
"""

from __future__ import annotations

from repro.reconfig.checkpoint import PartitionCheckpointer
from repro.reconfig.recovery import PartitionRecovery, install_checkpoint
from repro.reconfig.transfer import CheckpointHost
from repro.store.checkpoints import load_latest_checkpoint
from repro.store.durability import attach_durability, detach_durability
from repro.store.wal import replay_wal, wipe_wal


def _rebuild_server(cluster, crashed):
    """A fresh, gated server of the same class under the same name."""
    from repro.smr import SmrReplica

    name = crashed.node.name
    network = crashed.node.network
    network.recover(name)
    if cluster.config.scheme == "smr":
        replacement = SmrReplica(
            crashed.env, network, crashed.amcast.directory, crashed.group,
            name, crashed.state_machine, execution=crashed.execution,
            log_factory=type(crashed.log),
            dedup=getattr(crashed.replies, "enabled", True),
            start_gate=crashed.env.event(), tracer=crashed.tracer)
    else:
        replacement = type(crashed)(
            crashed.env, network, crashed.directory, crashed.partition,
            name, crashed.state_machine, execution=crashed.execution,
            log_factory=type(crashed.log),
            speaker_only=crashed.amcast.speaker_only,
            dedup=getattr(crashed.replies, "enabled", True),
            start_gate=crashed.env.event(), tracer=crashed.tracer)
        PartitionCheckpointer(replacement)
        CheckpointHost(replacement)
    if cluster.config.parallel is not None:
        from repro.smr.parallel import ParallelExecutionModel
        replacement.attach_parallel(
            ParallelExecutionModel(crashed.env, cluster.config.parallel))
    replacement.log.suspend_backfill()
    return replacement


def _read_images(farm, name):
    """Power-fail the member's disk, then read its durable images."""
    disk = farm.disk(name)
    disk.power_fail()
    checkpoint, _ = load_latest_checkpoint(disk, farm.stats)
    replay = replay_wal(disk, stats=farm.stats)
    return disk, checkpoint, replay


def _contiguous_feed(entries, position):
    """(feed, lost): longest gapless run from ``position``, and the
    count of surviving entries stranded behind a gap."""
    suffix = sorted((seq, entry) for seq, entry in entries.items()
                    if seq >= position)
    feed = []
    for index, (seq, entry) in enumerate(suffix):
        if seq != position + index:
            break
        feed.append((seq, entry))
    return feed, len(suffix) - len(feed)


def _live_members(cluster, group, exclude):
    return [m for m in cluster.directory.members(group)
            if m != exclude
            and m in cluster.servers
            and not cluster.servers[m].node.crashed]


def _reconcile_sequencer(cluster, replacement, feed, extra_uids=()):
    """Sequencer sync round: never reuse a handed-out sequence number.

    The replayed WAL bounds what this member durably knows; live
    members' decided logs bound what the group may have seen beyond
    that (group commit lag). Collapsed to one virtual instant — the
    real protocol would exchange two messages with each live member.
    """
    log = replacement.log
    if not hasattr(log, "restore_sequencer_state"):
        return
    next_seq = max((seq + 1 for seq, _ in feed), default=log.applied_count)
    next_seq = max(next_seq, log.applied_count)
    uids = {entry.get("uid") for _, entry in feed}
    uids.update(extra_uids)
    for member in _live_members(cluster, log.group, replacement.node.name):
        peer_log = cluster.servers[member].log
        if peer_log.decided_entries:
            next_seq = max(next_seq, max(peer_log.decided_entries) + 1)
            uids.update(e.get("uid")
                        for e in peer_log.decided_entries.values())
    uids.discard(None)
    log.restore_sequencer_state(next_seq, uids)


def _finish(cluster, replacement, provider=None):
    replacement.log.resume_backfill()
    replacement.log.request_backfill(provider=provider)
    replacement._start_gate.succeed(None)


def cold_start_member(cluster, name, entries=None, checkpoint=None,
                      status=None):
    """Run the recovery ladder for one member; returns the replacement.

    With ``entries``/``checkpoint`` given (the whole-group restore path)
    the local images are taken as read; otherwise they are read — after
    a power-fail of the member's disk — right here.
    """
    farm = cluster.disks
    crashed = cluster.servers[name]
    detach_durability(crashed)
    if not crashed.node.crashed:
        crashed.crash()
    disk = farm.disk(name)
    if entries is None:
        disk, checkpoint, replay = _read_images(farm, name)
        entries = dict(replay.entries)
        status = replay.status

    replacement = _rebuild_server(cluster, crashed)
    position = checkpoint.applied_count if checkpoint is not None else 0
    feed, lost = _contiguous_feed(entries, position)
    peers = _live_members(cluster, replacement.log.group, name)

    # A gap strands surviving entries the feed cannot reach; a corrupt
    # scan ended the prefix early and everything beyond is unreadable.
    # Either way the local images are untrustworthy past the feed.
    degraded = bool(lost) or status == "corrupt"
    if degraded and peers:
        # Rung 2: the local images cannot reconstruct a contiguous
        # history — pull a full checkpoint/snapshot from a peer.
        farm.stats.peer_fallbacks += 1
        wipe_wal(disk)
        attach_durability(replacement, farm)
        replacement.node.flight(
            "store", f"cold start: {lost} entr(ies) stranded past "
            f"{position + len(feed)} (wal {status}); falling back to "
            f"peer {peers[0]}")
        if cluster.config.scheme == "smr":
            from repro.smr.recovery import RecoveringReplica, RecoveryHost
            for peer in peers:
                server = cluster.servers[peer]
                if getattr(server, "recovery_host", None) is None:
                    server.recovery_host = RecoveryHost(server)
            replacement.recovery = RecoveringReplica(
                replacement, peers[0], fallback_peers=peers[1:])
        else:
            replacement.recovery = PartitionRecovery(
                replacement, peers[0], fallback_peers=peers[1:],
                on_failure=cluster._on_recovery_failure)
        cluster.servers[name] = replacement
        return replacement

    # Rung 1 (or rung 3 with the lost suffix flight-recorded): install
    # the local checkpoint and replay the surviving contiguous suffix.
    if degraded:
        replacement.node.flight(
            "store", f"cold start: history unreadable past "
            f"{position + len(feed)} (wal {status}, {lost} stranded) and "
            "no live peer — relying on client resends (no reply was ever "
            "sent for an entry that never reached the durable prefix)")
    wipe_wal(disk)
    attach_durability(replacement, farm)
    if checkpoint is not None:
        install_checkpoint(replacement, checkpoint)
        replacement.log.fast_forward(max(replacement.log.applied_count,
                                         position))
    else:
        # No durable checkpoint yet: replay starts from the preloaded
        # base image (preloads bypass the ordered log — a checkpoint,
        # when one exists, already contains their effects).
        replacement.load_state(
            cluster._initial_partition_state.get(replacement.log.group, {}))
    _reconcile_sequencer(cluster, replacement, feed)
    for seq, entry in feed:
        replacement.log._learn(seq, entry)
    checkpointer = getattr(replacement, "checkpointer", None)
    if checkpointer is not None and checkpointer.store is not None:
        # Persist the recovered baseline: the next cold start loads it
        # instead of re-replaying from the previous checkpoint.
        checkpointer.capture(reason="cold-start")
    farm.stats.cold_starts += 1
    replacement.node.flight(
        "store", f"cold start: checkpoint@{position} + {len(feed)} wal "
        f"entr(ies) (wal {status or 'clean'})")
    _finish(cluster, replacement, provider=peers[0] if peers else None)
    cluster.servers[name] = replacement
    return replacement


def cold_start_partition(cluster, partition):
    """Restore every member of ``partition`` after whole-group loss.

    Reads all members' images first and feeds each member the *union*
    of the surviving WAL entries: any member's durable record of a
    position is authoritative for the group, so asymmetric fsync depth
    (group commit) never manifests as divergent members. The
    most-advanced member restarts first — a gapped member's peer
    transfer then has a caught-up source.
    """
    farm = cluster.disks
    members = list(cluster.directory.members(partition))
    images = {}
    union: dict[int, dict] = {}
    for name in members:
        _, checkpoint, replay = _read_images(farm, name)
        images[name] = (checkpoint, replay)
        for seq, entry in replay.entries:
            union.setdefault(seq, entry)

    def advance(name):
        checkpoint, replay = images[name]
        position = checkpoint.applied_count if checkpoint else 0
        return max([position] + [seq + 1 for seq, _ in replay.entries])

    replacements = {}
    for name in sorted(members, key=advance, reverse=True):
        checkpoint, replay = images[name]
        replacements[name] = cold_start_member(
            cluster, name, entries=dict(union), checkpoint=checkpoint,
            status=replay.status)
    return replacements


def cold_start_oracles(cluster):
    """Restore the oracle group from the union of its members' WALs.

    The oracle has no checkpoint store — its state is small and a pure
    function of its log — so cold start replays the whole union from
    sequence 0. Replayed deliveries are marked via
    :meth:`OracleReplica.arm_replay`: their map/policy/reply-cache
    effects re-apply, but no prophecy, verdict, move or ack leaves the
    node (the original execution already sent them; partitions and
    clients deduplicate the history they already saw).
    """
    from repro.core import ORACLE_GROUP, OracleReplica

    farm = cluster.disks
    union: dict[int, dict] = {}
    for oracle in cluster.oracles:
        disk = farm.disk(oracle.node.name)
        disk.power_fail()
        replay = replay_wal(disk, stats=farm.stats)
        for seq, entry in replay.entries:
            union.setdefault(seq, entry)
    feed = sorted(union.items())
    muids = {entry["muid"] for _, entry in feed
             if entry.get("kind") == "am-propose"}
    uids = {entry.get("uid") for _, entry in feed}
    uids.discard(None)

    config = cluster.config
    policy_factory = cluster._policy_factory()
    replacements = []
    for old in cluster.oracles:
        name = old.node.name
        detach_durability(old)
        if not old.node.crashed:
            old.crash()
        cluster.network.recover(name)
        oracle = OracleReplica(
            cluster.env, cluster.network, cluster.directory, name,
            cluster.partitions, policy=policy_factory(),
            oracle_issues_moves=config.scheme == "dynastar",
            async_repartition=config.async_repartition,
            dedup=config.dedup, tracer=cluster.tracer)
        oracle.preload_locations(cluster._initial_locations)
        wipe_wal(farm.disk(name))
        attach_durability(oracle, farm)
        oracle.arm_replay(muids)
        if hasattr(oracle.log, "restore_sequencer_state"):
            next_seq = max((seq + 1 for seq, _ in feed), default=0)
            oracle.log.restore_sequencer_state(next_seq, uids)
        for seq, entry in feed:
            oracle.log._learn(seq, entry)
        farm.stats.cold_starts += 1
        oracle.node.flight(
            "store", f"oracle cold start: {len(feed)} wal entr(ies)")
        replacements.append(oracle)
    cluster.oracles[:] = replacements
    return replacements
