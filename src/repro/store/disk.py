"""Simulated crash-faithful disks.

A :class:`SimulatedDisk` models the two images that matter for crash
consistency: the *durable* image (what survives a power cut) and the
*pending* write buffer (bytes appended but not yet fsynced). ``append``
is free — it only extends the buffer — while ``fsync`` is a generator
that charges virtual time proportional to the buffered bytes before
committing them. On :meth:`power_fail` the buffer is torn: a seeded
prefix of each file's un-fsynced bytes may survive (possibly splitting
a record in half) and the rest is dropped, which is exactly the
behaviour a WAL's framing has to tolerate.

Fault hooks mirror the fuzz vocabulary: :meth:`inject_bitrot` flips a
seeded byte somewhere in the durable image and :meth:`tear_tail`
truncates a seeded suffix off the most recent durable file.

A :class:`DiskFarm` owns one disk per node name. Disks outlive the
server *objects* that write to them — a crash-restarted replica gets a
fresh process but the same platters — and share one :class:`StoreStats`
counter block so metrics survive recovery churn too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.core import Environment
from repro.sim.rng import SeedStream


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs for the durable-storage layer.

    ``fsync_ms`` is the fixed cost of one fsync; ``bytes_per_ms`` adds a
    throughput term. ``group_commit_ms`` is how long the WAL batches
    appends before flushing (the latency/durability trade-off — see
    DESIGN.md). ``checkpoint_every`` bounds replay: partitions persist a
    checkpoint every that many applied entries and truncate WAL
    segments behind it, keeping ``keep_checkpoints`` generations.
    """

    fsync_ms: float = 0.3
    bytes_per_ms: float = 4096.0
    group_commit_ms: float = 1.0
    segment_records: int = 32
    checkpoint_every: int = 48
    keep_checkpoints: int = 2


class StoreStats:
    """Farm-wide storage counters (survive server replacement)."""

    FIELDS = (
        "appends", "bytes_appended", "fsyncs", "bytes_synced",
        "group_commits", "skipped_appends", "records_replayed",
        "corrupt_records", "torn_tails", "segments_truncated",
        "checkpoints_saved", "checkpoints_pruned", "checkpoint_corrupt",
        "cold_starts", "peer_fallbacks", "power_failures",
        "torn_writes", "bitrot_injected",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def to_dict(self) -> dict:
        return {field: getattr(self, field) for field in self.FIELDS}


class SimulatedDisk:
    """One node's local disk: durable image + un-fsynced write buffer."""

    def __init__(self, env: Environment, name: str, rng: random.Random,
                 config: DurabilityConfig, stats: StoreStats):
        self.env = env
        self.name = name
        self.rng = rng
        self.config = config
        self.stats = stats
        self._durable: Dict[str, bytearray] = {}
        self._pending: Dict[str, bytearray] = {}
        #: >1.0 while a ``disk_slow`` fault window is active.
        self.slow_factor = 1.0

    # -- the normal I/O path -------------------------------------------------

    def append(self, path: str, data: bytes) -> None:
        """Buffered append: instantaneous, durable only after fsync."""
        self._pending.setdefault(path, bytearray()).extend(data)
        self.stats.appends += 1
        self.stats.bytes_appended += len(data)

    def fsync(self, path: str):
        """Generator: pay the fsync cost, then commit the buffered bytes.

        Only the bytes buffered *at call time* are committed — appends
        racing the fsync wait stay pending, like a real fsync.
        """
        count = len(self._pending.get(path, b""))
        cost = (self.config.fsync_ms
                + count / self.config.bytes_per_ms) * self.slow_factor
        yield self.env.timeout(cost)
        buffered = self._pending.get(path)
        if buffered is not None:
            take = min(count, len(buffered))
            if take:
                self._durable.setdefault(path, bytearray()).extend(
                    buffered[:take])
                del buffered[:take]
                self.stats.bytes_synced += take
            if not buffered:
                self._pending.pop(path, None)
        self.stats.fsyncs += 1

    def read(self, path: str) -> bytes:
        """The durable image only — what a post-crash reader sees."""
        return bytes(self._durable.get(path, b""))

    def files(self, prefix: str = "") -> list:
        """Sorted durable file names starting with ``prefix``."""
        return sorted(p for p in self._durable if p.startswith(prefix))

    def exists(self, path: str) -> bool:
        return path in self._durable or path in self._pending

    def delete(self, path: str) -> None:
        self._durable.pop(path, None)
        self._pending.pop(path, None)

    # -- crash & fault surface -----------------------------------------------

    def power_fail(self) -> None:
        """Lose power: tear or drop every un-fsynced write buffer.

        For each file a seeded *prefix* of the buffered bytes survives
        (zero is allowed), so a record can land half-written — the torn
        tail the WAL replay must treat as "never written".
        """
        for path in sorted(self._pending):
            buffered = self._pending[path]
            keep = self.rng.randint(0, len(buffered))
            if keep:
                self._durable.setdefault(path, bytearray()).extend(
                    buffered[:keep])
            if 0 < keep < len(buffered):
                self.stats.torn_writes += 1
        self._pending.clear()

    def inject_bitrot(self) -> Optional[str]:
        """Flip one seeded byte in a seeded durable file (or None)."""
        files = [p for p in sorted(self._durable) if self._durable[p]]
        if not files:
            return None
        path = files[self.rng.randrange(len(files))]
        data = self._durable[path]
        offset = self.rng.randrange(len(data))
        data[offset] ^= 0x40
        self.stats.bitrot_injected += 1
        return f"{path}@{offset}"

    def tear_tail(self) -> Optional[str]:
        """Truncate a seeded suffix off the newest durable file."""
        files = [p for p in sorted(self._durable) if self._durable[p]]
        if not files:
            return None
        path = files[-1]
        data = self._durable[path]
        cut = self.rng.randint(1, min(len(data), 48))
        del data[len(data) - cut:]
        if not data:
            self._durable.pop(path)
        self.stats.torn_writes += 1
        return f"{path}-{cut}B"


class DiskFarm:
    """One :class:`SimulatedDisk` per node name, shared stats."""

    def __init__(self, env: Environment, seeds: SeedStream,
                 config: DurabilityConfig):
        self.env = env
        self.config = config
        self.stats = StoreStats()
        self._seeds = seeds
        self.disks: Dict[str, SimulatedDisk] = {}

    def disk(self, name: str) -> SimulatedDisk:
        if name not in self.disks:
            self.disks[name] = SimulatedDisk(
                self.env, name, self._seeds.stream(name), self.config,
                self.stats)
        return self.disks[name]

    def power_fail_all(self) -> None:
        """The whole-cluster power cut: every buffer torn at once."""
        self.stats.power_failures += 1
        for name in sorted(self.disks):
            self.disks[name].power_fail()
