"""Failure injection utilities.

Built on the :class:`~repro.net.transport.Network` hooks: crash/recover
nodes at given times, drop a random fraction of messages, or partition the
network into isolated islands for a time window. Used by the fault-tolerance
tests to check that the protocols keep their guarantees under failures.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.net.message import Message
from repro.net.transport import Network
from repro.sim import Environment, SeedStream


class FailureInjector:
    """Schedules failures against a network.

    All schedules are set up before ``env.run()``; the injector registers
    callbacks on the simulation clock.
    """

    def __init__(self, env: Environment, network: Network,
                 seeds: SeedStream | None = None):
        self.env = env
        self.network = network
        self._rng: random.Random = (seeds or SeedStream(0)).stream("failure")

    def crash_at(self, time: float, node: str) -> None:
        """Crash ``node`` at virtual time ``time``."""
        self._at(time, lambda: self.network.crash(node))

    def recover_at(self, time: float, node: str) -> None:
        """Recover ``node`` at virtual time ``time``."""
        self._at(time, lambda: self.network.recover(node))

    def drop_fraction(self, fraction: float,
                      kinds: Sequence[str] | None = None) -> None:
        """Drop a random ``fraction`` of messages (optionally only ``kinds``).

        Installs the rule immediately and permanently.
        """
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction out of range: {fraction}")
        kind_set = set(kinds) if kinds is not None else None

        def rule(message: Message) -> bool:
            if kind_set is not None and message.kind not in kind_set:
                return False
            return self._rng.random() < fraction

        self.network.add_drop_rule(rule)

    def partition_between(self, start: float, end: float,
                          island_a: Iterable[str],
                          island_b: Iterable[str]) -> None:
        """Cut all links between two islands during ``[start, end)``."""
        if end <= start:
            raise ValueError("partition window must have positive length")
        set_a, set_b = set(island_a), set(island_b)

        def rule(message: Message) -> bool:
            crosses = ((message.src in set_a and message.dst in set_b)
                       or (message.src in set_b and message.dst in set_a))
            return crosses

        remover_holder: list = []

        def install() -> None:
            remover_holder.append(self.network.add_drop_rule(rule))

        def uninstall() -> None:
            if remover_holder:
                remover_holder[0]()

        self._at(start, install)
        self._at(end, uninstall)

    def _at(self, time: float, action) -> None:
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: t={time}")
        self.env.schedule_callback(delay, action)
