"""Failure injection utilities.

Built on the :class:`~repro.net.transport.Network` hooks: crash/recover
nodes at given times, drop/delay/duplicate a random fraction of messages,
reorder traffic within bounded windows, or partition the network into
isolated islands for a time window. Used by the fault-tolerance tests and
by the chaos campaign (:mod:`repro.harness.chaos`) to check that the
protocols keep their guarantees under failures.

Every rule installer returns a remover, accepts an optional
``(start, end)`` activity window, and records what it installed so that
:meth:`FailureInjector.heal_all` can restore a clean, quiescent network
before invariant checking.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence

from repro.net.message import Message
from repro.net.transport import Network
from repro.sim import Environment, SeedStream


class FailureInjector:
    """Schedules failures against a network.

    All schedules are set up before ``env.run()``; the injector registers
    callbacks on the simulation clock. :meth:`heal_all` removes every rule
    this injector installed, cancels its not-yet-fired schedules and
    recovers every node it crashed.
    """

    def __init__(self, env: Environment, network: Network,
                 seeds: SeedStream | None = None):
        self.env = env
        self.network = network
        seeds = seeds or SeedStream(0)
        self._rng: random.Random = seeds.stream("failure")
        self._reorder_rng: random.Random = seeds.stream("reorder")
        self._removers: list[Callable[[], None]] = []
        self._crashed_nodes: set[str] = set()
        self.restarts = 0
        # Bumped by heal_all(); scheduled actions from older generations
        # become no-ops, so a heal genuinely quiesces the injector.
        self._generation = 0

    # -- crashes ------------------------------------------------------------

    def crash_at(self, time: float, node: str) -> None:
        """Crash ``node`` at virtual time ``time``."""
        def crash() -> None:
            self._crashed_nodes.add(node)
            self.network.crash(node)

        self._at(time, crash)

    def recover_at(self, time: float, node: str) -> None:
        """Recover ``node`` at virtual time ``time``."""
        def recover() -> None:
            self._crashed_nodes.discard(node)
            self.network.recover(node)

        self._at(time, recover)

    def crash_restart_at(self, time: float, node: str, restart_delay: float,
                         crash: Callable[[], None] | None = None,
                         restart: Callable[[], None] | None = None) -> None:
        """Crash ``node`` at ``time`` and bring it back ``restart_delay``
        ms later.

        By default the crash and restart act at the network level only
        (drop traffic, then stop dropping) — enough for protocols whose
        replicas survive in memory. Protocol-aware harnesses pass
        ``crash``/``restart`` callables instead: the chaos campaign and
        the elastic scenarios crash the server object and drive a full
        checkpoint-install recovery (:mod:`repro.reconfig.recovery`).
        Both actions are generation-guarded, so :meth:`heal_all` cancels
        a restart that has not fired yet.
        """
        if restart_delay <= 0:
            raise ValueError("restart_delay must be positive")

        def do_crash() -> None:
            self._crashed_nodes.add(node)
            if crash is not None:
                crash()
            else:
                self.network.crash(node)

        def do_restart() -> None:
            self._crashed_nodes.discard(node)
            if restart is not None:
                restart()
            else:
                self.network.recover(node)
            self.restarts += 1

        self._at(time, do_crash)
        self._at(time + restart_delay, do_restart)

    # -- message-level faults ----------------------------------------------

    def drop_fraction(self, fraction: float,
                      kinds: Sequence[str] | None = None,
                      nodes: Sequence[str] | None = None,
                      start: Optional[float] = None,
                      end: Optional[float] = None) -> Callable[[], None]:
        """Drop a random ``fraction`` of messages (optionally only ``kinds``
        and/or only traffic touching ``nodes`` as source or destination).

        Without a window the rule is installed immediately; with
        ``(start, end)`` it is active only during that interval (mirroring
        :meth:`partition_between`). Returns a remover either way.
        """
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction out of range: {fraction}")
        kind_set = set(kinds) if kinds is not None else None
        node_set = set(nodes) if nodes is not None else None

        def rule(message: Message) -> bool:
            if kind_set is not None and message.kind not in kind_set:
                return False
            if node_set is not None and message.src not in node_set \
                    and message.dst not in node_set:
                return False
            return self._rng.random() < fraction

        return self._install(lambda: self.network.add_drop_rule(rule),
                             start, end)

    def delay_spikes(self, fraction: float, spike_ms: float,
                     kinds: Sequence[str] | None = None,
                     nodes: Sequence[str] | None = None,
                     start: Optional[float] = None,
                     end: Optional[float] = None) -> Callable[[], None]:
        """Add a latency spike of up to ``spike_ms`` to a random
        ``fraction`` of messages (optionally only ``kinds`` and/or only
        traffic touching ``nodes``); returns a remover."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction out of range: {fraction}")
        if spike_ms <= 0:
            raise ValueError("spike_ms must be positive")
        kind_set = set(kinds) if kinds is not None else None
        node_set = set(nodes) if nodes is not None else None

        def rule(message: Message) -> float:
            if kind_set is not None and message.kind not in kind_set:
                return 0.0
            if node_set is not None and message.src not in node_set \
                    and message.dst not in node_set:
                return 0.0
            if self._rng.random() >= fraction:
                return 0.0
            return spike_ms * (0.5 + 0.5 * self._rng.random())

        return self._install(lambda: self.network.add_delay_rule(rule),
                             start, end)

    def duplicate_fraction(self, fraction: float, copies: int = 1,
                           kinds: Sequence[str] | None = None,
                           start: Optional[float] = None,
                           end: Optional[float] = None
                           ) -> Callable[[], None]:
        """Deliver ``copies`` extra copies of a random ``fraction`` of
        messages; returns a remover."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction out of range: {fraction}")
        if copies < 1:
            raise ValueError("copies must be >= 1")
        kind_set = set(kinds) if kinds is not None else None

        def rule(message: Message) -> int:
            if kind_set is not None and message.kind not in kind_set:
                return 0
            return copies if self._rng.random() < fraction else 0

        return self._install(lambda: self.network.add_duplicate_rule(rule),
                             start, end)

    def reorder_fraction(self, fraction: float, window_ms: float,
                         kinds: Sequence[str] | None = None,
                         start: Optional[float] = None,
                         end: Optional[float] = None) -> Callable[[], None]:
        """Divert a random ``fraction`` of messages through a bounded
        reorder window of ``window_ms``; returns a remover."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction out of range: {fraction}")
        kind_set = set(kinds) if kinds is not None else None

        def predicate(message: Message) -> bool:
            if kind_set is not None and message.kind not in kind_set:
                return False
            return self._rng.random() < fraction

        return self._install(
            lambda: self.network.add_reorder_rule(predicate, window_ms,
                                                  rng=self._reorder_rng),
            start, end)

    def partition_between(self, start: float, end: float,
                          island_a: Iterable[str],
                          island_b: Iterable[str]) -> None:
        """Cut all links between two islands during ``[start, end)``."""
        if end <= start:
            raise ValueError("partition window must have positive length")
        set_a, set_b = set(island_a), set(island_b)

        def rule(message: Message) -> bool:
            crosses = ((message.src in set_a and message.dst in set_b)
                       or (message.src in set_b and message.dst in set_a))
            return crosses

        self._install(lambda: self.network.add_drop_rule(rule), start, end)

    def partition_oneway(self, start: float, end: float,
                         srcs: Iterable[str],
                         dsts: Iterable[str]) -> None:
        """Asymmetric partition: drop ``srcs``→``dsts`` traffic during
        ``[start, end)`` while the reverse direction keeps flowing.

        One-way reachability is the nastier failure mode — a node that can
        hear acknowledgements but not be heard (or vice versa) defeats
        protocols that infer liveness from one direction only — so the
        fuzzer schedules it alongside the symmetric split.
        """
        if end <= start:
            raise ValueError("partition window must have positive length")
        src_set, dst_set = set(srcs), set(dsts)

        def rule(message: Message) -> bool:
            return message.src in src_set and message.dst in dst_set

        self._install(lambda: self.network.add_drop_rule(rule), start, end)

    # -- schedule-driven API --------------------------------------------------

    #: Message-level fault kinds :meth:`apply_event` understands; node- and
    #: cluster-level kinds (crashes, joins/leaves) need a deployment handle
    #: and live in :mod:`repro.harness.faults` / :mod:`repro.fuzz.runner`.
    MESSAGE_EVENT_KINDS = ("drop", "delay", "duplicate", "reorder",
                          "partition", "partition_oneway")

    def apply_event(self, spec: dict) -> None:
        """Install one declarative timed fault from a schedule event.

        ``spec`` is a plain dict (JSON-shaped, the fuzzer's schedule wire
        format) with a ``kind`` from :data:`MESSAGE_EVENT_KINDS`, an
        activity window ``at``/``end``, and the kind's parameters::

            {"kind": "drop", "at": 20.0, "end": 120.0, "fraction": 0.02}
            {"kind": "drop", ..., "fraction": 1.0, "kinds": ["reply"]}
            {"kind": "drop", ..., "fraction": 1.0, "nodes": ["p0s1"]}
            {"kind": "delay", ..., "fraction": 0.1, "spike_ms": 12.0}
            {"kind": "duplicate", ..., "fraction": 0.1, "copies": 1}
            {"kind": "reorder", ..., "fraction": 0.2, "window_ms": 3.0}
            {"kind": "partition", ..., "island_a": [...], "island_b": [...]}
            {"kind": "partition_oneway", ..., "srcs": [...], "dsts": [...]}

        Everything installed this way is torn down by :meth:`heal_all`.
        """
        kind = spec["kind"]
        at, end = spec["at"], spec["end"]
        if kind == "drop":
            self.drop_fraction(spec["fraction"],
                               kinds=spec.get("kinds"),
                               nodes=spec.get("nodes"),
                               start=at, end=end)
        elif kind == "delay":
            self.delay_spikes(spec["fraction"], spec["spike_ms"],
                              kinds=spec.get("kinds"),
                              nodes=spec.get("nodes"),
                              start=at, end=end)
        elif kind == "duplicate":
            self.duplicate_fraction(spec["fraction"],
                                    copies=spec.get("copies", 1),
                                    start=at, end=end)
        elif kind == "reorder":
            self.reorder_fraction(spec["fraction"], spec["window_ms"],
                                  start=at, end=end)
        elif kind == "partition":
            self.partition_between(at, end, spec["island_a"],
                                   spec["island_b"])
        elif kind == "partition_oneway":
            self.partition_oneway(at, end, spec["srcs"], spec["dsts"])
        else:
            raise ValueError(f"not a message-level fault kind: {kind!r}")

    # -- healing -------------------------------------------------------------

    def heal_all(self) -> None:
        """Restore a clean network: remove every rule this injector
        installed, cancel its not-yet-fired schedules and recover every
        node it crashed.

        Campaign scenarios call this before the quiescent phase so that
        invariant checking runs against a fault-free network.
        """
        self._generation += 1
        removers, self._removers = self._removers, []
        for remove in removers:
            remove()
        crashed, self._crashed_nodes = self._crashed_nodes, set()
        for node in sorted(crashed):
            self.network.recover(node)

    # -- plumbing -------------------------------------------------------------

    def _install(self, installer: Callable[[], Callable[[], None]],
                 start: Optional[float],
                 end: Optional[float]) -> Callable[[], None]:
        """Install a rule now or inside a ``[start, end)`` window.

        Returns a remover that works in either mode (before the window
        opens it simply cancels the pending installation).
        """
        if (start is None) != (end is None):
            raise ValueError("start and end must be given together")
        if start is None:
            remover = installer()
            self._removers.append(remover)
            return self._tracked(remover)
        if end <= start:
            raise ValueError("fault window must have positive length")
        holder: list[Callable[[], None]] = []
        cancelled = [False]

        def install() -> None:
            if cancelled[0]:
                return
            remover = installer()
            holder.append(remover)
            self._removers.append(remover)

        def uninstall() -> None:
            cancelled[0] = True
            if holder:
                self._tracked(holder[0])()

        self._at(start, install)
        self._at(end, uninstall)
        return uninstall

    def _tracked(self, remover: Callable[[], None]) -> Callable[[], None]:
        """Wrap a remover so a manual removal also drops the heal_all ref."""
        def remove() -> None:
            remover()
            if remover in self._removers:
                self._removers.remove(remover)

        return remove

    def _at(self, time: float, action) -> None:
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: t={time}")
        generation = self._generation

        def fire() -> None:
            if generation == self._generation:
                action()

        self.env.schedule_callback(delay, fire)
