"""Network message representation.

Every payload travelling through the simulated network is wrapped in a
:class:`Message`. The ``size`` field (bytes) feeds the bandwidth term of the
latency model; protocol layers set it from their payload's logical size so
that, e.g., moving a large variable costs more than sending a signal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count()

# Default wire size used when a layer does not specify one: roughly a small
# RPC with headers.
DEFAULT_MESSAGE_SIZE = 256


@dataclass(slots=True)
class Message:
    """A message in flight between two simulated processes.

    Attributes:
        src: name of the sending node.
        dst: name of the receiving node.
        kind: protocol-level message type tag (e.g. ``"paxos/accept"``).
        payload: arbitrary protocol payload.
        size: wire size in bytes (drives the bandwidth latency term).
        msg_id: globally unique id, useful in logs and tests.
        sent_at: virtual time the message entered the network.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size: int = DEFAULT_MESSAGE_SIZE
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(#{self.msg_id} {self.src}->{self.dst} "
                f"{self.kind!r} size={self.size})")
