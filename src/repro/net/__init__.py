"""Simulated cluster network substrate.

Models the evaluation cluster of the paper: nodes attached to switches,
with distinct intra-switch and inter-switch latencies, per-message
serialization cost proportional to size, and hooks for failure injection
(crashes, message drops, partitions). All protocol layers exchange
:class:`~repro.net.message.Message` objects through a :class:`Network`.
"""

from repro.net.message import Message
from repro.net.latency import (
    FixedLatency,
    LatencyModel,
    SwitchedClusterLatency,
    UniformLatency,
)
from repro.net.topology import ClusterTopology, paper_cluster_topology
from repro.net.transport import Endpoint, Network
from repro.net.failure import FailureInjector
from repro.net.trace import NetworkTracer, TraceRecord, format_trace

__all__ = [
    "ClusterTopology",
    "Endpoint",
    "FailureInjector",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkTracer",
    "SwitchedClusterLatency",
    "TraceRecord",
    "UniformLatency",
    "format_trace",
    "paper_cluster_topology",
]
