"""Message transport: endpoints, delivery scheduling and fault rules.

The :class:`Network` owns one :class:`Endpoint` (an inbox channel) per node.
``send`` stamps the message, consults the latency model and schedules
delivery. Quasi-reliable links: messages between correct nodes are delivered
exactly once, possibly reordered (latency is per-message); failure injection
can drop, delay, duplicate or reorder messages, and disconnect nodes.

Fault rules are first-class and composable (all seed-deterministic):

* *drop rules* — predicates; a matching message is discarded at the source.
* *delay rules* — return extra latency (ms) added to a message's delivery.
* *duplicate rules* — return how many extra copies to deliver; each copy
  draws its own latency, so copies interleave with other traffic.
* *reorder rules* — matching messages are held in a bounded window and
  released in a seeded-shuffled order, which reorders them even on links
  with deterministic latency.

Every ``add_*_rule`` returns a remover, so failure injectors can install
rules for a time window and guarantee a clean network afterwards.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import DEFAULT_MESSAGE_SIZE, Message
from repro.obs.flight import FlightRecorder
from repro.obs.profile import NULL_PROFILER
from repro.sim import Channel, Environment, SeedStream

DropRule = Callable[[Message], bool]
DelayRule = Callable[[Message], float]      # extra delay in ms (0 = none)
DuplicateRule = Callable[[Message], int]    # number of extra copies


class _ReorderWindow:
    """Holds matching messages for up to ``window_ms`` and releases the
    batch in a shuffled order — bounded reordering."""

    def __init__(self, network: "Network", predicate: DropRule,
                 window_ms: float, rng: random.Random):
        self.network = network
        self.predicate = predicate
        self.window_ms = window_ms
        self.rng = rng
        self._held: list[tuple[Endpoint, Message]] = []
        self._flush_scheduled = False

    def capture(self, endpoint: Endpoint, message: Message,
                delay: float) -> bool:
        if not self.predicate(message):
            return False
        self._held.append((endpoint, message))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.network.env.schedule_callback(delay + self.window_ms,
                                               self._flush)
        return True

    def _flush(self) -> None:
        self._flush_scheduled = False
        batch, self._held = self._held, []
        self.rng.shuffle(batch)
        for endpoint, message in batch:
            self.network._deliver(endpoint, message)


class Endpoint:
    """A node's attachment point to the network: a named inbox."""

    def __init__(self, env: Environment, name: str):
        self.name = name
        self.inbox = Channel(env, name=f"{name}/inbox")

    def receive(self):
        """Event yielding the next inbound :class:`Message`."""
        return self.inbox.get()


class Network:
    """The simulated network connecting all nodes.

    Example::

        net = Network(env, seeds.child("net"))
        a = net.register("a")
        b = net.register("b")
        net.send("a", "b", kind="ping")
        msg = yield b.receive()
    """

    def __init__(self, env: Environment, seeds: SeedStream,
                 latency: Optional[LatencyModel] = None,
                 profiler=None):
        self.env = env
        self.latency = latency or FixedLatency(0.1)
        # profiler=None keeps cost attribution disabled (NULL_PROFILER):
        # the network is the carrier every component reaches through its
        # ProtocolNode, so threading happens here once instead of through
        # every constructor. See repro.obs.profile.
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # The flight recorder is *always on* (bounded rings, virtual
        # timestamps only — it cannot perturb results): every delivery,
        # drop, crash and recovery leaves a trace for postmortems.
        self.flight = FlightRecorder(env)
        self._rng: random.Random = seeds.stream("latency")
        self._endpoints: dict[str, Endpoint] = {}
        self._crashed: set[str] = set()
        self._drop_rules: list[DropRule] = []
        self._delay_rules: list[DelayRule] = []
        self._duplicate_rules: list[DuplicateRule] = []
        self._reorder_windows: list[_ReorderWindow] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.messages_reordered = 0
        self.bytes_sent = 0
        # Per-kind traffic accounting (message counts and bytes), used by
        # the message-complexity experiment.
        self.sent_by_kind: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}
        self._tracer = None

    # -- observability ------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Record every send/delivery/drop into ``tracer`` (see
        :mod:`repro.net.trace`). Pass None to detach."""
        self._tracer = tracer

    def _trace(self, event: str, message: Message) -> None:
        if self._tracer is not None:
            self._tracer.record(self.env.now, event, message.src,
                                message.dst, message.kind, message.size,
                                message.msg_id)

    # -- membership -------------------------------------------------------

    def register(self, name: str) -> Endpoint:
        """Create (or return) the endpoint for ``name``."""
        if name not in self._endpoints:
            self._endpoints[name] = Endpoint(self.env, name)
        return self._endpoints[name]

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(f"unknown node: {name!r}") from None

    def node_names(self) -> list[str]:
        return sorted(self._endpoints)

    # -- failure injection --------------------------------------------------

    def crash(self, name: str) -> None:
        """Mark ``name`` as crashed: it neither sends nor receives.

        Pending inbox getters are discarded: the crashed node's dispatch
        loop is about to die, and a dead getter would otherwise swallow the
        first message addressed to a recovered successor of this name.
        """
        self._crashed.add(name)
        self.flight.record(name, "crash")
        endpoint = self._endpoints.get(name)
        if endpoint is not None:
            endpoint.inbox._getters.clear()

    def recover(self, name: str) -> None:
        if name in self._crashed:
            self.flight.record(name, "recover")
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    def add_drop_rule(self, rule: DropRule) -> Callable[[], None]:
        """Install a predicate dropping matching messages; returns a remover."""
        return self._install(self._drop_rules, rule)

    def add_delay_rule(self, rule: DelayRule) -> Callable[[], None]:
        """Install a rule adding extra latency (ms) to matching messages.

        Returns a remover. Multiple matching rules stack additively.
        """
        return self._install(self._delay_rules, rule)

    def add_duplicate_rule(self, rule: DuplicateRule) -> Callable[[], None]:
        """Install a rule returning how many *extra* copies of a matching
        message to deliver (each with its own latency draw); returns a
        remover."""
        return self._install(self._duplicate_rules, rule)

    def add_reorder_rule(self, predicate: DropRule, window_ms: float,
                         rng: Optional[random.Random] = None
                         ) -> Callable[[], None]:
        """Hold matching messages for up to ``window_ms`` and release each
        batch in a shuffled order (bounded reordering); returns a remover.

        Pass a dedicated seeded ``rng`` to keep the shuffle independent of
        the latency stream; campaigns rely on this for determinism.
        """
        if window_ms <= 0:
            raise ValueError("reorder window must be positive")
        window = _ReorderWindow(self, predicate, window_ms,
                                rng or random.Random(0))
        return self._install(self._reorder_windows, window)

    @staticmethod
    def _install(rules: list, rule) -> Callable[[], None]:
        rules.append(rule)

        def remove() -> None:
            if rule in rules:
                rules.remove(rule)

        return remove

    # -- sending ------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any = None,
             size: int = DEFAULT_MESSAGE_SIZE) -> Optional[Message]:
        """Send a message; returns it, or None if it was dropped at the source.

        Unknown destinations are registered on the fly: their inbox buffers
        the message until the destination node attaches and starts reading.
        """
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            endpoint = self.register(dst)
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size=size, sent_at=self.env.now)
        self.messages_sent += 1
        self.bytes_sent += size
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        if src in self._crashed:
            self._trace("dropped", message)
            return None
        # Fault rules are the exception, not the rule: guard each class
        # so a fault-free send never pays for generator/loop setup.
        if self._drop_rules and any(rule(message)
                                    for rule in self._drop_rules):
            self._trace("dropped", message)
            return None
        self._trace("sent", message)
        extra = 0.0
        if self._delay_rules:
            for rule in self._delay_rules:
                added = rule(message)
                if added:
                    extra += added
            if extra:
                self.messages_delayed += 1
        copies = 1
        if self._duplicate_rules:
            for rule in self._duplicate_rules:
                copies += int(rule(message) or 0)
            self.messages_duplicated += copies - 1
        for copy_index in range(copies):
            if copy_index:
                self._trace("duplicated", message)
            delay = self.latency.delay(src, dst, size, self._rng) + extra
            if self.profiler.enabled:
                self.profiler.net(kind, delay, size)
            self._dispatch(endpoint, message, delay)
        return message

    def send_all(self, src: str, dsts: Iterable[str], kind: str,
                 payload: Any = None,
                 size: int = DEFAULT_MESSAGE_SIZE) -> None:
        """Send the same logical message to several destinations."""
        for dst in sorted(set(dsts)):
            self.send(src, dst, kind, payload, size)

    def _dispatch(self, endpoint: Endpoint, message: Message,
                  delay: float) -> None:
        """Route one delivery: through a reorder window or straight on."""
        if self._reorder_windows:
            for window in self._reorder_windows:
                if window.capture(endpoint, message, delay):
                    self.messages_reordered += 1
                    return
        self.env.schedule_callback(delay, self._deliver, endpoint, message)

    def _deliver(self, endpoint: Endpoint, message: Message) -> None:
        # Crash may have happened while the message was in flight.
        if endpoint.name in self._crashed:
            self._trace("dropped", message)
            self.flight.record(endpoint.name, "drop",
                               f"{message.kind} from {message.src}")
            return
        self._trace("delivered", message)
        self.flight.record(endpoint.name, "deliver",
                           f"{message.kind} from {message.src}")
        self.messages_delivered += 1
        endpoint.inbox.put(message)
