"""Message transport: endpoints, delivery scheduling and drop rules.

The :class:`Network` owns one :class:`Endpoint` (an inbox channel) per node.
``send`` stamps the message, consults the latency model and schedules
delivery. Quasi-reliable links: messages between correct nodes are delivered
exactly once, possibly reordered (latency is per-message); failure injection
can drop messages or disconnect nodes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import DEFAULT_MESSAGE_SIZE, Message
from repro.sim import Channel, Environment, SeedStream

DropRule = Callable[[Message], bool]


class Endpoint:
    """A node's attachment point to the network: a named inbox."""

    def __init__(self, env: Environment, name: str):
        self.name = name
        self.inbox = Channel(env, name=f"{name}/inbox")

    def receive(self):
        """Event yielding the next inbound :class:`Message`."""
        return self.inbox.get()


class Network:
    """The simulated network connecting all nodes.

    Example::

        net = Network(env, seeds.child("net"))
        a = net.register("a")
        b = net.register("b")
        net.send("a", "b", kind="ping")
        msg = yield b.receive()
    """

    def __init__(self, env: Environment, seeds: SeedStream,
                 latency: Optional[LatencyModel] = None):
        self.env = env
        self.latency = latency or FixedLatency(0.1)
        self._rng: random.Random = seeds.stream("latency")
        self._endpoints: dict[str, Endpoint] = {}
        self._crashed: set[str] = set()
        self._drop_rules: list[DropRule] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        # Per-kind traffic accounting (message counts and bytes), used by
        # the message-complexity experiment.
        self.sent_by_kind: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}
        self._tracer = None

    # -- observability ------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Record every send/delivery/drop into ``tracer`` (see
        :mod:`repro.net.trace`). Pass None to detach."""
        self._tracer = tracer

    def _trace(self, event: str, message: Message) -> None:
        if self._tracer is not None:
            self._tracer.record(self.env.now, event, message.src,
                                message.dst, message.kind, message.size,
                                message.msg_id)

    # -- membership -------------------------------------------------------

    def register(self, name: str) -> Endpoint:
        """Create (or return) the endpoint for ``name``."""
        if name not in self._endpoints:
            self._endpoints[name] = Endpoint(self.env, name)
        return self._endpoints[name]

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(f"unknown node: {name!r}") from None

    def node_names(self) -> list[str]:
        return sorted(self._endpoints)

    # -- failure injection --------------------------------------------------

    def crash(self, name: str) -> None:
        """Mark ``name`` as crashed: it neither sends nor receives.

        Pending inbox getters are discarded: the crashed node's dispatch
        loop is about to die, and a dead getter would otherwise swallow the
        first message addressed to a recovered successor of this name.
        """
        self._crashed.add(name)
        endpoint = self._endpoints.get(name)
        if endpoint is not None:
            endpoint.inbox._getters.clear()

    def recover(self, name: str) -> None:
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    def add_drop_rule(self, rule: DropRule) -> Callable[[], None]:
        """Install a predicate dropping matching messages; returns a remover."""
        self._drop_rules.append(rule)

        def remove() -> None:
            if rule in self._drop_rules:
                self._drop_rules.remove(rule)

        return remove

    # -- sending ------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any = None,
             size: int = DEFAULT_MESSAGE_SIZE) -> Optional[Message]:
        """Send a message; returns it, or None if it was dropped at the source.

        Unknown destinations are registered on the fly: their inbox buffers
        the message until the destination node attaches and starts reading.
        """
        endpoint = self.register(dst)
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size=size, sent_at=self.env.now)
        self.messages_sent += 1
        self.bytes_sent += size
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        if src in self._crashed:
            self._trace("dropped", message)
            return None
        if any(rule(message) for rule in self._drop_rules):
            self._trace("dropped", message)
            return None
        self._trace("sent", message)
        delay = self.latency.delay(src, dst, size, self._rng)
        self.env.schedule_callback(delay,
                                   lambda: self._deliver(endpoint, message))
        return message

    def send_all(self, src: str, dsts: Iterable[str], kind: str,
                 payload: Any = None,
                 size: int = DEFAULT_MESSAGE_SIZE) -> None:
        """Send the same logical message to several destinations."""
        for dst in sorted(set(dsts)):
            self.send(src, dst, kind, payload, size)

    def _deliver(self, endpoint: Endpoint, message: Message) -> None:
        # Crash may have happened while the message was in flight.
        if endpoint.name in self._crashed:
            self._trace("dropped", message)
            return
        self._trace("delivered", message)
        self.messages_delivered += 1
        endpoint.inbox.put(message)
