"""Network tracing: record every message for protocol debugging.

Attach a :class:`NetworkTracer` to a :class:`~repro.net.transport.Network`
and every send/delivery/drop is recorded with its virtual timestamp. The
query helpers slice by node, kind or time window; ``format_trace`` renders
a readable message-sequence listing — the tool we reach for when a
multicast protocol misbehaves.

Tracing is off by default (a busy simulation generates millions of
messages); enable it for focused runs::

    tracer = NetworkTracer()
    network.attach_tracer(tracer)
    ...
    print(format_trace(tracer.between(10.0, 12.5)))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

SENT = "sent"
DELIVERED = "delivered"
DROPPED = "dropped"


@dataclass
class TraceRecord:
    """One traced network event."""

    time: float
    event: str          # sent | delivered | dropped
    src: str
    dst: str
    kind: str
    size: int
    msg_id: int

    def __str__(self) -> str:
        arrow = {"sent": "->", "delivered": "=>", "dropped": "-X"}[self.event]
        return (f"{self.time:10.3f}  {self.src:>10} {arrow} {self.dst:<10} "
                f"{self.kind} ({self.size}B #{self.msg_id})")


class NetworkTracer:
    """Collects :class:`TraceRecord` entries from an attached network.

    Memory is bounded either way; the two modes differ in *which* records
    survive a full buffer:

    * ``ring=False`` (default, the historical behaviour) — keep the first
      ``capacity`` records and drop new ones: the run's *beginning*.
    * ``ring=True`` — a ring buffer: evict the oldest record for each new
      one, keeping the *most recent* window — the right mode for long
      runs where the interesting traffic is near the failure at the end.

    Either way, :attr:`evicted` counts the records lost, so a consumer can
    tell a complete trace from a truncated one.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 capacity: int = 1_000_000, ring: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring = ring
        self._records: deque = deque(maxlen=capacity) if ring else deque()
        self._kind_filter = set(kinds) if kinds is not None else None
        self._capacity = capacity
        self.evicted = 0

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def record(self, time: float, event: str, src: str, dst: str,
               kind: str, size: int, msg_id: int) -> None:
        if self._kind_filter is not None and kind not in self._kind_filter:
            return
        if len(self._records) >= self._capacity:
            self.evicted += 1
            if not self._ring:
                return  # bounded: never let tracing exhaust memory
            # deque(maxlen=capacity) drops the oldest on append below.
        self._records.append(TraceRecord(time, event, src, dst, kind, size,
                                         msg_id))

    def __len__(self) -> int:
        return len(self._records)

    # -- queries -----------------------------------------------------------

    def filter(self, predicate: Callable[[TraceRecord], bool]) \
            -> list[TraceRecord]:
        return [r for r in self._records if predicate(r)]

    def by_kind(self, kind: str) -> list[TraceRecord]:
        return self.filter(lambda r: r.kind == kind)

    def involving(self, node: str) -> list[TraceRecord]:
        return self.filter(lambda r: node in (r.src, r.dst))

    def between(self, start: float, end: float) -> list[TraceRecord]:
        return self.filter(lambda r: start <= r.time < end)

    def dropped(self) -> list[TraceRecord]:
        return self.filter(lambda r: r.event == DROPPED)

    def message_journey(self, msg_id: int) -> list[TraceRecord]:
        """All events of one message (sent, then delivered or dropped)."""
        return self.filter(lambda r: r.msg_id == msg_id)


def format_trace(records: Iterable[TraceRecord]) -> str:
    """Human-readable, time-ordered trace listing."""
    ordered = sorted(records, key=lambda r: (r.time, r.msg_id))
    return "\n".join(str(r) for r in ordered)
