"""Latency models for the simulated network.

A latency model maps (source, destination, message size) to a delay in
virtual milliseconds. The default model mirrors the paper's testbed: two
gigabit switches joined by a fast link, so messages crossing switches pay a
slightly higher propagation delay, and every message pays a bandwidth term
proportional to its size.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from repro.net.topology import ClusterTopology

# Virtual time unit throughout the repository: 1.0 == 1 millisecond.
MS = 1.0
US = 0.001

GIGABIT_BYTES_PER_MS = 125_000  # 1 Gbps in bytes per millisecond


class LatencyModel(ABC):
    """Maps a message to its one-way network delay (in virtual ms)."""

    @abstractmethod
    def delay(self, src: str, dst: str, size: int,
              rng: random.Random) -> float:
        """One-way delay for a ``size``-byte message from src to dst."""


class FixedLatency(LatencyModel):
    """Constant delay regardless of endpoints and size (useful in tests)."""

    def __init__(self, delay_ms: float = 0.1):
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        self.delay_ms = delay_ms

    def delay(self, src: str, dst: str, size: int,
              rng: random.Random) -> float:
        return self.delay_ms


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low_ms, high_ms]``.

    Used by property-based tests to explore message reorderings.
    """

    def __init__(self, low_ms: float, high_ms: float):
        if not 0 <= low_ms <= high_ms:
            raise ValueError(f"invalid range: [{low_ms}, {high_ms}]")
        self.low_ms = low_ms
        self.high_ms = high_ms

    def delay(self, src: str, dst: str, size: int,
              rng: random.Random) -> float:
        return rng.uniform(self.low_ms, self.high_ms)


class SwitchedClusterLatency(LatencyModel):
    """Two-level switched cluster, as in the paper's testbed.

    Delay = base propagation (intra- or inter-switch) + size / bandwidth +
    multiplicative jitter. Endpoints not present in the topology (e.g.
    clients spun up dynamically) are treated as attached to switch 0.
    """

    def __init__(self, topology: Optional[ClusterTopology] = None,
                 intra_ms: float = 0.05,
                 inter_ms: float = 0.15,
                 bytes_per_ms: float = GIGABIT_BYTES_PER_MS,
                 jitter: float = 0.1):
        if jitter < 0 or jitter >= 1:
            raise ValueError(f"jitter must be in [0, 1): {jitter}")
        self.topology = topology
        self.intra_ms = intra_ms
        self.inter_ms = inter_ms
        self.bytes_per_ms = bytes_per_ms
        self.jitter = jitter

    def _switch_of(self, node: str) -> int:
        if self.topology is None:
            return 0
        return self.topology.switch_of(node)

    def delay(self, src: str, dst: str, size: int,
              rng: random.Random) -> float:
        same_switch = self._switch_of(src) == self._switch_of(dst)
        base = self.intra_ms if same_switch else self.inter_ms
        transmission = size / self.bytes_per_ms
        factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
        return (base + transmission) * factor
