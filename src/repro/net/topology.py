"""Cluster topology: which node hangs off which switch.

The paper's testbed had HP nodes on one gigabit switch and Dell nodes on
another, with a 20 Gbps inter-switch link. For the simulation all that
matters is the *pattern*: node pairs on the same switch see a lower base
latency than pairs on different switches.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class ClusterTopology:
    """Assignment of node names to switches.

    Nodes never registered are assumed to live on switch 0, which keeps
    dynamically created clients cheap to handle.
    """

    def __init__(self, assignment: Mapping[str, int] | None = None):
        self._switch: dict[str, int] = dict(assignment or {})

    def attach(self, node: str, switch: int) -> None:
        """Attach ``node`` to ``switch`` (re-attaching is allowed)."""
        self._switch[node] = switch

    def attach_all(self, nodes: Iterable[str], switch: int) -> None:
        for node in nodes:
            self.attach(node, switch)

    def switch_of(self, node: str) -> int:
        return self._switch.get(node, 0)

    def nodes(self) -> list[str]:
        return sorted(self._switch)

    def __contains__(self, node: str) -> bool:
        return node in self._switch


def paper_cluster_topology(server_names: Iterable[str],
                           oracle_names: Iterable[str] = (),
                           client_names: Iterable[str] = ()) -> ClusterTopology:
    """Topology shaped like the paper's testbed.

    Servers are spread round-robin across the two switches (the paper mixed
    HP and Dell nodes); oracle replicas go to switch 0 and clients to
    switch 1, so both intra- and inter-switch paths are exercised.
    """
    topology = ClusterTopology()
    for i, name in enumerate(server_names):
        topology.attach(name, i % 2)
    topology.attach_all(oracle_names, 0)
    topology.attach_all(client_names, 1)
    return topology
