"""Crash-recovery for classic SMR replicas: snapshot + log catch-up.

The paper's protocols assume crash-stop, but operating a replicated system
needs a way to re-add replicas. For classic SMR this is clean — a replica's
state is a pure function of the delivered command sequence — so recovery
is: fetch a peer's snapshot (store + executed position), install it, and
resume applying from that position (the ordered log's catch-up machinery
fills the gap).

For the *partitioned* protocols recovery is substantially subtler (a
recovering replica can miss in-flight signal/variable exchanges addressed
to its group) and is out of scope here, as it is for the paper; the
fault-tolerance story for partitions is Paxos majorities
(:mod:`repro.ordering.paxos`).

Usage::

    replica.crash()
    ...
    recovered = recover_replica(crashed=replica, peer=live_replica)
    # `recovered` is a fresh SmrReplica under the same name, caught up.
"""

from __future__ import annotations

import copy
import itertools
from typing import Optional, Sequence

from repro.net import Message
from repro.smr.replica import SmrReplica

SNAPSHOT_REQUEST = "recovery/request"
SNAPSHOT_RESPONSE = "recovery/snapshot"

_recovery_counter = itertools.count()


class RecoveryHost:
    """Serves state snapshots to recovering peers.

    Attach one to every replica that should be able to help others
    recover. The snapshot is taken synchronously in the dispatch handler,
    so it is consistent: it reflects exactly the commands executed so far
    (command application is atomic in virtual time).
    """

    def __init__(self, replica: SmrReplica):
        self.replica = replica
        self.snapshots_served = 0
        replica.node.on(SNAPSHOT_REQUEST, self._on_request)

    def _on_request(self, message: Message) -> None:
        replica = self.replica
        # The snapshot position is the number of commands *executed*, not
        # log positions delivered: the peer's executor lags its log by the
        # queued deliveries, and those commands' effects are not yet in the
        # snapshotted store. (In classic SMR over a sequencer log every log
        # position is one command, so the two units coincide.)
        executed = list(replica.executed)
        pool = getattr(replica, "parallel", None)
        if pool is not None and pool.pending:
            # Worker-pool commands in flight sit in `executed` (appended
            # at dispatch) but their effects are not yet in the store.
            # They are a contiguous tail of the history (the sequential
            # path drains the pool first), so filtering them yields the
            # consistent prefix; the peer re-fetches the rest via the
            # log's backfill protocol.
            inflight = set(pool.inflight_cids())
            executed = [cid for cid in executed if cid not in inflight]
        snapshot = {
            "request_id": message.payload["request_id"],
            "store": copy.deepcopy(replica.store.snapshot()),
            "executed": executed,
            "applied_count": len(executed),
        }
        # Size scales with the state: recovery is not free on the wire.
        size = 256 + 64 * len(snapshot["store"])
        replica.node.send(message.payload["reply_to"], SNAPSHOT_RESPONSE,
                          snapshot, size=size)
        self.snapshots_served += 1


def _delivery_cid(delivery) -> str:
    """Command id of a queued delivery (envelope or legacy raw Command)."""
    payload = delivery.payload
    if isinstance(payload, dict):
        return payload["command"].cid
    return payload.cid


class RecoveringReplica:
    """A replacement replica that bootstraps from a peer's snapshot.

    Wraps a fresh :class:`SmrReplica` (same name as the crashed one, after
    ``network.recover(name)``); commands delivered by the log while the
    snapshot is in flight are buffered by the replica's delivery channel
    and deduplicated against the snapshot's executed set after install.

    The snapshot request is retried every ``retry_ms`` until the response
    arrives: either message may be lost, and an un-retried request would
    leave the replacement replica gated forever. The request id stays the
    same across retries, so late duplicate responses install at most once.

    The chosen peer is not a single point of failure: after
    ``attempts_per_peer`` unanswered requests the recovery rotates to the
    next name in ``fallback_peers`` (wrapping around), so a peer that
    crashes between the request and its snapshot reply only delays the
    install instead of hanging it forever.
    """

    def __init__(self, replica: SmrReplica, peer_name: str,
                 retry_ms: Optional[float] = 60.0,
                 fallback_peers: Sequence[str] = (),
                 attempts_per_peer: int = 3):
        if replica._start_gate is None:
            raise ValueError("the replacement replica must be constructed "
                             "with a start_gate (use recover_replica)")
        if attempts_per_peer < 1:
            raise ValueError("attempts_per_peer must be >= 1")
        self.replica = replica
        self.peers = [peer_name] + [p for p in fallback_peers
                                    if p != peer_name]
        self._peer_index = 0
        self.installed = False
        self.attempts = 0
        self.retry_ms = retry_ms
        self.attempts_per_peer = attempts_per_peer
        self._request_id = f"rec-{next(_recovery_counter)}"
        self._gate = replica._start_gate
        replica.node.on(SNAPSHOT_RESPONSE, self._on_snapshot)
        self._send_request()

    @property
    def peer_name(self) -> str:
        """The peer currently being asked for a snapshot."""
        return self.peers[self._peer_index]

    def _send_request(self) -> None:
        if self.installed:
            return
        if self.attempts and self.attempts % self.attempts_per_peer == 0 \
                and len(self.peers) > 1:
            self._peer_index = (self._peer_index + 1) % len(self.peers)
            self.replica.node.flight(
                "recovery", f"snapshot unanswered; rotating to "
                f"{self.peer_name}")
        self.attempts += 1
        self.replica.node.send(self.peer_name, SNAPSHOT_REQUEST, {
            "request_id": self._request_id,
            "reply_to": self.replica.node.name,
        }, size=128)
        if self.retry_ms is not None:
            self.replica.env.schedule_callback(self.retry_ms,
                                               self._send_request)

    def _on_snapshot(self, message: Message) -> None:
        snapshot = message.payload
        if self.installed or snapshot["request_id"] != self._request_id:
            return
        replica = self.replica
        for key, value in snapshot["store"].items():
            replica.store.write(key, value)
        replica.executed = list(snapshot["executed"])
        replica._executed_set = set(replica.executed)
        # Drop queued deliveries the snapshot already covers.
        retained = [d for d in replica._deliveries._items
                    if _delivery_cid(d) not in replica._executed_set]
        replica._deliveries._items.clear()
        replica._deliveries._items.extend(retained)
        # Positions below the snapshot are covered by the installed state;
        # anything between the snapshot and live traffic comes via the
        # log's backfill protocol.
        replica.log.fast_forward(max(replica.log.applied_count,
                                     snapshot["applied_count"]))
        replica.log.request_backfill(provider=self.peer_name)
        self.installed = True
        self._gate.succeed(None)


def recover_replica(crashed: SmrReplica, peer: SmrReplica,
                    state_machine=None,
                    fallback_peers: Sequence[str] = ()) -> SmrReplica:
    """Bring a crashed classic-SMR replica back under the same name.

    Returns the replacement :class:`SmrReplica`; it serves commands once
    a peer's snapshot is installed and the log catch-up completes. The
    peer (and any ``fallback_peers``, tried in rotation if the primary
    stops answering) must have a :class:`RecoveryHost` attached.
    """
    network = crashed.node.network
    name = crashed.node.name
    network.recover(name)
    replacement = SmrReplica(
        crashed.env, network, crashed.amcast.directory, crashed.group,
        name, state_machine or crashed.state_machine,
        execution=crashed.execution, log_factory=type(crashed.log),
        start_gate=crashed.env.event())
    pool = getattr(crashed, "parallel", None)
    if pool is not None:
        from repro.smr.parallel import ParallelExecutionModel
        replacement.attach_parallel(
            ParallelExecutionModel(crashed.env, pool.config))
    replacement.recovery = RecoveringReplica(
        replacement, peer.node.name, fallback_peers=fallback_peers)
    return replacement
