"""Commands and replies.

DS-SMR distinguishes five command types (Section 3.3 of the paper):
``access`` (application reads/writes over a declared variable set),
``create``, ``delete``, ``move`` and ``consult``. Classic SMR and S-SMR use
only ``access`` commands. Every command carries the set of state variables
it touches — the paper's protocols all assume the variable set is known when
the command is submitted (the oracle returns a superset otherwise).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

_cmd_counter = itertools.count()


def new_command_id(origin: str) -> str:
    """Globally unique command id."""
    return f"cmd-{origin}-{next(_cmd_counter)}"


class CommandType(str, Enum):
    """The five DS-SMR command types."""

    ACCESS = "access"
    CREATE = "create"
    DELETE = "delete"
    MOVE = "move"
    CONSULT = "consult"


class ReplyStatus(str, Enum):
    """Outcome of a command at a server or the oracle."""

    OK = "ok"
    NOK = "nok"        # the oracle rejected the command (e.g. unknown var)
    RETRY = "retry"    # partition no longer holds the variables; re-consult
    OVERLOAD = "overload"  # shed by admission control; back off and retry


@dataclass
class Command:
    """A client command.

    ``op`` names the application operation (e.g. ``"post"``); ``args`` are
    its arguments; ``variables`` is the set of state-variable keys the
    command reads or writes. ``writes`` marks which of those are written
    (used by read-only optimisations and by tests).
    """

    op: str
    args: dict = field(default_factory=dict)
    variables: tuple = ()
    writes: tuple = ()
    ctype: CommandType = CommandType.ACCESS
    cid: str = ""
    client: str = ""

    def __post_init__(self):
        self.variables = tuple(self.variables)
        self.writes = tuple(self.writes)
        if not self.cid:
            self.cid = new_command_id(self.client or "anon")

    def payload_size(self) -> int:
        """Approximate wire size: headers plus per-variable footprint."""
        return 128 + 32 * len(self.variables)


@dataclass
class Reply:
    """A server's (or the oracle's) reply to a command.

    ``attempt`` echoes the client's attempt number for the command: a
    client that has moved on to attempt *n* must ignore stragglers from
    attempt *n-1* (e.g. the second replica's duplicate ``retry``), or a
    stale failure verdict could mask the new attempt's outcome.
    """

    cid: str
    status: ReplyStatus
    value: Any = None
    sender: str = ""
    partition: Optional[str] = None
    attempt: int = 1
