"""PRObject: partially-replicated objects with transparent access.

The paper's Eyrie library exposes state as *PRObjects*: "each object of
such a class is stored locally or remotely, but the application code is
agnostic to the location of an object. All calls to methods of such
objects are intercepted" by the library. This module provides the same
programming model on top of :class:`~repro.smr.state_machine.ExecutionView`:
a state machine declares object classes, and during command execution it
works with live objects whose attribute reads/writes are transparently
backed by the (possibly remote) variable store.

Example::

    class Account(PRObject):
        FIELDS = ("balance",)

    class Bank(ObjectStateMachine):
        CLASSES = {"acct": Account}

        def run(self, command, objects):
            if command.op == "transfer":
                src = objects["acct", command.args["src"]]
                dst = objects["acct", command.args["dst"]]
                amount = command.args["amount"]
                if src.balance < amount:
                    return "insufficient"
                src.balance -= amount
                dst.balance += amount
                return "ok"

The application never sees partitions; the proxies read through the
execution view (local store or values shipped from remote partitions) and
write back on mutation — exactly the Eyrie contract.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.smr.command import Command
from repro.smr.state_machine import ExecutionView, StateMachine


class PRObject:
    """Base class for partially replicated objects.

    Subclasses list their persistent attributes in ``FIELDS``. Instances
    are materialised by :class:`ObjectDirectory` from the backing variable;
    attribute reads return the stored values and attribute writes mark the
    object dirty so its variable is written back after the command.
    """

    FIELDS: tuple = ()

    def __init__(self, **values):
        object.__setattr__(self, "_data", {})
        object.__setattr__(self, "_dirty", False)
        for field in self.FIELDS:
            self._data[field] = values.get(field)

    # -- attribute interception ------------------------------------------

    def __getattr__(self, name: str):
        data = object.__getattribute__(self, "_data")
        if name in data:
            return data[name]
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in self.FIELDS:
            self._data[name] = value
            object.__setattr__(self, "_dirty", True)
        else:
            object.__setattr__(self, name, value)

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, raw: Optional[Mapping]) -> "PRObject":
        return cls(**dict(raw or {}))

    def dump(self) -> dict:
        return dict(self._data)

    @property
    def dirty(self) -> bool:
        return self._dirty


def object_key(class_tag: str, object_id) -> str:
    """Variable key backing object ``object_id`` of class ``class_tag``."""
    return f"{class_tag}:{object_id}"


class ObjectDirectory:
    """Materialises PRObjects from an execution view, writes back dirty ones.

    One directory lives for the duration of one command execution; the
    state machine indexes it with ``objects[class_tag, object_id]``.
    """

    def __init__(self, classes: Mapping[str, type], view: ExecutionView):
        self._classes = dict(classes)
        self._view = view
        self._live: dict[str, PRObject] = {}

    def __getitem__(self, spec) -> PRObject:
        class_tag, object_id = spec
        key = object_key(class_tag, object_id)
        if key not in self._live:
            cls = self._classes[class_tag]
            self._live[key] = cls.load(self._view.read(key))
        return self._live[key]

    def exists(self, class_tag: str, object_id) -> bool:
        return object_key(class_tag, object_id) in self._view

    def flush(self) -> int:
        """Write dirty objects back to the view; returns how many."""
        written = 0
        for key, obj in self._live.items():
            if obj.dirty:
                self._view.write(key, obj.dump())
                written += 1
        return written


class ObjectStateMachine(StateMachine):
    """State machine base class with the PRObject programming model.

    Subclasses define ``CLASSES`` (class tag → PRObject subclass) and
    implement :meth:`run`; the base class materialises objects, runs the
    logic and flushes dirty objects back — the application stays agnostic
    to where objects live, as in Eyrie.
    """

    CLASSES: Mapping[str, type] = {}

    def apply(self, command: Command, view: ExecutionView) -> Any:
        objects = ObjectDirectory(self.CLASSES, view)
        result = self.run(command, objects)
        objects.flush()
        return result

    def run(self, command: Command, objects: ObjectDirectory) -> Any:
        raise NotImplementedError

    def initial_value(self, key, args: dict):
        """New objects start from the creating command's ``fields`` arg."""
        return dict(args.get("fields", {}))
