"""Command execution cost model.

Replicas execute commands sequentially (the SMR determinism requirement),
each command consuming simulated CPU time. The cost model is the simulation
analogue of the Java prototype's per-command service time, and is what makes
replicas saturate: a partition's maximum throughput is roughly
``1 / cost_ms`` commands per millisecond, before any coordination overhead.

The parallel execution engine (:mod:`repro.smr.parallel`) reuses the same
model per simulated core: a replica with ``N`` workers saturates at roughly
``N / cost_ms`` when commands do not conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.smr.command import Command


@dataclass
class ExecutionModel:
    """Per-command simulated CPU cost.

    ``base_ms`` is paid by every command; ``per_variable_ms`` scales with
    the number of variables the command touches (a post that writes many
    followers' timelines costs more than a single read).

    ``per_read_ms`` prices read-only variable accesses separately: a
    command pays ``per_variable_ms`` per *written* variable and
    ``per_read_ms`` per variable it only reads (``getTimeline`` walks
    many timelines but mutates none). The default ``None`` keeps the
    historical behaviour — every variable priced at ``per_variable_ms``
    regardless of access mode — so existing seeded results are
    byte-identical unless the knob is set.
    """

    base_ms: float = 0.08
    per_variable_ms: float = 0.01
    per_read_ms: Optional[float] = None

    def cost(self, command: Command) -> float:
        if self.per_read_ms is None:
            return self.base_ms + self.per_variable_ms * len(command.variables)
        writes = len(command.writes)
        reads = len(command.variables) - writes
        if reads < 0:  # writes is not enforced to be a subset of variables
            reads = 0
        return (self.base_ms + self.per_variable_ms * writes
                + self.per_read_ms * reads)
