"""Command execution cost model.

Replicas execute commands sequentially (the SMR determinism requirement),
each command consuming simulated CPU time. The cost model is the simulation
analogue of the Java prototype's per-command service time, and is what makes
replicas saturate: a partition's maximum throughput is roughly
``1 / cost_ms`` commands per millisecond, before any coordination overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smr.command import Command


@dataclass
class ExecutionModel:
    """Per-command simulated CPU cost.

    ``base_ms`` is paid by every command; ``per_variable_ms`` scales with
    the number of variables the command touches (a post that writes many
    followers' timelines costs more than a single read).
    """

    base_ms: float = 0.08
    per_variable_ms: float = 0.01

    def cost(self, command: Command) -> float:
        return self.base_ms + self.per_variable_ms * len(command.variables)
