"""Clients: submit commands and wait for replies.

:class:`BaseClient` holds the machinery shared by every protocol's client
proxy — reply matching by command id, first-reply-wins deduplication (all
replicas of a partition reply), attempt-tagged retry with timeout/backoff
(:mod:`repro.resilience`), and latency recording. :class:`SmrClient` is the
classic-SMR specialisation that multicasts every command to the single
replica group.

Retry semantics: a resend must use a *fresh* multicast uid — the ordered
logs deduplicate by uid, so re-sending the original uid can never re-elicit
a lost reply. Servers deduplicate by command id instead (reply caches), so
a resent command is executed at most once and its cached reply is re-sent,
re-tagged with the attempt number the client is currently waiting for.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional

from repro.net import Message, Network
from repro.obs.tracing import NULL_TRACER, trace_id_of
from repro.ordering import GroupDirectory, MulticastClient, ProtocolNode
from repro.resilience import RequestTimeout, RetryPolicy, with_timeout
from repro.sim import Environment, Event, LatencyRecorder
from repro.smr.command import Command, Reply, ReplyStatus
from repro.smr.replica import REPLY_KIND


class BaseClient:
    """A client process endpoint with reply matching and retries."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str,
                 latency: Optional[LatencyRecorder] = None,
                 broadcast_submit: bool = False,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 tracer=None):
        self.env = env
        self.directory = directory
        self.node = ProtocolNode(env, network, name)
        # broadcast_submit=True sends submissions to every group member
        # instead of the speaker only — needed when speakers may crash
        # (Paxos-backed deployments under failure injection).
        self.mcast = MulticastClient(self.node, directory,
                                     broadcast_submit=broadcast_submit)
        self.latency = latency if latency is not None else LatencyRecorder(name)
        # tracer=None disables span collection (see repro.obs.tracing);
        # every emission site guards on tracer.enabled, so the disabled
        # path does no bookkeeping at all. The profiler rides on the
        # network (see repro.obs.profile) under the same guard idiom.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = self.node.profiler
        # retry_policy=None keeps the legacy block-forever behaviour.
        self.retry_policy = retry_policy
        # Overload control (repro.qos): the AIMD congestion window is
        # attached by the harness when QoS is enabled; the retry budget
        # arms itself from the policy's default-off knob.
        self.congestion = None
        self.retry_budget = (retry_policy.make_budget()
                             if retry_policy is not None else None)
        self.overload_replies = 0
        self._rng = rng if rng is not None else random.Random(0)
        self._waiting: dict[str, tuple[Event, Optional[int]]] = {}
        self._done: set[str] = set()
        # Fresh-uid suffix counters, one per logical request.
        self._uid_seq: dict[str, int] = {}
        self.timeouts = 0
        self.resends = 0
        self.node.on(REPLY_KIND, self._on_reply)

    @property
    def name(self) -> str:
        return self.node.name

    def _on_reply(self, message: Message) -> None:
        reply: Reply = message.payload
        waiting = self._waiting.get(reply.cid)
        if waiting is None:
            return  # duplicate from another replica; drop
        event, expected_attempt = waiting
        if expected_attempt is not None and reply.attempt != expected_attempt:
            # A straggler from a previous attempt (e.g. a second replica's
            # late retry verdict): it must not answer the current attempt.
            return
        del self._waiting[reply.cid]
        event.succeed(reply)

    def wait_reply(self, cid: str, attempt: Optional[int] = None) -> Event:
        """Event firing with the first :class:`Reply` for ``cid``.

        With ``attempt`` set, only replies echoing that attempt number
        match; replies from older attempts are discarded.
        """
        if cid in self._waiting:
            raise ValueError(f"already waiting for {cid}")
        event = self.env.event()
        self._waiting[cid] = (event, attempt)
        return event

    def cancel_wait(self, cid: str) -> None:
        self._waiting.pop(cid, None)

    # -- tracing -------------------------------------------------------------

    def trace_stage(self, cid: str, name: str, start: float, **meta) -> None:
        """Emit one client *stage* span covering ``[start, now)``.

        Stage spans partition a command's end-to-end latency: every wait
        the client performs while running a command is bracketed by
        exactly one of them (consult, move, execute, retry-wait). The
        profiler taps the same funnel, which is what makes its per-stage
        attributed costs sum exactly to each command's e2e latency.
        """
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(cid), name, self.name, start,
                             self.env.now, stage=True, **meta)
        if self.profiler.enabled:
            self.profiler.stage(trace_id_of(cid), name,
                                self.env.now - start)

    def profile_command(self, cid: str, start: float) -> None:
        """Record a finished command's end-to-end latency (profiler tap).

        Called by every scheme's ``run_command`` next to its
        ``end_trace`` — the reconciliation target the stage costs
        recorded through :meth:`trace_stage` must add up to.
        """
        if self.profiler.enabled:
            self.profiler.command(trace_id_of(cid), self.env.now - start)

    # -- overload control (repro.qos) ----------------------------------------

    def pace(self):
        """Generator: claim an AIMD send slot before issuing a fresh command.

        No-op without an attached congestion window. Open-loop drivers
        call this so client pressure tracks the window rather than the
        raw arrival process.
        """
        if self.congestion is None:
            return
        delay = self.congestion.reserve(self.env.now)
        if delay > 0:
            yield self.env.timeout(delay)

    def _note_success(self) -> None:
        if self.congestion is not None:
            self.congestion.on_success()
        if self.retry_budget is not None:
            self.retry_budget.note_success()

    def _note_congestion(self) -> None:
        if self.congestion is not None:
            self.congestion.on_congestion(self.env.now)

    def overload_backoff_ms(self, attempt: int) -> float:
        """Backoff after an ``OVERLOAD`` reply: window-scaled, jittered."""
        if self.congestion is not None:
            base = self.congestion.backoff_ms()
        elif self.retry_policy is not None:
            return self.retry_policy.backoff_ms(attempt, self._rng)
        else:
            base = 5.0
        return base * (1.0 - 0.5 * self._rng.random())

    def acquire_retry(self, cid: str):
        """Generator: wait until the retry budget grants a withdrawal.

        No-op when the budget knob is off. A denied withdrawal sleeps
        one max-backoff and asks again — the time-based reserve refill
        guarantees eventual progress, so this never gives up.
        """
        if self.retry_budget is None:
            return
        while not self.retry_budget.allow(self.env.now):
            wait = (self.retry_policy.backoff_max_ms
                    if self.retry_policy is not None else 50.0)
            self.node.flight("retry-budget", f"{cid} deferred")
            budget_start = self.env.now
            yield self.env.timeout(wait)
            self.trace_stage(cid, "retry-wait", budget_start)

    # -- resilient requests --------------------------------------------------

    def next_uid(self, base: str) -> str:
        """Fresh multicast uid for a resend of the request behind ``base``.

        The first send keeps ``base`` itself (byte-compatible with the
        non-resilient protocol); resends append ``:r{n}`` so the ordered
        logs treat them as new entries while servers still deduplicate by
        command id.
        """
        n = self._uid_seq.get(base, 0) + 1
        self._uid_seq[base] = n
        return base if n == 1 else f"{base}:r{n}"

    def resilient_request(self, cid: str,
                          send: Callable[[int], None],
                          stage: str = "execute"):
        """Generator: run ``send(attempt)`` until a reply for ``cid`` lands.

        ``send`` multicasts the request tagged with the given attempt
        number (and must use a fresh uid per call, see :meth:`next_uid`).
        With no :class:`RetryPolicy` this is a single send and an unbounded
        wait; with one, timed-out attempts are resent after capped
        exponential backoff with jitter. Raises :class:`RequestTimeout`
        once the policy's attempt budget is exhausted.

        Reply waits are traced as ``stage`` spans and inter-attempt
        backoff as ``retry-wait`` spans (see :meth:`trace_stage`).
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            event = self.wait_reply(cid, attempt=attempt)
            if self.tracer.enabled:
                self.tracer.mark_send(cid, self.env.now)
            wait_start = self.env.now
            send(attempt)
            if attempt > 1:
                self.resends += 1
            fired, reply = yield from with_timeout(
                self.env, event, policy.timeout_ms if policy else None)
            if fired:
                if reply.status is ReplyStatus.OVERLOAD:
                    # Explicit backpressure: the sequencer shed this
                    # attempt before ordering it. Shrink the congestion
                    # window and back off harder than a plain retry.
                    self.trace_stage(cid, stage, wait_start, overload=True)
                    self.overload_replies += 1
                    self._note_congestion()
                    self.node.flight("qos",
                                     f"{cid} overload ({reply.value})")
                    if policy is not None and policy.gives_up(attempt):
                        raise RequestTimeout(cid, attempt)
                    yield from self.acquire_retry(cid)
                    backoff_start = self.env.now
                    yield self.env.timeout(self.overload_backoff_ms(attempt))
                    self.trace_stage(cid, "retry-wait", backoff_start)
                    continue
                self.trace_stage(cid, stage, wait_start)
                self._note_success()
                return reply
            self.trace_stage(cid, stage, wait_start, timeout=True)
            self.cancel_wait(cid)
            self.timeouts += 1
            self._note_congestion()
            self.node.flight("retry", f"{cid} attempt {attempt} timed out")
            if policy.gives_up(attempt):
                raise RequestTimeout(cid, attempt)
            yield from self.acquire_retry(cid)
            backoff_start = self.env.now
            yield self.env.timeout(policy.backoff_ms(attempt, self._rng))
            self.trace_stage(cid, "retry-wait", backoff_start)

    def send_with_retries(self, cid: str, send: Callable[[], None],
                          expected_attempt: Optional[int] = None,
                          stage: str = "execute"):
        """Generator: like :meth:`resilient_request`, but the request's
        attempt tag is fixed by the caller — resends repeat the same
        logical attempt under fresh uids (DS-SMR's algorithm attempts are
        protocol-level; network resends must not consume them)."""
        policy = self.retry_policy
        sends = 0
        while True:
            sends += 1
            event = self.wait_reply(cid, attempt=expected_attempt)
            if self.tracer.enabled:
                self.tracer.mark_send(cid, self.env.now)
            wait_start = self.env.now
            send()
            if sends > 1:
                self.resends += 1
            fired, reply = yield from with_timeout(
                self.env, event, policy.timeout_ms if policy else None)
            if fired:
                if reply.status is ReplyStatus.OVERLOAD:
                    self.trace_stage(cid, stage, wait_start, overload=True)
                    self.overload_replies += 1
                    self._note_congestion()
                    self.node.flight("qos",
                                     f"{cid} overload ({reply.value})")
                    if policy is not None and policy.gives_up(sends):
                        raise RequestTimeout(cid, sends)
                    yield from self.acquire_retry(cid)
                    backoff_start = self.env.now
                    yield self.env.timeout(self.overload_backoff_ms(sends))
                    self.trace_stage(cid, "retry-wait", backoff_start)
                    continue
                self.trace_stage(cid, stage, wait_start)
                self._note_success()
                return reply
            self.trace_stage(cid, stage, wait_start, timeout=True)
            self.cancel_wait(cid)
            self.timeouts += 1
            self._note_congestion()
            self.node.flight("retry", f"{cid} send {sends} timed out")
            if policy.gives_up(sends):
                raise RequestTimeout(cid, sends)
            yield from self.acquire_retry(cid)
            backoff_start = self.env.now
            yield self.env.timeout(policy.backoff_ms(sends, self._rng))
            self.trace_stage(cid, "retry-wait", backoff_start)

    # -- legacy single-shot API ----------------------------------------------

    def submit(self, command: Command, groups: Iterable[str]) -> Event:
        """Multicast ``command`` to ``groups`` and return the reply event."""
        command.client = self.name
        event = self.wait_reply(command.cid)
        self.mcast.multicast(groups, command, size=command.payload_size(),
                             uid=f"am:{command.cid}")
        return event

    def execute(self, command: Command, groups: Iterable[str]):
        """Generator: submit (with retries), wait, record latency.

        Usage inside a client process::

            reply = yield from client.execute(command, ["partition-0"])
        """
        command.client = self.name
        groups = list(groups)
        start = self.env.now
        self.tracer.begin_trace(command.cid, self.name, start, op=command.op)

        def send(attempt: int) -> None:
            self.mcast.multicast(
                groups, {"command": command, "attempt": attempt},
                size=command.payload_size(),
                uid=self.next_uid(f"am:{command.cid}"))

        reply = yield from self.resilient_request(command.cid, send)
        self.latency.record(self.env.now, self.env.now - start)
        self.tracer.end_trace(command.cid, self.env.now,
                              status=reply.status.value)
        self.profile_command(command.cid, start)
        return reply


class SmrClient(BaseClient):
    """Client of a classically replicated (single group) service."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str, group: str,
                 latency: Optional[LatencyRecorder] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 tracer=None):
        super().__init__(env, network, directory, name, latency,
                         retry_policy=retry_policy, rng=rng, tracer=tracer)
        self.group = group

    def run_command(self, command: Command):
        """Generator: execute one command against the replica group."""
        return (yield from self.execute(command, [self.group]))
