"""Clients: submit commands and wait for replies.

:class:`BaseClient` holds the machinery shared by every protocol's client
proxy — reply matching by command id, first-reply-wins deduplication (all
replicas of a partition reply), and latency recording. :class:`SmrClient`
is the classic-SMR specialisation that multicasts every command to the
single replica group.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net import Message, Network
from repro.ordering import GroupDirectory, MulticastClient, ProtocolNode
from repro.sim import Environment, Event, LatencyRecorder
from repro.smr.command import Command, Reply
from repro.smr.replica import REPLY_KIND


class BaseClient:
    """A client process endpoint with reply matching."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str,
                 latency: Optional[LatencyRecorder] = None,
                 broadcast_submit: bool = False):
        self.env = env
        self.directory = directory
        self.node = ProtocolNode(env, network, name)
        # broadcast_submit=True sends submissions to every group member
        # instead of the speaker only — needed when speakers may crash
        # (Paxos-backed deployments under failure injection).
        self.mcast = MulticastClient(self.node, directory,
                                     broadcast_submit=broadcast_submit)
        self.latency = latency if latency is not None else LatencyRecorder(name)
        self._waiting: dict[str, tuple[Event, Optional[int]]] = {}
        self._done: set[str] = set()
        self.node.on(REPLY_KIND, self._on_reply)

    @property
    def name(self) -> str:
        return self.node.name

    def _on_reply(self, message: Message) -> None:
        reply: Reply = message.payload
        waiting = self._waiting.get(reply.cid)
        if waiting is None:
            return  # duplicate from another replica; drop
        event, expected_attempt = waiting
        if expected_attempt is not None and reply.attempt != expected_attempt:
            # A straggler from a previous attempt (e.g. a second replica's
            # late retry verdict): it must not answer the current attempt.
            return
        del self._waiting[reply.cid]
        event.succeed(reply)

    def wait_reply(self, cid: str, attempt: Optional[int] = None) -> Event:
        """Event firing with the first :class:`Reply` for ``cid``.

        With ``attempt`` set, only replies echoing that attempt number
        match; replies from older attempts are discarded.
        """
        if cid in self._waiting:
            raise ValueError(f"already waiting for {cid}")
        event = self.env.event()
        self._waiting[cid] = (event, attempt)
        return event

    def cancel_wait(self, cid: str) -> None:
        self._waiting.pop(cid, None)

    def submit(self, command: Command, groups: Iterable[str]) -> Event:
        """Multicast ``command`` to ``groups`` and return the reply event."""
        command.client = self.name
        event = self.wait_reply(command.cid)
        self.mcast.multicast(groups, command, size=command.payload_size(),
                             uid=f"am:{command.cid}")
        return event

    def execute(self, command: Command, groups: Iterable[str]):
        """Generator: submit, wait, record latency, return the reply.

        Usage inside a client process::

            reply = yield from client.execute(command, ["partition-0"])
        """
        start = self.env.now
        reply = yield self.submit(command, groups)
        self.latency.record(self.env.now, self.env.now - start)
        return reply


class SmrClient(BaseClient):
    """Client of a classically replicated (single group) service."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str, group: str,
                 latency: Optional[LatencyRecorder] = None):
        super().__init__(env, network, directory, name, latency)
        self.group = group

    def run_command(self, command: Command):
        """Generator: execute one command against the replica group."""
        return (yield from self.execute(command, [self.group]))
