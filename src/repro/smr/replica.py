"""Classic SMR replica: full state, totally ordered execution.

Commands arrive through atomic broadcast (single-group atomic multicast) and
are executed sequentially by an executor process that charges the execution
cost model. Every replica sends the reply; clients deduplicate. This is the
non-scalable baseline the paper starts from: adding replicas never increases
throughput because each replica executes every command.
"""

from __future__ import annotations

from typing import Optional

from repro.net import Network
from repro.obs.tracing import NULL_TRACER, trace_id_of
from repro.ordering import (AmcastDelivery, AtomicMulticast, GroupDirectory,
                            ProtocolNode, SequencerLog)
from repro.ordering.log import GroupLog
from repro.resilience import ReplyCache
from repro.sim import Channel, Environment, Interrupted
from repro.smr.command import Command, CommandType, Reply, ReplyStatus
from repro.smr.execution import ExecutionModel
from repro.smr.state_machine import (ExecutionView, StateMachine,
                                     VariableStore)

REPLY_KIND = "reply"


def delivery_command(payload) -> Optional[Command]:
    """The command inside an amcast delivery payload, if any.

    Payloads are resilient-client envelopes (dicts), legacy raw commands,
    or oracle control messages (hints/activations) with no command.
    """
    if isinstance(payload, Command):
        return payload
    if isinstance(payload, dict):
        command = payload.get("command")
        if isinstance(command, Command):
            return command
    return None


class SmrReplica:
    """One replica of a classically replicated state machine."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, group: str, name: str,
                 state_machine: StateMachine,
                 execution: Optional[ExecutionModel] = None,
                 log_factory=SequencerLog,
                 start_gate=None,
                 dedup: bool = True,
                 tracer=None):
        self.env = env
        self.group = group
        self.node = ProtocolNode(env, network, name)
        self.log: GroupLog = log_factory(self.node, directory, group)
        self.amcast = AtomicMulticast(self.node, directory, self.log)
        self.state_machine = state_machine
        self.execution = execution or ExecutionModel()
        self.store = VariableStore()
        self.executed: list[str] = []  # command ids, in execution order
        self._executed_set: set[str] = set()
        # dedup=False (test-only) lets the chaos sentinel prove the
        # checkers catch duplicate execution when resends are not filtered.
        self.replies = ReplyCache(enabled=dedup)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.queue_peak = 0
        # Overload control (repro.qos), attached by the harness; None
        # keeps the intake/executor hot paths in their pre-QoS shape.
        self.qos = None
        # Write-ahead log (repro.store), attached by the harness; None
        # keeps the executor free of durability barriers.
        self.wal = None
        # Parallel worker pool (repro.smr.parallel), attached by the
        # harness; None keeps the executor on the sequential fast path.
        self.parallel = None
        self._enqueue_times: dict[str, float] = {}
        self._deliveries = Channel(env, name=f"{name}/deliveries")
        self.amcast.on_deliver(self._enqueue)
        # A recovering replica's executor must not touch the store until
        # the state snapshot is installed; its gate event holds it back.
        self._start_gate = start_gate
        self._executor = env.process(self._execute_loop(),
                                     name=f"{name}/executor")

    def crash(self) -> None:
        self.node.crash()
        self._executor.interrupt("crash")

    def load_state(self, contents: dict) -> None:
        """Install initial service state (full copy on every replica)."""
        for key, value in contents.items():
            self.store.write(key, value)

    # -- delivery intake -------------------------------------------------------

    def _enqueue(self, delivery: AmcastDelivery) -> None:
        """Queue an ordered delivery for the executor (tracing tap).

        Emits the *order* server span (client submit -> total-order
        delivery) and stamps the enqueue time so the executor can emit a
        *queue* span for time spent behind earlier commands. Also tracks
        the peak executor-queue depth for the metrics registry; a direct
        handoff to a waiting executor counts as depth 1.
        """
        if self.tracer.enabled:
            command = delivery_command(delivery.payload)
            if command is not None:
                sent = self.tracer.sent_at(command.cid)
                if sent is not None:
                    self.tracer.span(trace_id_of(command.cid), "order",
                                     self.node.name, sent, self.env.now,
                                     uid=delivery.uid)
                    if self.node.profiler.enabled:
                        self.node.profiler.account(
                            self.node.name, "order", self.env.now - sent)
        if (self.tracer.enabled or self.node.profiler.enabled
                or self.qos is not None):
            self._enqueue_times[delivery.uid] = self.env.now
        self._deliveries.put(delivery)
        depth = len(self._deliveries) or 1
        if depth > self.queue_peak:
            self.queue_peak = depth

    # -- overload control (repro.qos) ----------------------------------------

    def queue_depth(self) -> int:
        """Current executor-queue depth (the adaptive batching signal)."""
        return len(self._deliveries)

    def attach_qos(self, admission, batcher=None, classify=None) -> None:
        """Attach overload control (see :meth:`SsmrServer.attach_qos`)."""
        self.qos = admission
        if hasattr(self.log, "attach_qos"):
            self.log.attach_qos(admission=admission, batcher=batcher,
                                on_shed=self._shed_reply, classify=classify)

    def _shed_reply(self, entry: dict, reason: str) -> None:
        """Backpressure for a shed entry: explicit OVERLOAD, not silence."""
        payload = entry.get("payload")
        command = delivery_command(payload)
        if command is None or not command.client:
            return
        attempt = (payload.get("attempt", 1)
                   if isinstance(payload, dict) else 1)
        self.node.send(command.client, REPLY_KIND, Reply(
            cid=command.cid, status=ReplyStatus.OVERLOAD, value=reason,
            sender=self.node.name, partition=self.group,
            attempt=attempt), size=96)
        self.node.flight("qos", f"shed {command.cid} ({reason})")

    # -- parallel execution (repro.smr.parallel) ------------------------------

    def attach_parallel(self, pool) -> None:
        """Arm the conflict-aware worker pool (see repro.smr.parallel)."""
        self.parallel = pool

    def _dispatch_parallel(self, command: Command, attempt: int,
                           enqueued) -> None:
        """Dispatch one access command onto the worker pool.

        The slot is fully determined at dispatch (costs are deterministic),
        so the executor schedules the apply + reply as a callback at the
        finish time and immediately dequeues the next entry — this is what
        lets non-conflicting commands overlap. ``executed`` is appended
        *now*, in log order, keeping the cross-replica execution-order
        invariant independent of finish interleavings.
        """
        env = self.env
        pool = self.parallel
        if self.replies.enabled and command.cid in self._executed_set:
            slot = pool.inflight_slot(command.cid)
            if slot is None:
                cached = self.replies.lookup(command.cid, attempt)
                if cached is not None and command.client:
                    self.node.send(command.client, REPLY_KIND, cached,
                                   size=128)
            else:
                # The original is still on a core: its reply does not
                # exist yet, so resend it when the original lands.
                def resend():
                    if self.node.crashed:
                        return
                    cached = self.replies.lookup(command.cid, attempt)
                    if cached is not None and command.client:
                        self.node.send(command.client, REPLY_KIND, cached,
                                       size=128)
                env.schedule_callback(slot.finish - env.now, resend)
            return
        slot = pool.dispatch(command, self.execution.cost(command))
        self.executed.append(command.cid)
        self._executed_set.add(command.cid)
        if enqueued is not None and slot.start > enqueued:
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "queue",
                                 self.node.name, enqueued, slot.start)
        if self.node.profiler.enabled and slot.stall > 0:
            self.node.profiler.account(self.node.name, "exec.queue",
                                       slot.stall)

        def complete():
            if self.node.crashed:
                return
            reply = self._apply(command)
            reply.attempt = attempt
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "execute",
                                 self.node.name, slot.start, env.now,
                                 core=slot.core)
            if self.node.profiler.enabled:
                self.node.profiler.account(self.node.name,
                                           f"exec.run.c{slot.core}",
                                           slot.cost)
            self.replies.store(command.cid, reply)
            if command.client:
                self.node.send(command.client, REPLY_KIND, reply, size=128)
            pool.complete(command.cid)

        env.schedule_callback(slot.finish - env.now, complete)

    def _execute_loop(self):
        try:
            if self._start_gate is not None:
                yield self._start_gate
            while True:
                delivery: AmcastDelivery = yield self._deliveries.get()
                if self.wal is not None:
                    # Durability barrier: the ordered entry must be
                    # fsynced before its effects (and reply) can be
                    # observed by anyone (see repro.store).
                    yield self.wal.sync_barrier()
                payload = delivery.payload
                if isinstance(payload, dict):    # resilient-client envelope
                    command: Command = payload["command"]
                    attempt = payload.get("attempt", 1)
                else:                            # legacy raw Command
                    command = payload
                    attempt = 1
                enqueued = None
                if (self.tracer.enabled or self.node.profiler.enabled
                        or self.qos is not None):
                    enqueued = self._enqueue_times.pop(delivery.uid, None)
                    if self.qos is not None and enqueued is not None:
                        self.qos.note_sojourn(self.env.now,
                                              self.env.now - enqueued)
                if self.parallel is not None:
                    if command.ctype is CommandType.ACCESS:
                        self._dispatch_parallel(command, attempt, enqueued)
                        continue
                    # Creates/deletes serialize against everything: wait
                    # for the pool to drain, then run the sequential path.
                    yield from self.parallel.drain()
                if enqueued is not None and self.env.now > enqueued:
                    if self.tracer.enabled:
                        self.tracer.span(trace_id_of(command.cid),
                                         "queue", self.node.name,
                                         enqueued, self.env.now)
                    if self.node.profiler.enabled:
                        self.node.profiler.account(
                            self.node.name, "queue",
                            self.env.now - enqueued)
                if self.replies.enabled and command.cid in self._executed_set:
                    # Already covered: a client resend, or recovery-snapshot
                    # overlap with backfilled log entries. Re-executing
                    # would double-apply the command's writes; resend the
                    # cached reply instead (the resend's reply may have
                    # been the message that was lost).
                    cached = self.replies.lookup(command.cid, attempt)
                    if cached is not None and command.client:
                        self.node.send(command.client, REPLY_KIND, cached,
                                       size=128)
                    continue
                exec_start = self.env.now
                yield self.env.timeout(self.execution.cost(command))
                reply = self._apply(command)
                reply.attempt = attempt
                if self.parallel is not None:
                    self.parallel.scheduler.note_serial(
                        self.env.now - exec_start)
                if self.tracer.enabled:
                    self.tracer.span(trace_id_of(command.cid), "execute",
                                     self.node.name, exec_start, self.env.now)
                if self.node.profiler.enabled:
                    self.node.profiler.account(self.node.name, "execute",
                                               self.env.now - exec_start)
                self.executed.append(command.cid)
                self._executed_set.add(command.cid)
                self.replies.store(command.cid, reply)
                if command.client:
                    self.node.send(command.client, REPLY_KIND, reply,
                                   size=128)
        except Interrupted:
            return

    def _apply(self, command: Command) -> Reply:
        try:
            if command.ctype.value == "create":
                key = command.variables[0]
                self.store.create(
                    key, self.state_machine.initial_value(key, command.args))
                value = "created"
            elif command.ctype.value == "delete":
                self.store.delete(command.variables[0])
                value = "deleted"
            else:
                view = ExecutionView(self.store)
                value = self.state_machine.apply(command, view)
            status = ReplyStatus.OK
        except KeyError as error:
            status, value = ReplyStatus.NOK, str(error)
        return Reply(cid=command.cid, status=status, value=value,
                     sender=self.node.name, partition=self.group)
