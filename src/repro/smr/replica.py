"""Classic SMR replica: full state, totally ordered execution.

Commands arrive through atomic broadcast (single-group atomic multicast) and
are executed sequentially by an executor process that charges the execution
cost model. Every replica sends the reply; clients deduplicate. This is the
non-scalable baseline the paper starts from: adding replicas never increases
throughput because each replica executes every command.
"""

from __future__ import annotations

from typing import Optional

from repro.net import Network
from repro.ordering import (AmcastDelivery, AtomicMulticast, GroupDirectory,
                            ProtocolNode, SequencerLog)
from repro.ordering.log import GroupLog
from repro.resilience import ReplyCache
from repro.sim import Channel, Environment, Interrupted
from repro.smr.command import Command, Reply, ReplyStatus
from repro.smr.execution import ExecutionModel
from repro.smr.state_machine import (ExecutionView, StateMachine,
                                     VariableStore)

REPLY_KIND = "reply"


class SmrReplica:
    """One replica of a classically replicated state machine."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, group: str, name: str,
                 state_machine: StateMachine,
                 execution: Optional[ExecutionModel] = None,
                 log_factory=SequencerLog,
                 start_gate=None,
                 dedup: bool = True):
        self.env = env
        self.group = group
        self.node = ProtocolNode(env, network, name)
        self.log: GroupLog = log_factory(self.node, directory, group)
        self.amcast = AtomicMulticast(self.node, directory, self.log)
        self.state_machine = state_machine
        self.execution = execution or ExecutionModel()
        self.store = VariableStore()
        self.executed: list[str] = []  # command ids, in execution order
        self._executed_set: set[str] = set()
        # dedup=False (test-only) lets the chaos sentinel prove the
        # checkers catch duplicate execution when resends are not filtered.
        self.replies = ReplyCache(enabled=dedup)
        self._deliveries = Channel(env, name=f"{name}/deliveries")
        self.amcast.on_deliver(self._deliveries.put)
        # A recovering replica's executor must not touch the store until
        # the state snapshot is installed; its gate event holds it back.
        self._start_gate = start_gate
        self._executor = env.process(self._execute_loop(),
                                     name=f"{name}/executor")

    def crash(self) -> None:
        self.node.crash()
        self._executor.interrupt("crash")

    def load_state(self, contents: dict) -> None:
        """Install initial service state (full copy on every replica)."""
        for key, value in contents.items():
            self.store.write(key, value)

    def _execute_loop(self):
        try:
            if self._start_gate is not None:
                yield self._start_gate
            while True:
                delivery: AmcastDelivery = yield self._deliveries.get()
                payload = delivery.payload
                if isinstance(payload, dict):    # resilient-client envelope
                    command: Command = payload["command"]
                    attempt = payload.get("attempt", 1)
                else:                            # legacy raw Command
                    command = payload
                    attempt = 1
                if self.replies.enabled and command.cid in self._executed_set:
                    # Already covered: a client resend, or recovery-snapshot
                    # overlap with backfilled log entries. Re-executing
                    # would double-apply the command's writes; resend the
                    # cached reply instead (the resend's reply may have
                    # been the message that was lost).
                    cached = self.replies.lookup(command.cid, attempt)
                    if cached is not None and command.client:
                        self.node.send(command.client, REPLY_KIND, cached,
                                       size=128)
                    continue
                yield self.env.timeout(self.execution.cost(command))
                reply = self._apply(command)
                reply.attempt = attempt
                self.executed.append(command.cid)
                self._executed_set.add(command.cid)
                self.replies.store(command.cid, reply)
                if command.client:
                    self.node.send(command.client, REPLY_KIND, reply,
                                   size=128)
        except Interrupted:
            return

    def _apply(self, command: Command) -> Reply:
        try:
            if command.ctype.value == "create":
                key = command.variables[0]
                self.store.create(
                    key, self.state_machine.initial_value(key, command.args))
                value = "created"
            elif command.ctype.value == "delete":
                self.store.delete(command.variables[0])
                value = "deleted"
            else:
                view = ExecutionView(self.store)
                value = self.state_machine.apply(command, view)
            status = ReplyStatus.OK
        except KeyError as error:
            status, value = ReplyStatus.NOK, str(error)
        return Reply(cid=command.cid, status=status, value=value,
                     sender=self.node.name, partition=self.group)
