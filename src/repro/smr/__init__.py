"""Classic State Machine Replication (Section 3.1 of the paper).

Every replica holds the full service state and executes the same totally
ordered sequence of deterministic commands, implemented here over the atomic
broadcast special case of :mod:`repro.ordering`. This package also defines
the command and state-machine abstractions shared by S-SMR and DS-SMR.
"""

from repro.smr.command import Command, CommandType, Reply, ReplyStatus, new_command_id
from repro.smr.state_machine import (
    KeyValueStateMachine,
    StateMachine,
    VariableStore,
)
from repro.smr.execution import ExecutionModel
from repro.smr.parallel import (ConflictScheduler, Dispatch, ExecutionConfig,
                                ParallelExecutionModel)
from repro.smr.replica import SmrReplica
from repro.smr.recovery import (RecoveryHost, RecoveringReplica,
                                recover_replica)
from repro.smr.client import BaseClient, SmrClient
from repro.smr.probject import (ObjectDirectory, ObjectStateMachine,
                                PRObject, object_key)

__all__ = [
    "BaseClient",
    "Command",
    "CommandType",
    "ConflictScheduler",
    "Dispatch",
    "ExecutionConfig",
    "ExecutionModel",
    "ParallelExecutionModel",
    "KeyValueStateMachine",
    "ObjectDirectory",
    "ObjectStateMachine",
    "PRObject",
    "RecoveringReplica",
    "RecoveryHost",
    "Reply",
    "ReplyStatus",
    "SmrClient",
    "SmrReplica",
    "StateMachine",
    "VariableStore",
    "recover_replica",
    "new_command_id",
    "object_key",
]
