"""Conflict-aware parallel command execution (P-SMR-style worker pools).

Classic SMR executes the ordered log on one simulated core, so a hot
partition saturates at roughly ``1 / cost_ms`` commands per millisecond no
matter how capable the replica's hardware is. "Rethinking State-Machine
Replication for Parallelism" (Marandi et al.) observes that two commands
whose read/write sets do not conflict can execute concurrently without
breaking SMR's determinism guarantee — their applies commute, so every
interleaving yields the same state. DS-SMR already carries per-command
variable and write sets (the oracle contract), which makes the conflict
relation first-class here.

This module supplies the engine the four schemes share:

* :class:`ExecutionConfig` — the opt-in knob set carried by
  ``ClusterConfig.parallel`` (``None`` keeps every executor byte-identical
  to the sequential code path).
* :class:`ConflictScheduler` — a pure, deterministic dependency scheduler:
  given the dispatch time and a command's read/write sets it computes the
  earliest conflict-respecting ``(start, finish, core)`` slot over ``N``
  simulated cores.
* :class:`ParallelExecutionModel` — the per-replica worker pool: wraps the
  scheduler with in-flight bookkeeping, a drain barrier for commands that
  must serialize against everything (moves, creates/deletes, fallback and
  multi-partition accesses, reconfiguration fences), and the ``exec.*``
  stats the metrics registry scrapes.

Why this stays deterministic (the full argument lives in DESIGN.md): two
commands overlap in time only when their read/write sets are disjoint, so
every pair of *conflicting* commands executes in log order on all replicas.
The parallel schedule is therefore conflict-equivalent to the sequential
log-order schedule; since non-conflicting applies commute, each replica's
state and reply values equal the sequential execution's — byte for byte.
The execution *history* list is appended at dispatch time (log order), so
the cross-replica ``executed`` comparison of the invariant checker is
unchanged as well.

Everything is virtual-time analytic: costs are deterministic, so the slot
of a command is fully known at dispatch. The executor never blocks on a
parallel-eligible command — apply and reply are scheduled as callbacks at
the computed finish time — which is what converts idle cores into
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import Environment, Event


@dataclass(frozen=True)
class ExecutionConfig:
    """Opt-in parallel execution knobs (``ClusterConfig.parallel``).

    ``workers`` is the number of simulated cores per replica. ``1`` is a
    useful degenerate case: scheduling runs through the parallel engine
    but every command serializes, which the equivalence tests use to show
    the engine itself adds no virtual time.

    ``conservative`` treats every declared variable as written, collapsing
    the conflict relation to "any shared variable" — the safe fallback for
    workloads whose commands under-declare their write sets.
    """

    workers: int = 2
    conservative: bool = False

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass(frozen=True)
class Dispatch:
    """The slot the scheduler assigned to one command."""

    start: float    # virtual ms the command begins executing
    finish: float   # virtual ms the command's apply + reply become visible
    core: int       # simulated core index (0-based)
    cost: float     # execution cost charged (finish - start)
    stall: float    # wait for a core / conflicting predecessor before start


class ConflictScheduler:
    """Deterministic dependency scheduler over ``workers`` simulated cores.

    Pure bookkeeping — no events, no RNG. For each dispatched command it
    tracks, per variable, the finish time of the last dispatched writer and
    the latest finish among dispatched readers. A new command may start
    only once every conflicting predecessor has finished:

    * RAW — it reads a variable a predecessor writes,
    * WAW — it writes a variable a predecessor writes,
    * WAR — it writes a variable a predecessor reads.

    Commands are dispatched in log order, so these three rules serialize
    every conflicting pair in log order — the determinism invariant.
    Among the cores, the earliest-free one wins, lowest index breaking
    ties, so the assignment is a pure function of the dispatch history.
    """

    __slots__ = ("workers", "cores", "_write_ready", "_read_ready",
                 "commands", "barriers", "stall_ms", "busy_ms", "serial_ms")

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cores = [0.0] * workers        # busy-until, per core
        self._write_ready: dict = {}        # key -> last writer's finish
        self._read_ready: dict = {}         # key -> latest reader finish
        self.commands = 0                   # parallel dispatches
        self.barriers = 0                   # serializing drains
        self.stall_ms = 0.0                 # conflict + core wait, summed
        self.busy_ms = [0.0] * workers      # execution time, per core
        self.serial_ms = 0.0                # barriered (sequential) cost

    def plan(self, now: float, reads, writes, cost: float) -> Dispatch:
        """Assign the earliest conflict-respecting slot; update state."""
        ready = now
        write_ready = self._write_ready
        read_ready = self._read_ready
        for key in reads:                       # RAW (covers WAW: writes
            when = write_ready.get(key)         # are declared in reads)
            if when is not None and when > ready:
                ready = when
        for key in writes:                      # WAR
            when = read_ready.get(key)
            if when is not None and when > ready:
                ready = when
        core = 0
        free_at = self.cores[0]
        for index in range(1, self.workers):    # earliest-free, lowest index
            when = self.cores[index]
            if when < free_at:
                core, free_at = index, when
        start = ready if ready > free_at else free_at
        finish = start + cost
        self.cores[core] = finish
        for key in writes:
            write_ready[key] = finish
        for key in reads:
            if finish > read_ready.get(key, 0.0):
                read_ready[key] = finish
        self.commands += 1
        self.stall_ms += start - now
        self.busy_ms[core] += cost
        return Dispatch(start=start, finish=finish, core=core, cost=cost,
                        stall=start - now)

    def note_barrier(self, now: float) -> None:
        """Everything in flight has drained: reset the conflict horizon.

        Called with no command in flight, so every tracked finish time is
        in the past; clearing the maps bounds their size without changing
        any future decision.
        """
        self.barriers += 1
        self._write_ready.clear()
        self._read_ready.clear()
        for index in range(self.workers):
            if self.cores[index] < now:
                self.cores[index] = now

    def note_serial(self, cost: float) -> None:
        """Account a barriered command executed on the sequential path."""
        self.serial_ms += cost


class ParallelExecutionModel:
    """A replica's simulated worker pool.

    Owns one :class:`ConflictScheduler` plus the runtime bookkeeping the
    executor loops need: which command ids are still in flight (so a
    duplicate delivery of a running command can re-send its reply at the
    original finish instead of re-executing), and a drain barrier for the
    command classes that must serialize against everything.

    One instance per server object — replicas are separate machines, and a
    replacement server built by recovery gets a fresh pool.
    """

    def __init__(self, env: Environment, config: Optional[ExecutionConfig]
                 = None, workers: Optional[int] = None):
        if config is None:
            config = ExecutionConfig(workers=workers if workers is not None
                                     else 2)
        elif workers is not None and workers != config.workers:
            raise ValueError("pass workers either directly or via config")
        self.env = env
        self.config = config
        self.scheduler = ConflictScheduler(config.workers)
        # cid -> (slot, delivery), insertion order == log order. The
        # delivery is kept so a checkpoint captured mid-flight can
        # re-queue the command instead of losing its effects.
        self._inflight: dict = {}
        self._drain_waiters: list[Event] = []

    @property
    def workers(self) -> int:
        return self.config.workers

    @property
    def pending(self) -> int:
        """Number of commands dispatched but not yet finished."""
        return len(self._inflight)

    # -- dispatch ----------------------------------------------------------

    def conflict_sets(self, command) -> tuple:
        """The (reads, writes) the conflict relation uses for ``command``.

        ``reads`` is the full declared variable set (a writer also reads,
        so RAW against it subsumes WAW); ``writes`` collapses to the full
        set under :attr:`ExecutionConfig.conservative`.
        """
        reads = command.variables
        writes = reads if self.config.conservative else command.writes
        return reads, writes

    def dispatch(self, command, cost: float, delivery=None) -> Dispatch:
        """Assign ``command`` its slot and mark it in flight."""
        reads, writes = self.conflict_sets(command)
        slot = self.scheduler.plan(self.env.now, reads, writes, cost)
        self._inflight[command.cid] = (slot, delivery)
        return slot

    def complete(self, cid: str) -> None:
        """Mark a dispatched command finished (called at its finish time)."""
        self._inflight.pop(cid, None)
        if not self._inflight and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for event in waiters:
                event.succeed()

    def inflight_slot(self, cid: str) -> Optional[Dispatch]:
        """The slot of an in-flight command, or None once it finished."""
        entry = self._inflight.get(cid)
        return entry[0] if entry is not None else None

    def inflight_cids(self) -> list:
        """Command ids in flight, in dispatch (= log) order.

        A state capture (checkpoint, recovery snapshot) taken mid-flight
        must treat these as *not yet executed*: they sit in ``executed``
        already (appended at dispatch) but their store effects land only
        at their finish times.
        """
        return list(self._inflight)

    def inflight_deliveries(self) -> list:
        """The tracked deliveries in flight, in dispatch (= log) order."""
        return [entry[1] for entry in self._inflight.values()
                if entry[1] is not None]

    # -- barriers ----------------------------------------------------------

    def drain(self):
        """Generator: wait until every in-flight command has finished.

        Barriered command classes (moves, creates/deletes, fallback and
        multi-partition accesses, reconfiguration fences) run this first:
        they observe — and are observed by — *all* log predecessors, so
        they serialize against the whole pool. While the sequential
        handler then runs, the executor loop is blocked, which is the
        other half of the barrier: nothing dispatches past it.
        """
        while self._inflight:
            event = Event(self.env)
            self._drain_waiters.append(event)
            yield event
        self.scheduler.note_barrier(self.env.now)

    # -- stats -------------------------------------------------------------

    def stats(self, now: Optional[float] = None) -> dict:
        """Scrape-time ``exec.*`` snapshot (virtual-time, deterministic)."""
        sched = self.scheduler
        if now is None:
            now = self.env.now
        busy = sum(sched.busy_ms)
        span = now * sched.workers
        run_ms = busy + sched.serial_ms
        return {
            "workers": sched.workers,
            "commands": sched.commands,
            "barriers": sched.barriers,
            "busy_ms": round(busy, 6),
            "serial_ms": round(sched.serial_ms, 6),
            "stall_ms": round(sched.stall_ms, 6),
            "utilization": round(busy / span, 6) if span > 0 else 0.0,
            "stall_fraction": (round(sched.stall_ms / (sched.stall_ms
                                                       + run_ms), 6)
                               if sched.stall_ms + run_ms > 0 else 0.0),
        }
