"""Application state machines and variable stores.

A :class:`StateMachine` is the deterministic application logic: it applies a
command against a :class:`VariableStore` and returns a reply value. The same
state machine class runs unchanged on classic SMR (full state), S-SMR and
DS-SMR (partitioned state) — mirroring the paper's Eyrie design where "the
developer programs for classical state machine replication" and the library
hides partitioning.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Optional

from repro.smr.command import Command

Key = Hashable


class VariableStore:
    """A mutable set of named state variables.

    For partitioned protocols each partition holds one store containing only
    its own variables; the server proxy materialises remote variables into a
    scratch overlay before execution (see :mod:`repro.ssmr.server`).
    """

    def __init__(self):
        self._data: dict[Key, Any] = {}

    def __contains__(self, key: Key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterable[Key]:
        return self._data.keys()

    def read(self, key: Key) -> Any:
        if key not in self._data:
            raise KeyError(f"variable not in store: {key!r}")
        return self._data[key]

    def write(self, key: Key, value: Any) -> None:
        self._data[key] = value

    def create(self, key: Key, value: Any = None) -> None:
        if key in self._data:
            raise KeyError(f"variable already exists: {key!r}")
        self._data[key] = value

    def delete(self, key: Key) -> None:
        if key not in self._data:
            raise KeyError(f"variable not in store: {key!r}")
        del self._data[key]

    def pop(self, key: Key) -> Any:
        """Remove and return a variable's value (used by move commands)."""
        return self._data.pop(key)

    def snapshot(self) -> dict:
        """Deep-ish copy of the data for checkpoint comparisons in tests."""
        import copy
        return copy.deepcopy(self._data)


class ExecutionView:
    """The store view a state machine executes against.

    Combines the partition's local store with an overlay of variables
    received from remote partitions. Writes go to the overlay *and*, for
    locally owned variables, to the local store — a write to a variable
    owned elsewhere takes effect at its owning partition when that partition
    executes the same command (deterministically producing the same value).
    """

    def __init__(self, local: VariableStore, remote: Optional[dict] = None):
        self._local = local
        self._remote = dict(remote or {})
        self._written: dict[Key, Any] = {}

    def __contains__(self, key: Key) -> bool:
        return key in self._written or key in self._remote or key in self._local

    def read(self, key: Key) -> Any:
        if key in self._written:
            return self._written[key]
        if key in self._local:
            return self._local.read(key)
        if key in self._remote:
            return self._remote[key]
        raise KeyError(f"variable not available to this execution: {key!r}")

    def write(self, key: Key, value: Any) -> None:
        self._written[key] = value
        if key in self._local:
            self._local.write(key, value)

    @property
    def written(self) -> dict:
        return dict(self._written)


class StateMachine(ABC):
    """Deterministic application logic."""

    @abstractmethod
    def apply(self, command: Command, view: ExecutionView) -> Any:
        """Execute ``command`` against ``view``; return the reply value.

        Must be deterministic: same command + same view contents => same
        writes and same reply on every replica.
        """

    def initial_value(self, key: Key, args: dict) -> Any:
        """Value a freshly created variable starts with (create commands)."""
        return args.get("value")


class KeyValueStateMachine(StateMachine):
    """A small key-value service; the default application for tests.

    Operations: ``get``, ``put``, ``append``, ``incr``, ``swap`` (reads two
    variables and exchanges them — a natural multi-partition command),
    ``sum`` (reads many variables).
    """

    def apply(self, command: Command, view: ExecutionView) -> Any:
        op, args = command.op, command.args
        if op == "get":
            return view.read(args["key"])
        if op == "put":
            view.write(args["key"], args["value"])
            return "ok"
        if op == "append":
            current = view.read(args["key"]) or []
            view.write(args["key"], current + [args["value"]])
            return "ok"
        if op == "incr":
            current = view.read(args["key"]) or 0
            view.write(args["key"], current + 1)
            return current + 1
        if op == "swap":
            a, b = args["a"], args["b"]
            va, vb = view.read(a), view.read(b)
            view.write(a, vb)
            view.write(b, va)
            return "ok"
        if op == "sum":
            return sum(view.read(k) or 0 for k in args["keys"])
        if op == "noop":
            return "ok"
        raise ValueError(f"unknown operation: {op!r}")
