"""Cluster-side executor and MTTR ledger for the self-healing loop.

One :class:`ClusterHealer` per deployment wires everything together:

* attaches a :class:`~repro.heal.heartbeat.HeartbeatEmitter` to every
  monitored node (partition replicas, oracle replicas, and the
  supervisors themselves);
* builds the supervisor group on a *private* heal-group directory, so
  the cluster's own :class:`~repro.ordering.GroupDirectory` — and with
  it the invariant checkers and reconfiguration machinery — never sees
  the heal group;
* executes decided recovery actions exactly once (all supervisors apply
  the same ordered log and forward every action here; the healer dedups
  by action uid);
* keeps the MTTR books: suspicion episodes from confirmation to the
  first heartbeat of the recovered node, detection latency, false
  positives, fence/replace/reconnect counts, and per-partition
  unavailability windows — all surfaced through the cluster's
  :class:`~repro.obs.MetricsRegistry` and a canonical :meth:`snapshot`.

Safety guards baked into execution:

* **Fence before replace.** If a confirmed victim's server object is in
  fact still alive (wrong suspicion), it is object-crashed *first*, so
  the replacement is the only holder of the name — a healed-but-fenced
  node can never split-brain with its replacement.
* **Replace cooldown.** A node is fenced-and-replaced at most once per
  ``replace_cooldown_ms``; re-confirmations inside the window (e.g. a
  delay-spiked but alive replica, or a replacement whose state transfer
  is still riding out a partition) are suppressed, never double-replaced.
* **Reconnect is probe-safe.** The reconnect action only touches nodes
  the network actually has marked crashed; on anything else it is a
  no-op, so it can never disturb a healthy node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.faults import _node_of, reconnect_victim, recover_victim
from repro.heal.heartbeat import HeartbeatEmitter
from repro.heal.supervisor import HEAL_GROUP, RecoverySupervisor
from repro.heal.timing import DEFAULT_TIMING, TimingProfile
from repro.ordering.group import GroupDirectory


@dataclass
class Episode:
    """One suspicion episode: confirmation → first heartbeat back."""

    victim: str
    role: str
    group: str
    opened_at: float      # confirmation time
    silent_ms: float      # silence accrued before confirmation
    action: Optional[str] = None
    action_at: Optional[float] = None
    attempts: int = 0
    closed_at: Optional[float] = None
    false_positive: bool = False

    def to_dict(self) -> dict:
        return {
            "victim": self.victim, "role": self.role, "group": self.group,
            "opened_at": round(self.opened_at, 3),
            "silent_ms": round(self.silent_ms, 3),
            "action": self.action,
            "attempts": self.attempts,
            "closed_at": (round(self.closed_at, 3)
                          if self.closed_at is not None else None),
            "false_positive": self.false_positive,
        }


class ClusterHealer:
    """Autonomous failure detection + recovery for one cluster."""

    def __init__(self, cluster, timing: TimingProfile = DEFAULT_TIMING,
                 num_supervisors: int = 3,
                 spare_partition: Optional[str] = None):
        self.cluster = cluster
        self.env = cluster.env
        self.timing = timing
        self.spare_partition = spare_partition

        # Role map: node name -> (role, group). Built before the
        # supervisors so they can prime their detectors from it.
        self.roles: dict[str, tuple[str, str]] = {}
        for partition in cluster.partitions:
            speaker = cluster.directory.speaker(partition)
            for member in cluster.directory.members(partition):
                role = "speaker" if member == speaker else "follower"
                self.roles[member] = (role, partition)
        for oracle in cluster.oracles:
            name = oracle.node.name
            self.roles[name] = ("oracle",
                                cluster.directory.group_of(name) or "oracle")
        names = tuple(f"h{i}" for i in range(num_supervisors))
        for name in names:
            self.roles[name] = ("supervisor", HEAL_GROUP)

        # Private heal-group directory + supervisor nodes on the existing
        # switched topology (alternating switches, like server groups).
        self.directory = GroupDirectory({HEAL_GROUP: list(names)})
        for index, name in enumerate(names):
            cluster.topology.attach(name, index % 2)
        self.supervisors = [
            RecoverySupervisor(self.env, cluster.network, self.directory,
                               name, self, timing)
            for name in names]

        # Heartbeats from every monitored node to every supervisor.
        self.emitters: dict[str, HeartbeatEmitter] = {}
        for peer, (role, group) in sorted(self.roles.items()):
            if role == "supervisor":
                continue
            self._emit_from(_node_of(cluster, peer), role, group)
        for supervisor in self.supervisors:
            self._emit_from(supervisor.node, "supervisor", HEAL_GROUP)

        # MTTR ledger.
        self.episodes: list[Episode] = []
        self._open: dict[str, Episode] = {}
        self._replaced_at: dict[str, float] = {}
        self._executed_uids: set[str] = set()
        self._lease_epochs: set[int] = set()
        self.leases: list[tuple[int, str]] = []
        self._window_open: dict[str, float] = {}
        self._window_total: dict[str, float] = {}
        self._window_count: dict[str, int] = {}
        self.timeline: list[tuple[float, str]] = []
        self._spare_joined = False
        self.stopped = False

        reg = cluster.registry
        self.detections = reg.counter("heal.detections")
        self.false_suspicions = reg.counter("heal.false_suspicions")
        self.fences = reg.counter("heal.fences")
        self.replaces = reg.counter("heal.replaces")
        self.reconnects = reg.counter("heal.reconnects")
        self.suppressed = reg.counter("heal.suppressed")
        self.deferred = reg.counter("heal.deferred")
        self.spare_joins = reg.counter("heal.spare_joins")
        self.recovery_failures = reg.counter("heal.recovery_failures")
        self.detect_hist = reg.histogram("heal.detect_ms")
        self.repair_hist = reg.histogram("heal.repair_ms")
        self.mttr_hist = reg.histogram("heal.mttr_ms")
        self.unavail_hist = reg.histogram("heal.unavailability_ms")
        reg.gauge("heal.epoch", lambda: max(
            (s.epoch for s in self.supervisors), default=0))

        # A peer state transfer turning terminal (every source peer gone)
        # must escalate, never hang: the cluster fans terminal recovery
        # failures out to these hooks.
        cluster.recovery_failure_hooks.append(self._on_recovery_failure)

    # -- wiring ----------------------------------------------------------

    def _emit_from(self, node, role: str, group: str) -> None:
        old = self.emitters.get(node.name)
        if old is not None:
            old.stop()
        self.emitters[node.name] = HeartbeatEmitter(
            self.env, node, role, group,
            [s.node.name for s in self.supervisors],
            self.timing.heartbeat_interval_ms)

    def monitor_partition(self, partition: str) -> None:
        """Start monitoring a partition added after construction."""
        speaker = self.cluster.directory.speaker(partition)
        for member in self.cluster.directory.members(partition):
            role = "speaker" if member == speaker else "follower"
            self.roles[member] = (role, partition)
            self._emit_from(_node_of(self.cluster, member), role, partition)
            for supervisor in self.supervisors:
                supervisor.monitor(member)

    def stop(self) -> None:
        """Tear the healing loop down (ends all of its timers)."""
        if self.stopped:
            return
        self.stopped = True
        for emitter in self.emitters.values():
            emitter.stop()
        for supervisor in self.supervisors:
            supervisor.stop()

    def spare_available(self) -> bool:
        return (self.spare_partition is not None
                and not self._spare_joined
                and self.cluster.reconfig is not None)

    # -- episode bookkeeping (called by supervisors) ----------------------

    def _note(self, now: float, text: str) -> None:
        self.timeline.append((now, text))

    def note_confirmed(self, victim: str, role: str, group: str,
                       now: float, phi: float, silent_ms: float,
                       supervisor: str) -> None:
        if self.stopped or victim in self._open:
            return
        episode = Episode(victim=victim, role=role, group=group,
                          opened_at=now, silent_ms=silent_ms)
        self._open[victim] = episode
        self.episodes.append(episode)
        self.detections.inc()
        self.detect_hist.observe(silent_ms)
        self._note(now, f"{supervisor} confirmed {victim} ({role}) "
                        f"phi={phi:.1f} after {silent_ms:.1f}ms silence")
        self.cluster.network.flight.record(
            victim, "suspected",
            f"by {supervisor} phi={phi:.1f} after {silent_ms:.1f}ms")
        # Unavailability window: from estimated failure onset (last
        # heartbeat heard) until the group's last open episode closes.
        if group in self.cluster.partitions and group not in self._window_open:
            self._window_open[group] = now - silent_ms

    def note_alive(self, victim: str, now: float) -> None:
        episode = self._open.pop(victim, None)
        if episode is None:
            return
        episode.closed_at = now
        if episode.action is None:
            episode.false_positive = True
            self.false_suspicions.inc()
            self._note(now, f"{victim} reappeared untouched "
                            f"(false suspicion)")
        else:
            repair = now - episode.opened_at
            self.repair_hist.observe(repair)
            self.mttr_hist.observe(episode.silent_ms + repair)
            self._note(now, f"{victim} healthy again {repair:.1f}ms after "
                            f"confirmation (action={episode.action})")
        self.cluster.network.flight.record(
            victim, "healed",
            f"action={episode.action or 'none'} "
            f"false_positive={episode.false_positive}")
        group = episode.group
        if group in self._window_open and not any(
                e.group == group for e in self._open.values()):
            start = self._window_open.pop(group)
            span = now - start
            self._window_total[group] = (
                self._window_total.get(group, 0.0) + span)
            self._window_count[group] = self._window_count.get(group, 0) + 1
            self.unavail_hist.observe(span)

    def note_lease(self, epoch: int, holder: str, now: float) -> None:
        if epoch in self._lease_epochs:
            return
        self._lease_epochs.add(epoch)
        self.leases.append((epoch, holder))
        self._note(now, f"lease epoch {epoch} -> {holder}")

    def _on_recovery_failure(self, recovery) -> None:
        """Escalate a terminal state transfer (all source peers gone).

        With a spare partition available the victim is abandoned in
        favour of spare capacity (the same escalation the supervisors
        reach after repeated replace attempts); otherwise the victim is
        marked abandoned so the supervisors stop retrying a recovery
        that can no longer succeed.
        """
        if self.stopped:
            return
        now = self.env.now
        victim = recovery.server.node.name
        self.recovery_failures.inc()
        self._note(now, f"recovery of {victim} terminal: sources "
                        f"{', '.join(recovery.peers_tried)} all gone")
        episode = self._open.get(victim)
        if self.spare_available():
            self._execute_spare_join(victim, episode, now)
        else:
            for supervisor in self.supervisors:
                supervisor.on_abandoned(victim)

    # -- action execution (decided log entries) ---------------------------

    def execute(self, entry: dict, now: float) -> None:
        """Run a decided recovery action exactly once."""
        if self.stopped or entry["uid"] in self._executed_uids:
            return
        self._executed_uids.add(entry["uid"])
        victim, action = entry["victim"], entry["action"]
        episode = self._open.get(victim)
        if action == "replace":
            self._execute_replace(victim, episode, now)
        elif action == "reconnect":
            self._execute_reconnect(victim, episode, now)
        elif action == "spare_join":
            self._execute_spare_join(victim, episode, now)

    def _execute_replace(self, victim: str, episode, now: float) -> None:
        cluster = self.cluster
        server = cluster.servers.get(victim)
        if server is None:
            return
        last = self._replaced_at.get(victim)
        if (last is not None
                and now - last < self.timing.replace_cooldown_ms):
            # Hard guard against double-replacing a slow-but-alive node:
            # one fence+replace per cooldown window, full stop.
            self.suppressed.inc()
            self._note(now, f"replace {victim} suppressed (cooldown)")
            return
        group = cluster.directory.group_of(victim)
        peers_alive = any(
            member != victim and not cluster.servers[member].node.crashed
            for member in cluster.directory.members(group))
        if not peers_alive:
            # No live peer to recover from; leave the episode open so the
            # holder retries after action_retry_ms.
            self.deferred.inc()
            self._note(now, f"replace {victim} deferred (no live peer)")
            return
        if not server.node.crashed:
            # Wrong suspicion or blackout: fence the old incarnation out
            # before a replacement takes over the name.
            self.fences.inc()
            self._note(now, f"fencing live {victim} before replacement")
            server.crash()
        replacement = recover_victim(cluster, victim)
        self._replaced_at[victim] = now
        self.replaces.inc()
        if episode is not None:
            episode.action = "replace"
            episode.action_at = now
            episode.attempts += 1
        role, group_name = self.roles[victim]
        self._emit_from(replacement.node, role, group_name)
        for supervisor in self.supervisors:
            supervisor.on_replaced(victim)
        self._note(now, f"replaced {victim} (checkpoint-install recovery)")

    def _execute_reconnect(self, victim: str, episode, now: float) -> None:
        if episode is not None:
            episode.action = "reconnect"
            episode.action_at = now
            episode.attempts += 1
        if not self.cluster.network.is_crashed(victim):
            # Nothing to reconnect — the node is either healthy (wrong
            # suspicion; never disturb it) or object-dead (escalation to
            # spare_join will kick in after enough attempts).
            self._note(now, f"reconnect {victim}: no-op (not blacked out)")
            return
        reconnect_victim(self.cluster, victim)
        self.reconnects.inc()
        self._note(now, f"reconnected {victim}")

    def _execute_spare_join(self, victim: str, episode, now: float) -> None:
        if not self.spare_available():
            return
        self._spare_joined = True
        self.spare_joins.inc()
        if episode is not None:
            episode.action = "spare_join"
            episode.action_at = now
            episode.attempts += 1
        spare = self.spare_partition
        self._note(now, f"{victim} unrecoverable: joining spare "
                        f"partition {spare}")
        # Stop retrying actions against the abandoned victim; capacity
        # now comes from the spare instead.
        for supervisor in self.supervisors:
            supervisor.on_abandoned(victim)

        def join():
            yield from self.cluster.grow(spare)
            self.monitor_partition(spare)
            self._note(self.env.now, f"spare partition {spare} joined")

        self.env.process(join(), name=f"heal/join-{spare}")

    # -- reporting --------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> dict:
        """Canonical, JSON-stable summary for run results and smokes."""
        now = self.env.now if now is None else now
        unavailability = {group: round(total, 3)
                          for group, total in
                          sorted(self._window_total.items())}
        for group, start in sorted(self._window_open.items()):
            unavailability[group] = round(
                unavailability.get(group, 0.0) + (now - start), 3)
        return {
            "detections": self.detections.value,
            "false_suspicions": self.false_suspicions.value,
            "fences": self.fences.value,
            "replaces": self.replaces.value,
            "reconnects": self.reconnects.value,
            "suppressed": self.suppressed.value,
            "deferred": self.deferred.value,
            "spare_joins": self.spare_joins.value,
            "recovery_failures": self.recovery_failures.value,
            "leases": [[epoch, holder] for epoch, holder in self.leases],
            "episodes": [e.to_dict() for e in self.episodes],
            "unavailability_ms": unavailability,
            # An empty histogram summarises to NaNs, which are not valid
            # JSON — collapse to the bare count instead.
            "mttr_ms": ({key: round(value, 3)
                         for key, value in
                         sorted(self.mttr_hist.summary().items())}
                        if self.mttr_hist.count else {"count": 0}),
        }

    def format_timeline(self) -> list[str]:
        """The detection→recovery timeline, one formatted line per event."""
        return [f"[{t:8.1f}ms] {text}" for t, text in self.timeline]
