"""Shared timing profile for liveness machinery.

One frozen profile gathers every liveness knob in the system: the
Multi-Paxos heartbeat/suspect/retry timers (previously hardcoded class
constants on :class:`~repro.ordering.paxos.PaxosLog`), the self-healing
heartbeat cadence, and the φ-accrual detector/supervisor parameters of
:mod:`repro.heal`. Components take a profile instead of magic numbers, so
tests can run one "fast timers" profile (:data:`FAST_TIMING`) and sweeps
can scale every timeout together.

All durations are in simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingProfile:
    """Every liveness timeout in one place.

    The defaults (:data:`DEFAULT_TIMING`) reproduce the timers the
    codebase shipped with, so existing runs are bit-for-bit unchanged.
    """

    # -- Multi-Paxos liveness (repro.ordering.paxos) --------------------
    paxos_heartbeat_ms: float = 20.0   # leader heartbeat broadcast period
    paxos_suspect_ms: float = 100.0    # member round-change timeout
    paxos_retry_ms: float = 150.0      # resubmit / retransmit / gap-fill

    # -- Self-healing heartbeats (repro.heal.heartbeat) -----------------
    heartbeat_interval_ms: float = 10.0  # per-node heartbeat period
    detector_tick_ms: float = 10.0       # supervisor evaluation period

    # -- φ-accrual detector (repro.heal.detector) -----------------------
    phi_window: int = 24          # inter-arrival samples kept per peer
    min_std_ms: float = 3.0       # floor on σ (regular sim arrivals)
    bootstrap_interval_ms: float = 20.0  # assumed mean before samples

    # Per-role suspicion thresholds. Followers are cheap to replace
    # (checkpoint install), so they get the most aggressive threshold;
    # speakers and oracles only need a reconnect but a false positive
    # perturbs ordering, so they are given more slack; supervisors watch
    # each other with the most conservative threshold of all (a lease
    # failover is the most disruptive action).
    phi_follower: float = 5.0
    phi_speaker: float = 6.0
    phi_oracle: float = 6.0
    phi_supervisor: float = 7.0

    # -- Supervisor hysteresis and action pacing ------------------------
    confirm_ticks: int = 3        # consecutive over-threshold ticks
    action_retry_ms: float = 80.0     # re-issue an action that stalled
    replace_cooldown_ms: float = 400.0  # min gap between fence+replace
    # of the same node — the hard guard against double-replacing a
    # slow-but-alive replica during one suspicion episode.

    def phi_threshold(self, role: str) -> float:
        """Suspicion threshold for ``role`` (unknown roles: supervisor)."""
        return {
            "follower": self.phi_follower,
            "speaker": self.phi_speaker,
            "oracle": self.phi_oracle,
        }.get(role, self.phi_supervisor)


#: The timers the repo has always used — production-shaped defaults.
DEFAULT_TIMING = TimingProfile()

#: Uniformly tightened profile for tests: everything fires ~3x sooner,
#: thresholds and hysteresis unchanged (safety margins are relative).
FAST_TIMING = TimingProfile(
    paxos_heartbeat_ms=8.0, paxos_suspect_ms=40.0, paxos_retry_ms=60.0,
    heartbeat_interval_ms=4.0, detector_tick_ms=4.0,
    bootstrap_interval_ms=8.0, min_std_ms=1.5,
    action_retry_ms=40.0, replace_cooldown_ms=200.0)
