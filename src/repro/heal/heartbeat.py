"""Lightweight heartbeat emission for the failure detector.

Every monitored node — partition replicas (followers *and*
speakers/sequencers), oracle replicas, and the recovery supervisors
themselves — gets a :class:`HeartbeatEmitter` that periodically sends a
tiny ``heal/hb`` message to each supervisor. Heartbeats ride the normal
simulated network, so injected drops, delays and partitions perturb them
exactly like protocol traffic — which is the point: the detector sees
what a real deployment's detector would see.

The emitter stops on its own when the node object-crashes (the timer
callback checks ``node.crashed``), and can be stopped explicitly when a
node is fenced out and replaced.
"""

from __future__ import annotations

from typing import Sequence

#: Message kind carrying heartbeats (kept out of the fuzz MESSAGE_KINDS
#: vocabulary on purpose: generic fault rules still hit it via the
#: no-kind-filter path, but the sentinel-bug reply filter never does).
HEARTBEAT_KIND = "heal/hb"

#: Wire size of one heartbeat (bytes) — deliberately tiny.
HEARTBEAT_SIZE = 32


class HeartbeatEmitter:
    """Periodic ``heal/hb`` sender from one node to the supervisors."""

    def __init__(self, env, node, role: str, group: str,
                 targets: Sequence[str], interval_ms: float):
        self.env = env
        self.node = node
        self.role = role
        self.group = group
        self.targets = tuple(targets)
        self.interval_ms = interval_ms
        self.stopped = False
        self._tick()

    def stop(self) -> None:
        self.stopped = True

    def _tick(self) -> None:
        if self.stopped or self.node.crashed:
            return
        payload = {"role": self.role, "group": self.group}
        for target in self.targets:
            if target != self.node.name:
                self.node.send(target, HEARTBEAT_KIND, payload,
                               size=HEARTBEAT_SIZE)
        self.env.schedule_callback(self.interval_ms, self._tick)
