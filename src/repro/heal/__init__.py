"""Self-healing: φ-accrual failure detection + autonomous recovery.

The subsystem closes the detect → failover → state-transfer loop that
the harnesses used to script by hand:

* :mod:`repro.heal.timing` — one shared profile for every liveness
  timeout in the system (Paxos timers included).
* :mod:`repro.heal.detector` — the φ-accrual failure detector.
* :mod:`repro.heal.heartbeat` — per-node heartbeat emission.
* :mod:`repro.heal.supervisor` — leader-elected recovery supervisors
  ordering lease claims and recovery actions through their own Paxos log.
* :mod:`repro.heal.healer` — per-cluster wiring, exactly-once action
  execution, and the MTTR ledger.
* :mod:`repro.heal.campaign` — the autonomous-recovery chaos campaign
  behind ``python -m repro heal``.

Import note: :mod:`repro.ordering.paxos` sources its timer defaults from
:mod:`repro.heal.timing`, so this ``__init__`` must not import anything
that needs :mod:`repro.ordering` at module load — the supervisor/healer
layers are exposed lazily instead.
"""

from repro.heal.detector import PHI_MAX, PhiAccrualDetector
from repro.heal.heartbeat import HEARTBEAT_KIND, HeartbeatEmitter
from repro.heal.timing import DEFAULT_TIMING, FAST_TIMING, TimingProfile

__all__ = [
    "PHI_MAX", "PhiAccrualDetector", "HEARTBEAT_KIND", "HeartbeatEmitter",
    "DEFAULT_TIMING", "FAST_TIMING", "TimingProfile",
    "HEAL_GROUP", "RecoverySupervisor", "ClusterHealer",
    "run_heal_campaign", "HealCampaignResult",
]

_LAZY = {
    "HEAL_GROUP": ("repro.heal.supervisor", "HEAL_GROUP"),
    "RecoverySupervisor": ("repro.heal.supervisor", "RecoverySupervisor"),
    "ClusterHealer": ("repro.heal.healer", "ClusterHealer"),
    "run_heal_campaign": ("repro.heal.campaign", "run_heal_campaign"),
    "HealCampaignResult": ("repro.heal.campaign", "HealCampaignResult"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    return getattr(importlib.import_module(module_name), attr)
