"""Leader-elected recovery supervisor.

A small group of :class:`RecoverySupervisor` nodes (``h0``, ``h1``, …)
watches every heartbeat in the deployment through a private φ-accrual
detector and drives recovery *through a replicated log*: supervisors run
their own :class:`~repro.ordering.paxos.PaxosLog` (the "heal group"),
and both lease claims and recovery actions are ordered entries in it.

Exactly-one-acts, by construction rather than by luck:

* **Lease.** Epoch ``e``'s lease belongs to whichever supervisor's claim
  ``{"kind": "lease", "epoch": e}`` is decided first with ``e`` equal to
  the successor of the current epoch; later claims for the same epoch are
  stale at apply time and ignored by everyone. Only the lease holder
  submits recovery actions.
* **Fencing.** Actions carry the holder's epoch and are checked against
  the *applier's* epoch. A holder that was wrongly suspected (e.g. cut
  off by a partition) loses the lease to a successor epoch; any action it
  still manages to get decided afterwards carries a stale epoch and is
  rejected by every live supervisor. While partitioned it cannot reach a
  Paxos majority at all, so it cannot decide anything in the meantime.
* **Dedup.** All supervisors apply the same decided sequence and forward
  actions to one shared :class:`~repro.heal.healer.ClusterHealer`, which
  executes each action uid exactly once.

Suspicion uses hysteresis on top of φ: a peer must stay over its
role-specific threshold for ``confirm_ticks`` consecutive detector ticks
before it is *confirmed* and eligible for recovery; a single heartbeat
arrival resets it to alive. Confirmed followers are fenced and replaced
(checkpoint-install recovery); confirmed speakers/sequencers and oracle
replicas are reconnected (their in-memory ordering state survives a
blackout); a victim that stays dead through repeated attempts escalates
to a replacement-join of a spare partition via the existing
:class:`~repro.reconfig.ReconfigurationManager` machinery.
"""

from __future__ import annotations

from repro.heal.detector import PhiAccrualDetector
from repro.heal.heartbeat import HEARTBEAT_KIND
from repro.heal.timing import TimingProfile
from repro.net import Message
from repro.ordering.group import GroupDirectory
from repro.ordering.node import ProtocolNode
from repro.ordering.paxos import PaxosLog

#: Name of the supervisors' private Paxos group. The group lives in its
#: own GroupDirectory so heal traffic never appears in the cluster's
#: group map (invariant checkers and reconfiguration stay oblivious).
HEAL_GROUP = "heal"

#: Escalation: attempts of a non-repairing action before the holder asks
#: for a spare-partition replacement join instead.
ESCALATE_AFTER_ATTEMPTS = 3


class RecoverySupervisor:
    """One member of the leader-elected self-healing group."""

    def __init__(self, env, network, directory: GroupDirectory, name: str,
                 healer, timing: TimingProfile):
        self.env = env
        self.timing = timing
        self.healer = healer
        self.node = ProtocolNode(env, network, name)
        self.log = PaxosLog(self.node, directory, HEAL_GROUP, timing=timing)
        self.members = directory.members(HEAL_GROUP)
        self.detector = PhiAccrualDetector(timing)
        # Lease state, advanced only by decided log entries.
        self.epoch = 0
        self.holder: str | None = None
        self._claimed_epoch = 0
        # Per-peer hysteresis: {"state": alive|suspect|confirmed|recovering,
        # "count": consecutive over-threshold ticks}.
        self._peers: dict[str, dict] = {}
        # Per-victim action pacing while we hold the lease.
        self._last_action: dict[str, tuple[float, int]] = {}
        self.stopped = False

        self.node.on(HEARTBEAT_KIND, self._on_heartbeat)
        self.log.on_decide(self._on_decide)
        for peer in self.healer.roles:
            if peer != name:
                self.detector.prime(peer, env.now)
        self._schedule_tick()

    # -- lifecycle ------------------------------------------------------

    def stop(self) -> None:
        """Shut the supervisor down (ends its timers and Paxos traffic)."""
        self.stopped = True
        self.node.crash()

    def on_replaced(self, peer: str) -> None:
        """The healer replaced ``peer``; restart its detection history."""
        self.detector.reset(peer)
        self.detector.prime(peer, self.env.now)
        self._peers[peer] = {"state": "recovering", "count": 0}

    def monitor(self, peer: str) -> None:
        """Start watching a peer added after construction (spare join)."""
        if peer != self.node.name and not self.detector.seen(peer):
            self.detector.prime(peer, self.env.now)

    def on_abandoned(self, peer: str) -> None:
        """The healer gave up on ``peer`` (spare-join escalation): stop
        issuing actions for it. A heartbeat from the name still revives
        it to ``alive`` (a fenced comeback is handled like any other)."""
        self._peers[peer] = {"state": "abandoned", "count": 0}

    # -- heartbeat intake ------------------------------------------------

    def _on_heartbeat(self, message: Message) -> None:
        peer = message.src
        now = self.env.now
        self.detector.heartbeat(peer, now)
        state = self._peers.setdefault(peer, {"state": "alive", "count": 0})
        if state["state"] in ("confirmed", "recovering"):
            self.healer.note_alive(peer, now)
        state["state"] = "alive"
        state["count"] = 0

    # -- detector tick ---------------------------------------------------

    def _schedule_tick(self) -> None:
        def guarded() -> None:
            if not self.stopped and not self.node.crashed:
                self._tick()
                self._schedule_tick()
        self.env.schedule_callback(self.timing.detector_tick_ms, guarded)

    def _tick(self) -> None:
        now = self.env.now
        self._evaluate_peers(now)
        self._maybe_claim_lease(now)
        if self.holder == self.node.name and self.epoch > 0:
            self._issue_actions(now)

    def _evaluate_peers(self, now: float) -> None:
        for peer, (role, group) in sorted(self.healer.roles.items()):
            if peer == self.node.name:
                continue
            state = self._peers.setdefault(peer,
                                           {"state": "alive", "count": 0})
            if state["state"] == "abandoned":
                continue
            phi = self.detector.phi(peer, now)
            if phi < self.timing.phi_threshold(role):
                state["count"] = 0
                if state["state"] == "suspect":
                    state["state"] = "alive"
                continue
            state["count"] += 1
            if state["state"] in ("alive", "suspect"):
                state["state"] = "suspect"
            # Hysteresis: confirmation (or re-confirmation of a stalled
            # recovery) needs `confirm_ticks` consecutive hot ticks.
            if (state["state"] in ("suspect", "recovering")
                    and state["count"] >= self.timing.confirm_ticks):
                state["state"] = "confirmed"
                last = self.detector.last_seen(peer)
                silent = now - last if last is not None else now
                self.healer.note_confirmed(peer, role, group, now,
                                           phi=phi, silent_ms=silent,
                                           supervisor=self.node.name)

    # -- lease ----------------------------------------------------------

    def _is_confirmed(self, peer: str) -> bool:
        return self._peers.get(peer, {}).get("state") == "confirmed"

    def _maybe_claim_lease(self, now: float) -> None:
        holder_dead = (self.holder is not None
                       and self.holder != self.node.name
                       and self._is_confirmed(self.holder))
        if self.holder is not None and not holder_dead:
            return
        live = [m for m in self.members
                if m == self.node.name or not self._is_confirmed(m)]
        if not live or live[0] != self.node.name:
            return
        claim = self.epoch + 1
        if self._claimed_epoch >= claim:
            return  # claim already in flight; Paxos retry re-routes it
        self._claimed_epoch = claim
        self.log.submit({"uid": f"lease-{claim}-{self.node.name}",
                         "kind": "lease", "epoch": claim,
                         "holder": self.node.name})

    # -- recovery actions ------------------------------------------------

    def _action_for(self, role: str, attempts: int) -> str:
        if (attempts >= ESCALATE_AFTER_ATTEMPTS
                and self.healer.spare_available()):
            return "spare_join"
        return "replace" if role == "follower" else "reconnect"

    def _issue_actions(self, now: float) -> None:
        for peer, (role, group) in sorted(self.healer.roles.items()):
            if peer == self.node.name or role == "supervisor":
                continue
            if not self._is_confirmed(peer):
                continue
            last_at, attempts = self._last_action.get(peer, (None, 0))
            if (last_at is not None
                    and now - last_at < self.timing.action_retry_ms):
                continue
            action = self._action_for(role, attempts)
            attempts += 1
            self._last_action[peer] = (now, attempts)
            self.log.submit({
                "uid": f"act-{self.epoch}-{peer}-{attempts}-{action}",
                "kind": "action", "epoch": self.epoch, "action": action,
                "victim": peer, "role": role, "group": group,
                "attempt": attempts})

    # -- decided entries -------------------------------------------------

    def _on_decide(self, _seq: int, entry: dict) -> None:
        kind = entry.get("kind")
        if kind == "lease":
            # First decided claim for the successor epoch wins; anything
            # else is a lost race or a stale holder and is ignored.
            if entry["epoch"] == self.epoch + 1:
                self.epoch = entry["epoch"]
                self.holder = entry["holder"]
                self._claimed_epoch = max(self._claimed_epoch, self.epoch)
                self._last_action = {}
                self.healer.note_lease(self.epoch, self.holder,
                                       self.env.now)
        elif kind == "action":
            # Epoch fence: only the current lease's actions execute.
            if entry["epoch"] == self.epoch:
                self.healer.execute(entry, self.env.now)
