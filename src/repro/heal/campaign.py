"""Self-healing acceptance campaign: crash every role, recover nothing.

``run_heal_campaign(n, seed)`` generates ``n`` scenarios per scheme in
which **every** victim role — a partition follower, a partition
sequencer (speaker) and, on dynamic schemes, an oracle replica — is
crashed, and the harness performs *no* recovery call of its own: the
schedules run with ``supervisor=True``, so the fuzz runner schedules the
crashes and walks away. Convergence (every client op completed, all
invariants intact) is then evidence that the accrual detector +
recovery supervisor loop did the healing autonomously.

The whole campaign is a pure function of ``(seed, n, schemes)`` and its
canonical JSON (:meth:`HealCampaignResult.to_dict`) is byte-identical
across runs — the CI smoke runs ``python -m repro heal --smoke`` twice
and ``cmp``s the outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fuzz.generate import DEADLINE_MS, HORIZON_MS, shape_nodes
from repro.fuzz.schedule import FaultSchedule, normalize_schedule
from repro.harness.report import format_table
from repro.sim import SeedStream

#: Schemes the heal campaign exercises (both partitioned deployments;
#: dssmr adds the oracle role to the crash rota).
HEAL_SCHEMES = ("ssmr", "dssmr")

#: Crash windows per role (ms): staggered so the supervisor handles one
#: failure at a time, each with room to detect + repair before the next.
_ROLE_WINDOWS = {
    "follower": (30.0, 60.0),
    "speaker": (95.0, 130.0),
    "oracle": (160.0, 195.0),
}


def generate_heal_schedule(seed: int, index: int, scheme: str,
                           num_clients: int = 3,
                           ops_per_client: int = 8) -> FaultSchedule:
    """Draw heal scenario ``index`` for ``scheme`` (pure function).

    Every schedule crashes one node of *each* role the scheme has —
    follower by object-crash (amnesia), speaker and oracle by network
    blackout — plus light background loss, with ``supervisor=True`` so
    the runner performs no harness-driven recovery.
    """
    rng = SeedStream(seed).child("heal-gen").stream(f"{scheme}/s{index}")
    shape = shape_nodes(scheme)
    events: list[dict] = [{
        "kind": "drop", "at": 0.0, "end": HORIZON_MS,
        "fraction": round(rng.uniform(0.002, 0.01), 4),
    }]
    # Victims rotate with the scenario index and are drawn from distinct
    # partitions, so consecutive failures never gut one majority.
    rota = [("follower", shape["followers"], "restart"),
            ("speaker", shape["speakers"], "blackout")]
    if shape["oracles"]:
        rota.append(("oracle", shape["oracles"], "blackout"))
    for offset, (role, pool, mode) in enumerate(rota):
        node = pool[(index + offset) % len(pool)]
        lo, hi = _ROLE_WINDOWS[role]
        events.append({"kind": "crash", "at": round(rng.uniform(lo, hi), 1),
                       "node": node, "mode": mode,
                       # Unused under supervisor=True (the healer, not a
                       # timer, ends the outage); kept for replay tools.
                       "duration": 50.0})
    return normalize_schedule(FaultSchedule(
        seed=seed, index=index, scheme=scheme, events=tuple(events),
        horizon_ms=HORIZON_MS, deadline_ms=DEADLINE_MS,
        num_clients=num_clients, ops_per_client=ops_per_client,
        supervisor=True))


@dataclass
class HealCampaignResult:
    """All runs of one self-healing campaign, plus the MTTR rollup."""

    seed: int
    runs: tuple    # of repro.fuzz.runner.ScheduleRunResult

    @property
    def violations(self) -> list[tuple]:
        return [(run, violation) for run in self.runs
                for violation in run.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def totals(self) -> dict:
        """Campaign-wide MTTR accounting summed over every run."""
        keys = ("detections", "false_suspicions", "fences", "replaces",
                "reconnects", "suppressed", "deferred", "spare_joins")
        totals = {key: 0 for key in keys}
        mttr: list[float] = []
        for run in self.runs:
            heal = run.heal or {}
            for key in keys:
                totals[key] += heal.get(key, 0)
            for episode in heal.get("episodes", ()):
                if episode.get("closed_at") is not None \
                        and not episode.get("false_positive"):
                    mttr.append(episode["closed_at"]
                                - episode["opened_at"]
                                + episode["silent_ms"])
        totals["mttr_samples"] = len(mttr)
        totals["mttr_mean_ms"] = (round(sum(mttr) / len(mttr), 3)
                                  if mttr else None)
        totals["mttr_max_ms"] = round(max(mttr), 3) if mttr else None
        return totals

    def to_dict(self) -> dict:
        """Canonical campaign summary (the CI smoke byte-compares this)."""
        return {
            "seed": self.seed,
            "scenarios": [
                {
                    "index": run.schedule.index,
                    "scheme": run.schedule.scheme,
                    "digest": run.schedule.digest(),
                    "faults": run.schedule.describe(),
                    "run": run.to_dict(),
                }
                for run in self.runs
            ],
            "totals": self.totals(),
            "violations": len(self.violations),
        }

    def report(self) -> str:
        rows = []
        for run in self.runs:
            heal = run.heal or {}
            rows.append([
                run.schedule.index, run.schedule.scheme,
                run.schedule.describe(),
                f"{run.ops_completed}/{run.ops_expected}",
                (f"{run.finished_at:.0f}"
                 if run.finished_at is not None else "stuck"),
                heal.get("detections", 0),
                heal.get("replaces", 0),
                heal.get("reconnects", 0),
                heal.get("false_suspicions", 0),
                "ok" if run.ok else "FAIL",
            ])
        table = format_table(
            ["#", "scheme", "faults", "ops", "done-ms", "det",
             "repl", "reconn", "false+", "verdict"], rows)
        totals = self.totals()
        lines = [f"self-healing campaign: seed={self.seed}, "
                 f"{len(self.runs)} run(s), no harness recovery",
                 "", table, "",
                 f"totals: {totals['detections']} detection(s), "
                 f"{totals['replaces']} replace(s), "
                 f"{totals['reconnects']} reconnect(s), "
                 f"{totals['fences']} fence(s), "
                 f"{totals['false_suspicions']} false suspicion(s), "
                 f"{totals['suppressed']} suppressed"]
        if totals["mttr_mean_ms"] is not None:
            lines.append(f"MTTR: mean {totals['mttr_mean_ms']:.1f} ms, "
                         f"max {totals['mttr_max_ms']:.1f} ms over "
                         f"{totals['mttr_samples']} episode(s)")
        if self.ok:
            lines.append(f"no invariant violations in {len(self.runs)} "
                         f"runs")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            for run, violation in self.violations:
                lines.append(f"  - [#{run.schedule.index} "
                             f"{run.schedule.scheme}] {violation}")
        return "\n".join(lines)


def run_heal_campaign(num_scenarios: int = 4, seed: int = 0,
                      schemes: Sequence[str] = HEAL_SCHEMES,
                      num_clients: int = 3, ops_per_client: int = 8
                      ) -> HealCampaignResult:
    """Run ``num_scenarios`` all-roles-crash scenarios per scheme."""
    # Late import: the runner imports the cluster harness whose package
    # init pulls in chaos — at-import resolution would cycle through
    # repro.heal (paxos imports heal.timing).
    from repro.fuzz.runner import run_schedule

    runs = []
    for index in range(num_scenarios):
        for scheme in schemes:
            schedule = generate_heal_schedule(
                seed, index, scheme, num_clients=num_clients,
                ops_per_client=ops_per_client)
            runs.append(run_schedule(schedule))
    return HealCampaignResult(seed=seed, runs=tuple(runs))


def run_heal_smoke(seed: int = 0) -> HealCampaignResult:
    """The CI smoke: 2 scenarios x both schemes, byte-deterministic."""
    return run_heal_campaign(num_scenarios=2, seed=seed)
