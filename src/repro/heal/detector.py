"""φ-accrual failure detector (Hayashibara et al., SRDS 2004).

Instead of a boolean alive/dead verdict, the detector outputs a
*suspicion level* φ on a continuous scale: φ(t) = -log10 of the
probability that a heartbeat gap at least as long as the current silence
would occur if the peer were alive, given the observed inter-arrival
distribution. φ = 3 means roughly a 1-in-1000 chance the peer is fine;
thresholds per role pick the false-positive/latency trade-off, and the
supervisor adds hysteresis on top (consecutive over-threshold ticks)
so one outlier gap never triggers recovery.

We use the standard logistic approximation of the normal CDF (the same
one production implementations use), which keeps φ smooth, monotonic in
the silence duration and cheap to evaluate — and, importantly here,
fully deterministic: the detector is pure arithmetic over simulated
timestamps, so fuzz replay remains byte-identical.
"""

from __future__ import annotations

import math
from collections import deque

from repro.heal.timing import DEFAULT_TIMING, TimingProfile

#: φ returned once the silence is long enough to underflow the CDF tail.
PHI_MAX = 100.0


class PhiAccrualDetector:
    """Per-peer inter-arrival tracking and φ evaluation.

    One detector instance serves any number of peers; state is held per
    peer name. The caller feeds :meth:`heartbeat` on every arrival and
    polls :meth:`phi` on its own clock.
    """

    def __init__(self, timing: TimingProfile = DEFAULT_TIMING):
        self.timing = timing
        self._last: dict[str, float] = {}
        self._intervals: dict[str, deque[float]] = {}

    # -- feeding --------------------------------------------------------

    def heartbeat(self, peer: str, now: float) -> None:
        """Record a heartbeat arrival from ``peer`` at time ``now``."""
        last = self._last.get(peer)
        if last is not None and now > last:
            window = self._intervals.setdefault(
                peer, deque(maxlen=self.timing.phi_window))
            window.append(now - last)
        self._last[peer] = now

    def prime(self, peer: str, now: float) -> None:
        """Start the silence clock for a peer never heard from.

        Without priming, a node that dies before its first heartbeat
        would never accrue suspicion; with it, silence counts from the
        moment monitoring began (the bootstrap distribution applies
        until real intervals are observed)."""
        self._last.setdefault(peer, now)

    def reset(self, peer: str) -> None:
        """Forget ``peer``'s history (it was replaced or rejoined)."""
        self._last.pop(peer, None)
        self._intervals.pop(peer, None)

    def seen(self, peer: str) -> bool:
        return peer in self._last

    def last_seen(self, peer: str) -> float | None:
        return self._last.get(peer)

    # -- evaluation -----------------------------------------------------

    def _distribution(self, peer: str) -> tuple[float, float]:
        """Mean and (floored) std-dev of the peer's arrival intervals."""
        window = self._intervals.get(peer)
        if not window:
            # Bootstrap: before any interval is observed, assume the
            # configured cadence so a peer that dies immediately after
            # registration is still eventually suspected.
            mean = self.timing.bootstrap_interval_ms
            return mean, max(self.timing.min_std_ms, mean / 4.0)
        mean = sum(window) / len(window)
        variance = sum((x - mean) ** 2 for x in window) / len(window)
        return mean, max(self.timing.min_std_ms, math.sqrt(variance))

    def phi(self, peer: str, now: float) -> float:
        """Current suspicion level for ``peer`` (0 = just heard from)."""
        last = self._last.get(peer)
        if last is None:
            return 0.0
        elapsed = now - last
        if elapsed <= 0:
            return 0.0
        mean, std = self._distribution(peer)
        y = (elapsed - mean) / std
        # Logistic approximation of the standard normal tail.
        exponent = -y * (1.5976 + 0.070566 * y * y)
        if exponent > 700.0:
            # exp() would overflow: elapsed is so far below the mean
            # (e.g. one huge outage-length interval poisoned the window)
            # that the tail probability is ~1 — no suspicion at all.
            return 0.0
        e = math.exp(exponent)
        if elapsed > mean:
            tail = e / (1.0 + e)
        else:
            tail = 1.0 - 1.0 / (1.0 + e)
        if tail <= 1e-100:
            return PHI_MAX
        return min(PHI_MAX, -math.log10(tail))
