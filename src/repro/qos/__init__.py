"""Overload control and quality of service.

Nothing in DS-SMR protects a single partition, sequencer or oracle from
offered load above its capacity: queues grow without bound, the retry
loop multiplies the overload, and goodput collapses instead of
plateauing. This package supplies the four classic mechanisms, all
deterministic (virtual time, no wall clocks, seeded RNG only at the
campaign layer):

* :class:`AdmissionController` — token-bucket rate limiting plus
  CoDel-style shedding on sustained queueing delay, applied at the
  *sequencer* so every replica sees the same admitted sequence. Sheds
  become explicit ``OVERLOAD`` replies (backpressure), never silent
  drops.
* :class:`AdaptiveBatcher` — replaces a fixed ``batch_window_ms``:
  the window widens with the observed executor queue depth, so light
  load keeps low latency and heavy load gets amortization.
* :class:`AimdWindow` — the client-side congestion window; shrinks
  multiplicatively on ``OVERLOAD``/timeout and grows additively on
  success, pacing both fresh sends and retry backoff.
* :func:`classify_entry` — priority classes: control traffic (moves,
  reconfiguration fences, timestamp announcements, hints) is never
  shed and sorts ahead of client commands inside a batch window.

The package is mechanism only — it imports no protocol layers above
``repro.smr.command``; the harness (:mod:`repro.harness.cluster`) wires
controllers into servers, and :mod:`repro.harness.overload` drives the
goodput campaigns behind ``python -m repro qos`` and fig19.
"""

from repro.qos.admission import AdmissionController, CoDelShedder, TokenBucket
from repro.qos.batcher import AdaptiveBatcher
from repro.qos.config import QosConfig
from repro.qos.congestion import AimdWindow
from repro.qos.priority import PRIO_CLIENT, PRIO_CONTROL, classify_entry

__all__ = [
    "AdaptiveBatcher",
    "AdmissionController",
    "AimdWindow",
    "CoDelShedder",
    "PRIO_CLIENT",
    "PRIO_CONTROL",
    "QosConfig",
    "TokenBucket",
    "classify_entry",
]
