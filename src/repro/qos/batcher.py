"""Adaptive batch window: queue depth decides the amortization/latency trade.

A fixed ``batch_window_ms`` (E14) buys message amortization at a flat
latency tax — wrong at both ends: under light load the window is pure
added latency, under heavy load it may still be too narrow to drain the
backlog efficiently. The adaptive window reads the colocated executor's
queue depth at the moment a batch opens and widens linearly from
``min_window_ms`` toward ``max_window_ms`` by one millisecond per
``depth_per_ms`` queued deliveries: an idle group flushes immediately,
a saturated one fans out large batches.
"""

from __future__ import annotations

from typing import Callable, Optional


class AdaptiveBatcher:
    """Chooses the sequencer's batch window from observed queue depth."""

    def __init__(self, min_window_ms: float = 0.0,
                 max_window_ms: float = 4.0,
                 depth_per_ms: float = 8.0,
                 depth_fn: Optional[Callable[[], int]] = None):
        if not (0 <= min_window_ms <= max_window_ms):
            raise ValueError("window bounds out of order")
        if depth_per_ms <= 0:
            raise ValueError("depth_per_ms must be positive")
        self.min_window_ms = min_window_ms
        self.max_window_ms = max_window_ms
        self.depth_per_ms = depth_per_ms
        self.depth_fn = depth_fn
        self.last_window_ms = min_window_ms
        self.max_window_seen_ms = min_window_ms
        self.windows_chosen = 0

    def window_ms(self) -> float:
        """Batch window to use for the batch opening now."""
        depth = self.depth_fn() if self.depth_fn is not None else 0
        window = min(self.max_window_ms,
                     self.min_window_ms + depth / self.depth_per_ms)
        self.last_window_ms = window
        self.max_window_seen_ms = max(self.max_window_seen_ms, window)
        self.windows_chosen += 1
        return window

    def stats(self) -> dict:
        return {"windows_chosen": self.windows_chosen,
                "last_window_ms": round(self.last_window_ms, 4),
                "max_window_ms": round(self.max_window_seen_ms, 4)}
