"""QoS knobs, one frozen dataclass threaded through the harness.

``ClusterConfig.qos`` defaults to ``None`` — no controller objects are
built and every hot path keeps its pre-QoS shape (the perf gate holds
the default path to the committed baseline). Constructing a
:class:`QosConfig` turns everything on at once; individual mechanisms
can be weakened back to no-ops (``rate_per_s=None`` disables the token
bucket, ``codel_target_ms=0`` effectively disables CoDel, equal min/max
windows pin the batcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class QosConfig:
    """Tuning for admission, batching and the client congestion window."""

    #: Token-bucket admission rate per sequencer (client entries per
    #: second); ``None`` disables the bucket and leaves CoDel in charge.
    rate_per_s: Optional[float] = None
    #: Bucket depth — how large a burst is admitted at line rate.
    burst: float = 32.0
    #: CoDel: shed while queue sojourn stays above target for a full
    #: interval (both in virtual ms).
    codel_target_ms: float = 5.0
    codel_interval_ms: float = 40.0
    #: Adaptive batch window bounds; the window widens from min toward
    #: max by 1 ms per ``batch_depth_per_ms`` queued deliveries.
    min_batch_window_ms: float = 0.0
    max_batch_window_ms: float = 4.0
    batch_depth_per_ms: float = 8.0
    #: Client AIMD congestion window (see :class:`~repro.qos.AimdWindow`).
    aimd_initial: float = 8.0
    aimd_min: float = 1.0
    aimd_max: float = 64.0
    aimd_increase: float = 1.0
    aimd_decrease: float = 0.5
    aimd_rtt_ms: float = 5.0
    aimd_cooldown_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.codel_target_ms < 0 or self.codel_interval_ms <= 0:
            raise ValueError("codel target/interval must be sane")
        if not (0 <= self.min_batch_window_ms <= self.max_batch_window_ms):
            raise ValueError("batch window bounds out of order")
        if self.batch_depth_per_ms <= 0:
            raise ValueError("batch_depth_per_ms must be positive")
        if not (0 < self.aimd_min <= self.aimd_initial <= self.aimd_max):
            raise ValueError("aimd window bounds out of order")
        if not (0 < self.aimd_decrease < 1):
            raise ValueError("aimd_decrease must be in (0, 1)")
