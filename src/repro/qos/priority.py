"""Priority classes for ordered-log entries.

Two classes are enough: *control* traffic (whatever keeps the system
reconfigurable and consistent — Skeen timestamp announcements,
reconfiguration fences, repartitioning activations, oracle hints and
MOVE commands) and *client* traffic (ACCESS / CREATE / DELETE /
CONSULT). During overload the sequencer never sheds control entries and
sorts them ahead of client entries inside a batch window — priority is
only applied *before* ordering, where reordering is still legal.

Multi-group client entries are classified unsheddable too: a Skeen
multicast proposed to several groups finalizes only once every group
has ordered it, so shedding it in one group while another admits it
would wedge the admitted groups' delivery queues behind a timestamp
that never arrives. Single-group commands — the bulk of the offered
load — carry no such coupling and are fair game.
"""

from __future__ import annotations

from typing import Optional

from repro.smr.command import Command, CommandType

PRIO_CONTROL = 0
PRIO_CLIENT = 1


def command_of(payload) -> Optional[Command]:
    """Extract the client command from a log-entry payload, if any."""
    if isinstance(payload, dict):
        payload = payload.get("command")
    return payload if isinstance(payload, Command) else None


def classify_entry(entry: dict) -> tuple[int, bool]:
    """Return ``(priority, sheddable)`` for one ordered-log entry."""
    if entry.get("kind") != "am-propose":
        # Timestamp announcements and anything else the protocol layers
        # put on the log directly: ordering machinery, never shed.
        return PRIO_CONTROL, False
    command = command_of(entry.get("payload"))
    if command is None:
        # Hints, reconfiguration fences, repartition activations.
        return PRIO_CONTROL, False
    if command.ctype is CommandType.MOVE:
        return PRIO_CONTROL, False
    if len(entry.get("groups", ())) > 1:
        return PRIO_CLIENT, False
    return PRIO_CLIENT, True
