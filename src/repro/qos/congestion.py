"""Client-side AIMD congestion window.

The resilient request loop (:mod:`repro.resilience`,
:meth:`repro.smr.client.BaseClient.resilient_request`) is an overload
*amplifier* on its own: every timeout resends, so offered load grows
exactly when the system can least absorb it. The AIMD window turns the
explicit ``OVERLOAD`` backpressure signal (and timeouts) into reduced
client pressure, TCP-style: multiplicative decrease on congestion,
additive increase on success, with a cooldown so one burst of overload
replies from the same round trip counts as a single congestion event.

The window paces two things: fresh sends (``reserve`` hands out send
slots at ``window / rtt_ms`` per millisecond) and retry backoff
(``backoff_ms`` stretches as the window shrinks). Deterministic — any
jitter comes from the caller's seeded RNG.
"""

from __future__ import annotations

from typing import Optional


class AimdWindow:
    """Additive-increase / multiplicative-decrease send window."""

    def __init__(self, initial: float = 8.0, min_window: float = 1.0,
                 max_window: float = 64.0, increase: float = 1.0,
                 decrease: float = 0.5, rtt_ms: float = 5.0,
                 cooldown_ms: float = 10.0):
        if not (0 < min_window <= initial <= max_window):
            raise ValueError("window bounds out of order")
        if not (0 < decrease < 1):
            raise ValueError("decrease must be in (0, 1)")
        self.window = float(initial)
        self.min_window = float(min_window)
        self.max_window = float(max_window)
        self.increase = increase
        self.decrease = decrease
        self.rtt_ms = rtt_ms
        self.cooldown_ms = cooldown_ms
        self._recover_until: Optional[float] = None
        self._next_free = 0.0
        self.successes = 0
        self.congestions = 0
        self.decreases = 0
        self.min_seen = self.window
        self.max_seen = self.window

    def on_success(self) -> None:
        """One request completed: grow by ~1/window (additive per RTT)."""
        self.successes += 1
        self.window = min(self.max_window,
                          self.window + self.increase / max(1.0, self.window))
        self.max_seen = max(self.max_seen, self.window)

    def on_congestion(self, now: float) -> None:
        """An OVERLOAD reply or timeout: halve, at most once per cooldown."""
        self.congestions += 1
        if self._recover_until is not None and now < self._recover_until:
            return
        self.window = max(self.min_window, self.window * self.decrease)
        self.decreases += 1
        self._recover_until = now + self.cooldown_ms
        self.min_seen = min(self.min_seen, self.window)

    def reserve(self, now: float) -> float:
        """Claim the next send slot; returns how long to wait (ms, >= 0).

        Slots are spaced ``rtt_ms / window`` apart, i.e. the window is an
        allowed-concurrency-per-RTT turned into a pacing rate.
        """
        interval = self.rtt_ms / self.window
        start = max(now, self._next_free)
        self._next_free = start + interval
        return start - now

    def backoff_ms(self) -> float:
        """Retry backoff scaled to the window: full window → one RTT,
        smallest window → stretched by sqrt(max/min)."""
        return self.rtt_ms * (self.max_window / self.window) ** 0.5

    def stats(self) -> dict:
        return {"window": round(self.window, 3),
                "min_seen": round(self.min_seen, 3),
                "max_seen": round(self.max_seen, 3),
                "successes": self.successes,
                "congestions": self.congestions,
                "decreases": self.decreases}
