"""Sequencer-side admission control: token bucket + CoDel-style shedding.

Why the *sequencer* and not the executor: every replica of a group
applies the same ordered sequence, so a shed decision taken after
ordering would have to be replicated itself or the replicas diverge.
The sequencer is the one process that sees a client entry before it is
ordered — shedding there keeps the admitted sequence identical on all
members for free, and the shed entry simply never enters the log.

The delay signal is the *sojourn time* of deliveries leaving the
colocated executor queue (the sequencer replica is also an executor, so
its own queue is the congestion it is protecting): the executor loop
reports each dequeued delivery's queue time via :meth:`note_sojourn`,
and the CoDel state machine decides when sustained delay warrants
shedding new arrivals. Everything runs on virtual time with no RNG —
admission decisions are a pure function of the arrival/sojourn history.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.qos.config import QosConfig


class TokenBucket:
    """Virtual-time token bucket: ``rate_per_s`` admissions, burst depth.

    Refill is computed lazily from elapsed virtual time, so the bucket
    costs one multiply per admission check and never schedules events.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_ms = rate_per_s / 1000.0
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_refill = 0.0

    def try_take(self, now: float) -> bool:
        """Take one token at virtual time ``now``; False when empty."""
        if now > self._last_refill:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self._last_refill) * self.rate_per_ms)
            self._last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CoDelShedder:
    """CoDel-style controller driven by observed queue sojourn times.

    Classic CoDel drops at dequeue; here the *observation* happens at
    dequeue (:meth:`note_sojourn`) but the action is taken on new
    arrivals (:meth:`should_shed`) — the shed must happen before
    ordering. The control law is unchanged: once sojourn stays above
    ``target_ms`` for a full ``interval_ms`` the controller enters the
    shedding state and sheds at ``interval / sqrt(count)`` spacing,
    leaving the state as soon as a sojourn observation falls back under
    target.
    """

    def __init__(self, target_ms: float, interval_ms: float):
        self.target_ms = target_ms
        self.interval_ms = interval_ms
        self.shedding = False
        self._first_above: Optional[float] = None
        self._shed_next = 0.0
        self._count = 0

    def note_sojourn(self, now: float, sojourn_ms: float) -> None:
        """Feed one dequeued delivery's queue time into the controller."""
        if sojourn_ms < self.target_ms:
            self._first_above = None
            self.shedding = False
            return
        if self._first_above is None:
            self._first_above = now + self.interval_ms
        elif not self.shedding and now >= self._first_above:
            self.shedding = True
            # Restart near the recent shed cadence rather than from 1 —
            # standard CoDel memory, reaches the right rate faster when
            # overload resumes shortly after a lull.
            self._count = max(1, self._count - 2)
            self._shed_next = now

    def should_shed(self, now: float) -> bool:
        """True when a new arrival should be shed right now."""
        if not self.shedding or now < self._shed_next:
            return False
        self._count += 1
        self._shed_next = now + self.interval_ms / math.sqrt(self._count)
        return True


class AdmissionController:
    """One group's ingress guard: bucket + CoDel + priority bypass.

    ``admit`` returns ``None`` to admit or a short shed reason
    (``"rate"`` / ``"codel"``) that travels back to the client inside
    the ``OVERLOAD`` reply. Control traffic must be checked with
    ``sheddable=False``: it is counted but never shed — moves, heal
    actions and reconfiguration cannot be starved by client load.
    """

    def __init__(self, config: QosConfig, name: str = ""):
        self.name = name
        self.bucket = (TokenBucket(config.rate_per_s, config.burst)
                       if config.rate_per_s is not None else None)
        self.codel = CoDelShedder(config.codel_target_ms,
                                  config.codel_interval_ms)
        self.admitted = 0
        self.bypassed = 0
        self.shed_rate = 0
        self.shed_codel = 0

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_codel

    def note_sojourn(self, now: float, sojourn_ms: float) -> None:
        self.codel.note_sojourn(now, sojourn_ms)

    def admit(self, now: float, sheddable: bool = True) -> Optional[str]:
        if not sheddable:
            self.bypassed += 1
            return None
        if self.bucket is not None and not self.bucket.try_take(now):
            self.shed_rate += 1
            return "rate"
        if self.codel.should_shed(now):
            self.shed_codel += 1
            return "codel"
        self.admitted += 1
        return None

    def stats(self) -> dict:
        """Counter snapshot for ``qos.*`` gauges and campaign reports."""
        return {"name": self.name, "admitted": self.admitted,
                "bypassed": self.bypassed, "shed_rate": self.shed_rate,
                "shed_codel": self.shed_codel}
