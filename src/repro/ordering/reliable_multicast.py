"""Reliable multicast (Section 2.3 of the paper).

Guarantees, among correct processes:

* *validity* — a message rmcast by a correct process is delivered by every
  correct destination;
* *agreement* — if one correct destination delivers, all correct
  destinations deliver;
* *integrity* — at-most-once delivery, and only of messages actually sent.

Implementation: the sender unicasts to every member of every destination
group. With ``relay=True`` each receiver re-forwards the message to the
other destinations on first delivery, which covers the case of a sender
crashing after reaching only a subset (this is the textbook eager-relay
algorithm). Duplicates are suppressed with a per-node delivered set, keyed
by a globally unique multicast id.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from repro.net import Message
from repro.ordering.group import GroupDirectory
from repro.ordering.node import ProtocolNode

_rm_counter = itertools.count()

KIND = "rmcast"

DeliverCallback = Callable[[Any, "Message"], None]


class ReliableMulticast:
    """Per-node reliable multicast endpoint.

    Example (inside a node's protocol code)::

        rmcast = ReliableMulticast(node, directory)
        rmcast.on_deliver(lambda payload, msg: ...)
        rmcast.multicast(["partition-1"], {"var": "x", "value": 3})
    """

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 relay: bool = False):
        self.node = node
        self.directory = directory
        self.relay = relay
        self._delivered: set[str] = set()
        self._callbacks: list[DeliverCallback] = []
        node.on(KIND, self._on_message)

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register a delivery callback ``callback(payload, message)``."""
        self._callbacks.append(callback)

    def multicast(self, groups: Iterable[str], payload: Any,
                  size: int = 256) -> str:
        """rmcast ``payload`` to all members of ``groups``; returns the id."""
        groups = sorted(set(groups))
        uid = f"rm-{self.node.name}-{next(_rm_counter)}"
        envelope = {"uid": uid, "groups": groups, "payload": payload}
        destinations = self.directory.all_members(groups)
        for dst in destinations:
            if dst == self.node.name:
                # Local delivery without a network round-trip would break
                # the "every destination sees the same thing" symmetry used
                # by tests; send to self through the network for uniformity.
                pass
            self.node.send(dst, KIND, envelope, size=size)
        return uid

    def _on_message(self, message: Message) -> None:
        envelope = message.payload
        uid = envelope["uid"]
        if uid in self._delivered:
            return
        self._delivered.add(uid)
        if self.relay:
            size = max(message.size, 64)
            for dst in self.directory.all_members(envelope["groups"]):
                if dst != self.node.name:
                    self.node.send(dst, KIND, envelope, size=size)
        for callback in list(self._callbacks):
            callback(envelope["payload"], message)
