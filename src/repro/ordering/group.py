"""Group membership directory.

Server processes are organised into disjoint groups (Section 2.1): one group
per state partition, plus one group for the replicated oracle. The directory
is static over a run — the paper does not consider membership reconfiguration
(explicitly called orthogonal in its related-work section).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class GroupDirectory:
    """Immutable-by-convention mapping from group name to member node names.

    Member lists are kept sorted so every node derives the same
    deterministic choices (e.g. who the group's sequencer or speaker is).
    """

    def __init__(self, groups: Mapping[str, Sequence[str]] | None = None):
        self._members: dict[str, tuple[str, ...]] = {}
        if groups:
            for name, members in groups.items():
                self.add_group(name, members)

    def add_group(self, name: str, members: Iterable[str]) -> None:
        members = tuple(sorted(members))
        if not members:
            raise ValueError(f"group {name!r} must have at least one member")
        if name in self._members:
            raise ValueError(f"duplicate group: {name!r}")
        seen: set[str] = set()
        for existing in self._members.values():
            seen.update(existing)
        overlap = seen.intersection(members)
        if overlap:
            raise ValueError(f"groups must be disjoint; reused: {overlap}")
        self._members[name] = members

    def groups(self) -> list[str]:
        return sorted(self._members)

    def members(self, group: str) -> tuple[str, ...]:
        try:
            return self._members[group]
        except KeyError:
            raise KeyError(f"unknown group: {group!r}") from None

    def group_of(self, node: str) -> str | None:
        """Group containing ``node``, or None (e.g. for clients)."""
        for name, members in self._members.items():
            if node in members:
                return name
        return None

    def all_members(self, groups: Iterable[str]) -> list[str]:
        """Union of the members of ``groups``, sorted."""
        out: set[str] = set()
        for group in groups:
            out.update(self.members(group))
        return sorted(out)

    def speaker(self, group: str) -> str:
        """Deterministic designated speaker/sequencer: first sorted member."""
        return self.members(group)[0]

    def __contains__(self, group: str) -> bool:
        return group in self._members

    def __len__(self) -> int:
        return len(self._members)
