"""Centralized (non-genuine) atomic multicast — the baseline primitive.

A single global sequencer orders *every* multicast message, assigning each
destination group a gapless per-group sequence number and fanning the
message out to all destination members. This satisfies all the Section-2.4
properties (the sequencer's global order projects onto consistent per-group
orders), but it is **not genuine**: even a single-group message travels
through the global sequencer, which becomes both a throughput bottleneck
(it can charge per-message CPU time) and a single point of failure.

The genuine Skeen-style protocol (:mod:`repro.ordering.atomic_multicast`)
involves only the destination groups, at the price of a timestamp exchange
for multi-group messages. Benchmark E13 compares the two primitives —
the trade-off that made the literature (and the paper's Paxos-based
multicast library) prefer genuine protocols for partitioned SMR.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.net import Message
from repro.ordering.atomic_multicast import AmcastDelivery, new_amcast_uid
from repro.ordering.group import GroupDirectory
from repro.ordering.node import ProtocolNode
from repro.sim import Channel, Interrupted

SUBMIT = "cseq/submit"
DELIVER = "cseq/deliver"

DeliverCallback = Callable[[AmcastDelivery], None]


class GlobalSequencer:
    """The process that orders everything.

    ``service_time_ms`` models the sequencer's per-message CPU cost; with
    it set, the sequencer saturates under load — the bottleneck the genuine
    protocol avoids.
    """

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 service_time_ms: float = 0.0):
        self.node = node
        self.directory = directory
        self.service_time_ms = service_time_ms
        self._group_seq: dict[str, int] = {}
        self._seen_uids: set[str] = set()
        self.sequenced = 0
        self._queue = Channel(node.env, name=f"{node.name}/cseq")
        node.on(SUBMIT, self._queue.put)
        self._worker = node.env.process(self._serve(),
                                        name=f"{node.name}/cseq-worker")

    def _serve(self):
        try:
            while True:
                message: Message = yield self._queue.get()
                if self.service_time_ms > 0:
                    yield self.node.env.timeout(self.service_time_ms)
                self._sequence(message.payload, message.size)
        except Interrupted:
            return

    def _sequence(self, envelope: dict, size: int) -> None:
        uid = envelope["uid"]
        if uid in self._seen_uids:
            return
        self._seen_uids.add(uid)
        self.sequenced += 1
        groups = envelope["groups"]
        stamped = dict(envelope, seqs={})
        for group in groups:
            seq = self._group_seq.get(group, 0)
            self._group_seq[group] = seq + 1
            stamped["seqs"][group] = seq
        for member in self.directory.all_members(groups):
            self.node.send(member, DELIVER, stamped, size=size)


class CentralizedAtomicMulticast:
    """A group member's endpoint of the centralized multicast.

    Interface-compatible with
    :class:`~repro.ordering.atomic_multicast.AtomicMulticast`:
    ``multicast(groups, payload)`` and ``on_deliver(callback)``; deliveries
    arrive in the group's sequencer-assigned order, gaplessly.
    """

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 group: str, sequencer_name: str):
        self.node = node
        self.directory = directory
        self.group = group
        self.sequencer_name = sequencer_name
        self._next_seq = 0
        self._pending: dict[int, dict] = {}
        self._callbacks: list[DeliverCallback] = []
        self._deliver_count = 0
        self.delivery_log: list[str] = []
        node.on(DELIVER, self._on_deliver_message)

    def on_deliver(self, callback: DeliverCallback) -> None:
        self._callbacks.append(callback)

    def multicast(self, groups: Iterable[str], payload: Any,
                  size: int = 256, uid: Optional[str] = None) -> str:
        groups = tuple(sorted(set(groups)))
        if not groups:
            raise ValueError("amcast needs at least one destination group")
        uid = uid or new_amcast_uid(self.node.name)
        self.node.send(self.sequencer_name, SUBMIT, {
            "uid": uid, "groups": list(groups),
            "payload": payload, "origin": self.node.name,
        }, size=size + 64)
        return uid

    def _on_deliver_message(self, message: Message) -> None:
        envelope = message.payload
        seq = envelope["seqs"][self.group]
        if seq < self._next_seq or seq in self._pending:
            return  # duplicate
        self._pending[seq] = envelope
        while self._next_seq in self._pending:
            ready = self._pending.pop(self._next_seq)
            self._next_seq += 1
            delivery = AmcastDelivery(
                uid=ready["uid"],
                payload=ready["payload"],
                groups=tuple(ready["groups"]),
                origin=ready["origin"],
                timestamp=(float(self._next_seq - 1), ready["uid"]),
                local_seq=self._deliver_count,
            )
            self._deliver_count += 1
            self.delivery_log.append(ready["uid"])
            for callback in list(self._callbacks):
                callback(delivery)


class CentralizedMulticastClient:
    """Initiator for processes outside all groups (clients)."""

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 sequencer_name: str):
        self.node = node
        self.directory = directory
        self.sequencer_name = sequencer_name

    def multicast(self, groups: Iterable[str], payload: Any,
                  size: int = 256, uid: Optional[str] = None) -> str:
        groups = tuple(sorted(set(groups)))
        if not groups:
            raise ValueError("amcast needs at least one destination group")
        uid = uid or new_amcast_uid(self.node.name)
        self.node.send(self.sequencer_name, SUBMIT, {
            "uid": uid, "groups": list(groups),
            "payload": payload, "origin": self.node.name,
        }, size=size + 64)
        return uid
