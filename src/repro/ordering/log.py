"""Per-group ordered logs.

A *group log* gives the members of one server group a shared, gapless,
totally ordered sequence of entries — the building block both for atomic
broadcast within a group and for the Skeen-style atomic multicast across
groups (:mod:`repro.ordering.atomic_multicast`).

Interface contract (for every implementation):

* :meth:`GroupLog.submit` — propose an entry (a dict with a unique ``uid``);
  entries from correct submitters are eventually decided.
* decide callbacks fire on every member, in sequence order, starting from
  sequence 0 with no gaps, and each ``uid`` is applied at most once.

Two implementations: :class:`SequencerLog` (fixed sequencer — minimal
message cost, used for the large-scale benchmarks) and
:class:`~repro.ordering.paxos.PaxosLog` (leader-based Multi-Paxos — crash
fault tolerant, used by the failure-injection tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.net import Message
from repro.ordering.group import GroupDirectory
from repro.ordering.node import ProtocolNode

DecideCallback = Callable[[int, dict], None]


def submit_kind(group: str) -> str:
    """Message kind used to submit an entry to ``group``'s log."""
    return f"log/{group}/submit"


class GroupLog(ABC):
    """One member's endpoint of a group's ordered log.

    Besides ordering, every log retains its decided entries and answers
    *backfill* requests — the mechanism recovering replicas use to close
    the gap between a state snapshot and live traffic (see
    :mod:`repro.smr.recovery`). A member that detects a hole in its own
    sequence also requests backfill from the group's speaker.
    """

    BACKFILL_DELAY_MS = 50.0

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 group: str):
        if node.name not in directory.members(group):
            raise ValueError(
                f"{node.name} is not a member of group {group!r}")
        self.node = node
        self.directory = directory
        self.group = group
        self._decide_callbacks: list[DecideCallback] = []
        self._next_apply = 0
        self._pending_apply: dict[int, dict] = {}
        self._applied_uids: set[str] = set()
        self.decided_entries: dict[int, dict] = {}
        self._backfill_scheduled = False
        self._backfill_suspended = False
        self._wal = None
        node.on(f"log/{group}/backfill-req", self._on_backfill_request)
        node.on(f"log/{group}/backfill", self._on_backfill)

    def on_decide(self, callback: DecideCallback) -> None:
        """Register ``callback(seq, entry)``, called in order, exactly once."""
        self._decide_callbacks.append(callback)

    def attach_wal(self, wal) -> None:
        """Append every applied position to ``wal`` (see :mod:`repro.store`).

        The append happens before the decide callbacks run — i.e. before
        execution — so the ordered history on disk is always at least as
        long as what the state machine has seen.
        """
        self._wal = wal

    @abstractmethod
    def submit(self, entry: dict) -> None:
        """Propose ``entry`` (must contain a unique ``'uid'`` key)."""

    # -- shared apply machinery -------------------------------------------

    def _learn(self, seq: int, entry: dict) -> None:
        """Record that ``entry`` was decided at ``seq``; apply when gapless."""
        self.decided_entries.setdefault(seq, entry)
        if seq < self._next_apply or seq in self._pending_apply:
            return
        self._pending_apply[seq] = entry
        while self._next_apply in self._pending_apply:
            ready = self._pending_apply.pop(self._next_apply)
            seq_now = self._next_apply
            self._next_apply += 1
            if self._wal is not None:
                self._wal.append(seq_now, ready)
            uid = ready.get("uid")
            if uid is not None:
                if uid in self._applied_uids:
                    continue  # duplicate decision of a resubmitted entry
                self._applied_uids.add(uid)
            if ready.get("noop"):
                continue
            for callback in list(self._decide_callbacks):
                callback(seq_now, ready)
        if self._pending_apply:
            self._schedule_backfill()

    @property
    def applied_count(self) -> int:
        """Number of log positions applied so far (including no-ops)."""
        return self._next_apply

    # -- recovery support ----------------------------------------------------

    def fast_forward(self, position: int) -> None:
        """Skip positions below ``position`` (covered by a state snapshot)."""
        if position < self._next_apply:
            raise ValueError("cannot fast-forward backwards")
        self._next_apply = position
        for seq in [s for s in self._pending_apply if s < position]:
            del self._pending_apply[seq]

    def suspend_backfill(self) -> None:
        """Hold automatic gap backfill (recovery install window).

        A replacement replica's log starts at position 0 and would
        otherwise backfill the whole history from the speaker before the
        state snapshot arrives — wasted traffic, and the early entries
        would be re-applied below the snapshot's fast-forward position.
        """
        self._backfill_suspended = True

    def resume_backfill(self) -> None:
        self._backfill_suspended = False
        if self._pending_apply:
            self._schedule_backfill()

    def request_backfill(self, provider: Optional[str] = None) -> None:
        """Ask ``provider`` (default: the group speaker) for decided
        entries from our next-apply position onward."""
        target = provider or self.directory.speaker(self.group)
        if target == self.node.name:
            return
        self.node.send(target, f"log/{self.group}/backfill-req",
                       {"from_seq": self._next_apply,
                        "reply_to": self.node.name}, size=96)

    def _schedule_backfill(self) -> None:
        if self._backfill_scheduled or self._backfill_suspended:
            return
        self._backfill_scheduled = True

        def fire() -> None:
            self._backfill_scheduled = False
            if self._pending_apply and not self.node.crashed:
                self.request_backfill()

        self.node.env.schedule_callback(self.BACKFILL_DELAY_MS, fire)

    def _on_backfill_request(self, message: Message) -> None:
        from_seq = message.payload["from_seq"]
        entries = {seq: entry
                   for seq, entry in self.decided_entries.items()
                   if seq >= from_seq}
        if entries:
            size = 128 + sum(64 + e.get("size", 0)
                             for e in entries.values())
            self.node.send(message.payload["reply_to"],
                           f"log/{self.group}/backfill",
                           {"entries": entries}, size=size)

    def _on_backfill(self, message: Message) -> None:
        for seq, entry in sorted(message.payload["entries"].items()):
            self._learn(int(seq), entry)


class SequencerLog(GroupLog):
    """Fixed-sequencer ordered log.

    The group's deterministic speaker assigns sequence numbers and fans the
    decision out to all members. Not tolerant to sequencer crashes — the
    fault-tolerant log is :class:`~repro.ordering.paxos.PaxosLog`. The DSN
    testbed used a Paxos-based multicast library; the sequencer variant
    preserves the same ordering semantics at lower simulation cost.

    **Batching** (the classic ordered-log throughput optimisation): with
    ``batch_window_ms > 0`` the sequencer buffers submissions for up to
    that long and fans them out as one decision message carrying the whole
    batch — each entry still gets its own consecutive sequence number, so
    nothing above the log can tell the difference except the message count
    (benchmark E14 quantifies it) and the added latency.
    """

    # Wire size of log control traffic (entry payloads ride on top).
    CONTROL_SIZE = 128

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 group: str, batch_window_ms: float = 0.0):
        super().__init__(node, directory, group)
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        self.sequencer = directory.speaker(group)
        self.batch_window_ms = batch_window_ms
        self._is_sequencer = node.name == self.sequencer
        self._next_seq = 0
        self._sequenced_uids: set[str] = set()
        self._batch: list[dict] = []
        self._flush_scheduled = False
        self.decisions_sent = 0   # decision messages (for E14)
        # Overload control (repro.qos), attached by the harness; all None
        # by default so the pre-QoS hot path is untouched.
        self._admission = None
        self._batcher = None
        self._on_shed = None
        self._classify = None
        node.on(submit_kind(group), self._on_submit)
        node.on(f"log/{group}/decide", self._on_decide)
        # A batch held across a blackout must drain once we are back.
        node.on_reconnect(self.flush_pending)

    def attach_qos(self, admission=None, batcher=None, on_shed=None,
                   classify=None) -> None:
        """Attach overload control (see :mod:`repro.qos`).

        ``admission`` decides, per client entry arriving at the
        sequencer, whether to order or shed it; shed entries are handed
        to ``on_shed(entry, reason)`` so the owning server can send the
        client an explicit ``OVERLOAD`` reply. ``batcher`` replaces the
        fixed ``batch_window_ms`` with a queue-depth-adaptive window.
        ``classify(entry) -> (priority, sheddable)`` marks control
        traffic: never shed, and sorted ahead of client entries when a
        batch flushes (reordering is only legal *before* ordering).
        """
        self._admission = admission
        self._batcher = batcher
        self._on_shed = on_shed
        self._classify = classify

    def restore_sequencer_state(self, next_seq: int, uids) -> None:
        """Rebuild sequencer counters after a durable cold start.

        A power-lost speaker resurrects from its own disk: the replayed
        WAL tells it the highest sequence number it ever handed out and
        which uids it already ordered, so resent client commands dedup
        instead of being sequenced twice. No-op on non-sequencers.
        """
        if not self._is_sequencer:
            return
        self._next_seq = max(self._next_seq, int(next_seq))
        self._sequenced_uids.update(uids)

    def submit(self, entry: dict) -> None:
        if "uid" not in entry:
            raise ValueError("log entries must carry a 'uid'")
        if self._is_sequencer:
            self._sequence(entry)
        else:
            self.node.send(self.sequencer, submit_kind(self.group), entry,
                           size=self.CONTROL_SIZE + entry.get("size", 0))

    def _on_submit(self, message: Message) -> None:
        if not self._is_sequencer:
            # Stale client view; forward to the real sequencer.
            self.node.send(self.sequencer, submit_kind(self.group),
                           message.payload, size=message.size)
            return
        self._sequence(message.payload)

    def _sequence(self, entry: dict) -> None:
        uid = entry["uid"]
        if uid in self._sequenced_uids:
            return
        if self._admission is not None:
            priority, sheddable = self._classify(entry)
            reason = self._admission.admit(self.node.env.now,
                                           sheddable=sheddable)
            if reason is not None:
                # Shed before recording the uid so a resubmission of the
                # same entry gets a fresh admission decision.
                if self._on_shed is not None:
                    self._on_shed(entry, reason)
                return
        self._sequenced_uids.add(uid)
        window = (self._batcher.window_ms() if self._batcher is not None
                  else self.batch_window_ms)
        if window <= 0 and not self._batch:
            self._flush([entry])
            return
        # Entries held from an earlier window (blackout) stay ahead of
        # new arrivals: everything drains through one ordered batch.
        self._batch.append(entry)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.node.env.schedule_callback(window, self._flush_batch)

    def _flush_batch(self) -> None:
        self._flush_scheduled = False
        if not self._batch:
            return
        if self.node.crashed or self.node.network.is_crashed(self.node.name):
            # Unreachable mid-window: flushing now would fan the decision
            # into dropped links and strand the batch on the members.
            # Hold it — flush_pending drains it on reconnect, and any new
            # submission re-arms the window.
            return
        self._drain_batch()

    def flush_pending(self) -> None:
        """Flush the open batch immediately, if any.

        The batching window is a throughput optimisation, not a
        durability boundary: a sequencer drained out of the
        configuration mid-window, or returning from a network blackout,
        must not strand the entries buffered in ``_batch``. Harness
        drain paths and the node's reconnect hook call this; the
        already-scheduled window callback then finds an empty batch and
        no-ops.
        """
        if self._batch and not self.node.crashed:
            self._drain_batch()

    def _drain_batch(self) -> None:
        batch, self._batch = self._batch, []
        if self._classify is not None:
            # Stable sort: control entries first, FIFO within a class.
            batch.sort(key=lambda entry: self._classify(entry)[0])
        self._flush(batch)

    def _flush(self, entries: list[dict]) -> None:
        first_seq = self._next_seq
        self._next_seq += len(entries)
        decision = {"seq": first_seq, "entries": entries}
        size = self.CONTROL_SIZE + sum(e.get("size", 0) for e in entries)
        self.decisions_sent += 1
        if self.node.profiler.enabled:
            # Sequencing is instantaneous in virtual time; the profiler
            # records it as a count-only mark so the table still shows
            # how many entries each group's sequencer ordered (the fan-out
            # cost itself lands in the net subtree per decide message).
            self.node.profiler.mark(self.node.name, "sequence",
                                    len(entries))
        for member in self.directory.members(self.group):
            if member == self.node.name:
                continue
            self.node.send(member, f"log/{self.group}/decide", decision,
                           size=size)
        for offset, entry in enumerate(entries):
            self._learn(first_seq + offset, entry)

    def _on_decide(self, message: Message) -> None:
        decision = message.payload
        entries = decision.get("entries")
        if entries is None:
            entries = [decision["entry"]]  # single-entry wire format
        for offset, entry in enumerate(entries):
            self._learn(decision["seq"] + offset, entry)


class LogClient:
    """Submission helper for processes outside a group (e.g. clients).

    Sends the entry to the group's speaker; with ``broadcast=True`` it sends
    to every member instead, which survives speaker/leader crashes at the
    cost of extra messages (members deduplicate by uid).
    """

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 broadcast: bool = False):
        self.node = node
        self.directory = directory
        self.broadcast = broadcast

    def submit(self, group: str, entry: dict, size: int = 256) -> None:
        if "uid" not in entry:
            raise ValueError("log entries must carry a 'uid'")
        if self.broadcast:
            targets: tuple[str, ...] = self.directory.members(group)
        else:
            targets = (self.directory.speaker(group),)
        for target in targets:
            self.node.send(target, submit_kind(group), entry, size=size)
