"""Multi-Paxos ordered log (crash fault tolerant).

A from-scratch Multi-Paxos where every group member plays proposer,
acceptor and learner. Leadership rotates by round: the leader of round ``r``
is ``members[r % n]``. A new leader runs phase 1 once for the whole log
(single ballot for all instances — the classic Multi-Paxos optimisation),
adopts the highest-ballot accepted values it hears about, fills holes with
no-ops, and then streams phase-2 ``accept`` messages for submissions.

Liveness machinery:

* leader heartbeats + per-member timeout-based suspicion drive round
  changes;
* members resubmit entries they have forwarded until the entry is applied;
* members with a gap periodically ask the leader for the missing decision
  (covers decide messages lost to injected drops).

Safety rests only on ballot comparison and majority quorums, so the log
stays correct under message loss, reordering and up to ``⌈n/2⌉-1`` member
crashes.
"""

from __future__ import annotations

from typing import Optional

from repro.heal.timing import DEFAULT_TIMING, TimingProfile
from repro.net import Message
from repro.ordering.group import GroupDirectory
from repro.ordering.log import GroupLog, submit_kind
from repro.ordering.node import ProtocolNode

Ballot = tuple[int, int]  # (round, member rank); compared lexicographically


class PaxosLog(GroupLog):
    """One member's endpoint of a Multi-Paxos replicated log."""

    # Liveness timers come from the shared profile (repro.heal.timing);
    # the class attributes keep the historical spelling and defaults, and
    # a per-instance ``timing`` overrides them (e.g. FAST_TIMING in tests).
    HEARTBEAT_MS = DEFAULT_TIMING.paxos_heartbeat_ms
    SUSPECT_MS = DEFAULT_TIMING.paxos_suspect_ms
    RETRY_MS = DEFAULT_TIMING.paxos_retry_ms
    CONTROL_SIZE = 128

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 group: str, timing: Optional[TimingProfile] = None):
        super().__init__(node, directory, group)
        if timing is not None:
            self.HEARTBEAT_MS = timing.paxos_heartbeat_ms
            self.SUSPECT_MS = timing.paxos_suspect_ms
            self.RETRY_MS = timing.paxos_retry_ms
        self.members = directory.members(group)
        self.rank = self.members.index(node.name)
        self.majority = len(self.members) // 2 + 1

        # Acceptor state.
        self.promised: Optional[Ballot] = None
        self.accepted: dict[int, tuple[Ballot, dict]] = {}

        # Leader / proposer state.
        self.round = 0
        self.leading = False
        self.ballot: Optional[Ballot] = None
        self.next_instance = 0
        self._promises: dict[str, dict[int, tuple[Ballot, dict]]] = {}
        self._inflight: dict[int, dict] = {}   # instance -> proposal record
        self._queue: list[dict] = []           # entries awaiting proposal
        self._proposed_uids: set[str] = set()
        self.decided: dict[int, dict] = {}

        # Client-side retry state: uid -> entry we are responsible for.
        self._tracked: dict[str, dict] = {}
        self._last_heartbeat = node.env.now

        prefix = f"paxos/{group}"
        node.on(submit_kind(group), self._on_submit)
        node.on(f"{prefix}/prepare", self._on_prepare)
        node.on(f"{prefix}/promise", self._on_promise)
        node.on(f"{prefix}/accept", self._on_accept)
        node.on(f"{prefix}/accepted", self._on_accepted)
        node.on(f"{prefix}/decide", self._on_decide)
        node.on(f"{prefix}/heartbeat", self._on_heartbeat)
        node.on(f"{prefix}/catchup", self._on_catchup)

        if self._leader_of_round(0) == node.name:
            self._start_phase1()
        self._schedule(self.HEARTBEAT_MS, self._heartbeat_tick)
        self._schedule(self.SUSPECT_MS, self._suspect_tick)
        self._schedule(self.RETRY_MS, self._retry_tick)

    # -- helpers ------------------------------------------------------------

    def _leader_of_round(self, round_number: int) -> str:
        return self.members[round_number % len(self.members)]

    @property
    def leader(self) -> str:
        """The member this node currently believes is leader."""
        return self._leader_of_round(self.round)

    def _schedule(self, delay: float, fn) -> None:
        def guarded() -> None:
            if not self.node.crashed:
                fn()
        self.node.env.schedule_callback(delay, guarded)

    def _bcast(self, kind_suffix: str, payload: dict,
               size: int | None = None) -> None:
        kind = f"paxos/{self.group}/{kind_suffix}"
        size = size if size is not None else self.CONTROL_SIZE
        for member in self.members:
            if member != self.node.name:
                self.node.send(member, kind, payload, size=size)

    # -- submission ------------------------------------------------------------

    def submit(self, entry: dict) -> None:
        if "uid" not in entry:
            raise ValueError("log entries must carry a 'uid'")
        self._tracked[entry["uid"]] = entry
        self._route_to_leader(entry)

    def _route_to_leader(self, entry: dict) -> None:
        if self.leading:
            self._propose(entry)
        else:
            self.node.send(self.leader, submit_kind(self.group), entry,
                           size=self.CONTROL_SIZE + entry.get("size", 0))

    def _on_submit(self, message: Message) -> None:
        entry = message.payload
        self._tracked.setdefault(entry["uid"], entry)
        if self.leading:
            self._propose(entry)
        # If not leading, the retry timer re-routes it later.

    # -- phase 1 ------------------------------------------------------------

    def _start_phase1(self) -> None:
        self.ballot = (self.round, self.rank)
        self._promises = {}
        self.leading = False
        # Self-promise.
        if self.promised is None or self.ballot >= self.promised:
            self.promised = self.ballot
            self._promises[self.node.name] = dict(self.accepted)
        self._bcast("prepare", {"ballot": self.ballot})
        self._check_phase1()

    def _on_prepare(self, message: Message) -> None:
        ballot = tuple(message.payload["ballot"])
        if self.promised is None or ballot >= self.promised:
            self.promised = ballot
            self.node.send(message.src, f"paxos/{self.group}/promise",
                           {"ballot": ballot, "accepted": dict(self.accepted)},
                           size=self.CONTROL_SIZE)
            # A higher ballot means someone else is taking over.
            if self.leading and ballot > self.ballot:
                self.leading = False

    def _on_promise(self, message: Message) -> None:
        if tuple(message.payload["ballot"]) != self.ballot or self.leading:
            return
        self._promises[message.src] = message.payload["accepted"]
        self._check_phase1()

    def _check_phase1(self) -> None:
        if self.leading or len(self._promises) < self.majority:
            return
        self.leading = True
        # Adopt the highest-ballot accepted value per instance.
        adopted: dict[int, dict] = {}
        for accepted_map in self._promises.values():
            for instance, (ballot, entry) in accepted_map.items():
                instance = int(instance)
                current = adopted.get(instance)
                if current is None or tuple(ballot) > current[0]:
                    adopted[instance] = (tuple(ballot), entry)
        highest = max(list(adopted) + list(self.decided) + [-1])
        self.next_instance = highest + 1
        self._inflight = {}
        for instance in range(self.next_instance):
            if instance in self.decided:
                continue
            if instance in adopted:
                entry = adopted[instance][1]
            else:
                entry = {"uid": f"noop-{self.group}-{instance}",
                         "noop": True}
            self._send_accepts(instance, entry)
        # Flush queued client entries.
        queue, self._queue = self._queue, []
        for entry in queue:
            self._propose(entry)

    # -- phase 2 ------------------------------------------------------------

    def _propose(self, entry: dict) -> None:
        uid = entry["uid"]
        if uid in self._proposed_uids or uid in self._applied_uids:
            return
        if not self.leading:
            self._queue.append(entry)
            return
        self._proposed_uids.add(uid)
        instance = self.next_instance
        self.next_instance += 1
        self._send_accepts(instance, entry)

    def _send_accepts(self, instance: int, entry: dict) -> None:
        record = {"entry": entry, "acks": {self.node.name}}
        self._inflight[instance] = record
        # Self-accept.
        self.accepted[instance] = (self.ballot, entry)
        payload = {"ballot": self.ballot, "instance": instance,
                   "entry": entry}
        self._bcast("accept", payload,
                    size=self.CONTROL_SIZE + entry.get("size", 0))
        self._check_decided(instance)

    def _on_accept(self, message: Message) -> None:
        ballot = tuple(message.payload["ballot"])
        if self.promised is not None and ballot < self.promised:
            return
        self.promised = ballot
        instance = message.payload["instance"]
        self.accepted[instance] = (ballot, message.payload["entry"])
        self.node.send(message.src, f"paxos/{self.group}/accepted",
                       {"ballot": ballot, "instance": instance},
                       size=self.CONTROL_SIZE)

    def _on_accepted(self, message: Message) -> None:
        if not self.leading:
            return
        if tuple(message.payload["ballot"]) != self.ballot:
            return
        instance = message.payload["instance"]
        record = self._inflight.get(instance)
        if record is None:
            return
        record["acks"].add(message.src)
        self._check_decided(instance)

    def _check_decided(self, instance: int) -> None:
        record = self._inflight.get(instance)
        if record is None or len(record["acks"]) < self.majority:
            return
        entry = record["entry"]
        del self._inflight[instance]
        self._decide(instance, entry)
        self._bcast("decide", {"instance": instance, "entry": entry},
                    size=self.CONTROL_SIZE + entry.get("size", 0))

    def _on_decide(self, message: Message) -> None:
        self._decide(message.payload["instance"], message.payload["entry"])

    def _decide(self, instance: int, entry: dict) -> None:
        if instance not in self.decided:
            self.decided[instance] = entry
        self._tracked.pop(entry.get("uid"), None)
        self._learn(instance, entry)

    # -- liveness timers ------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.leading:
            self._bcast("heartbeat", {"round": self.round})
        self._schedule(self.HEARTBEAT_MS, self._heartbeat_tick)

    def _on_heartbeat(self, message: Message) -> None:
        their_round = message.payload["round"]
        if their_round >= self.round:
            if their_round > self.round:
                self.round = their_round
                self.leading = False
            self._last_heartbeat = self.node.env.now

    def _suspect_tick(self) -> None:
        stale = self.node.env.now - self._last_heartbeat > self.SUSPECT_MS
        if not self.leading and stale:
            self.round += 1
            self._last_heartbeat = self.node.env.now
            if self.leader == self.node.name:
                self._start_phase1()
        self._schedule(self.SUSPECT_MS, self._suspect_tick)

    def _retry_tick(self) -> None:
        for uid, entry in list(self._tracked.items()):
            if uid in self._applied_uids:
                del self._tracked[uid]
            else:
                self._route_to_leader(entry)
        # Retransmit phase-2 accepts for stalled in-flight instances: a
        # dropped accept/accepted message must not wedge the instance (and
        # with it, gapless application of everything behind it).
        if self.leading:
            for instance, record in list(self._inflight.items()):
                entry = record["entry"]
                self._bcast("accept",
                            {"ballot": self.ballot, "instance": instance,
                             "entry": entry},
                            size=self.CONTROL_SIZE + entry.get("size", 0))
        # Gap-fill: ask the leader for the lowest missing decision.
        if self._pending_apply and not self.leading:
            missing = self._next_apply
            self.node.send(self.leader, f"paxos/{self.group}/catchup",
                           {"instance": missing, "from": self.node.name},
                           size=self.CONTROL_SIZE)
        self._schedule(self.RETRY_MS, self._retry_tick)

    def _on_catchup(self, message: Message) -> None:
        instance = message.payload["instance"]
        entry = self.decided.get(instance)
        if entry is not None:
            self.node.send(message.payload["from"],
                           f"paxos/{self.group}/decide",
                           {"instance": instance, "entry": entry},
                           size=self.CONTROL_SIZE + entry.get("size", 0))
