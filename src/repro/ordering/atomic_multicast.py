"""Genuine atomic multicast (Section 2.4 of the paper).

Skeen-style timestamp protocol layered on per-group ordered logs:

1. *Propose* — the initiator submits the message to the ordered log of every
   destination group. When a group applies the propose entry it advances its
   logical clock and assigns the message a local timestamp.
2. *Timestamp exchange* — the group's speaker submits the local timestamp to
   the log of every destination group (including its own). Applying a
   timestamp entry bumps the local clock to at least that value, which is
   what makes the final order acyclic.
3. *Finalise & deliver* — once timestamps from all destination groups are
   known, the final timestamp is their maximum. A group member delivers the
   pending message with the smallest ``(timestamp, uid)`` key once that
   message is final; a pending non-final message with a smaller provisional
   key blocks delivery (its final timestamp can only grow, never shrink
   below the provisional one).

Because every step is driven by applying ordered-log entries, all members of
a group make identical delivery decisions — the group behaves as one logical
process, which is exactly the abstraction the SMR layers above need.
Single-group messages (atomic broadcast) finalise immediately at proposal
time and pay no timestamp exchange.

Properties delivered (tested in ``tests/ordering`` and property-tested with
hypothesis): validity, uniform agreement, integrity, atomic order and prefix
order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.ordering.group import GroupDirectory
from repro.ordering.log import GroupLog, LogClient
from repro.ordering.node import ProtocolNode

_am_counter = itertools.count()

DeliverCallback = Callable[["AmcastDelivery"], None]

# Self-heal pull request: a group stuck on a non-final message asks another
# destination group's speaker for its missing timestamp announcement.
AM_TS_PULL = "am-ts-pull"


@dataclass
class AmcastDelivery:
    """A message delivered by atomic multicast to one group member."""

    uid: str
    payload: Any
    groups: tuple[str, ...]
    origin: str                # node that multicast the message
    timestamp: tuple[float, str]  # final (timestamp, uid) order key
    local_seq: int             # per-member delivery index


@dataclass
class _Pending:
    groups: tuple[str, ...]
    payload: Any = None
    origin: str = ""
    size: int = 0
    proposed: bool = False
    local_ts: int = 0
    group_ts: dict = field(default_factory=dict)   # group -> ts
    final_ts: Optional[int] = None

    @property
    def current_ts(self) -> int:
        return self.final_ts if self.final_ts is not None else self.local_ts


def new_amcast_uid(origin: str) -> str:
    """Globally unique multicast message id."""
    return f"am-{origin}-{next(_am_counter)}"


class AtomicMulticast:
    """One group member's endpoint of the atomic multicast protocol.

    Construct with the member's ordered log. ``speaker_only=True`` (default)
    has only the group's designated speaker emit timestamp announcements —
    the efficient configuration; set it to False when the speaker may crash,
    in which case every member announces and the logs deduplicate.
    """

    TS_SIZE = 96  # wire size of a timestamp announcement

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 log: GroupLog, speaker_only: bool = True,
                 heal_interval_ms: Optional[float] = 40.0):
        self.node = node
        self.directory = directory
        self.log = log
        self.group = log.group
        self.speaker_only = speaker_only
        # A multi-group message still non-final after this long triggers a
        # self-heal round (re-propose + timestamp pull); None disables.
        # Without it, one dropped propose or timestamp announcement blocks
        # the whole delivery queue of a destination group forever.
        self.heal_interval_ms = heal_interval_ms
        self._log_client = LogClient(node, directory,
                                     broadcast=not speaker_only)
        self._pending: dict[str, _Pending] = {}
        self._clock = 0
        self._delivered_uids: set[str] = set()
        # Own group's timestamp per multi-group muid, kept past delivery so
        # other groups can pull a lost announcement at any time.
        self._my_ts: dict[str, int] = {}
        self._callbacks: list[DeliverCallback] = []
        self._deliver_count = 0
        self.heals = 0
        self.ts_pulls = 0
        self.delivery_log: list[str] = []  # uids in delivery order (tests)
        log.on_decide(self._apply)
        node.on(AM_TS_PULL, self._on_ts_pull)

    # -- API ------------------------------------------------------------------

    def on_deliver(self, callback: DeliverCallback) -> None:
        self._callbacks.append(callback)

    def multicast(self, groups: Iterable[str], payload: Any,
                  size: int = 256, uid: Optional[str] = None) -> str:
        """Atomically multicast ``payload`` to ``groups``; returns the uid."""
        groups = tuple(sorted(set(groups)))
        if not groups:
            raise ValueError("amcast needs at least one destination group")
        uid = uid or new_amcast_uid(self.node.name)
        entry = _propose_entry(uid, groups, payload, self.node.name, size)
        for group in groups:
            if group == self.group:
                self.log.submit(entry)
            else:
                self._log_client.submit(group, entry, size=size + 128)
        return uid

    # -- log application (replicated deterministic state machine) -----------

    def _apply(self, seq: int, entry: dict) -> None:
        kind = entry["kind"]
        if kind == "am-propose":
            self._apply_propose(entry)
        elif kind == "am-ts":
            self._apply_ts(entry)
        else:
            raise ValueError(f"unknown amcast log entry kind: {kind!r}")

    def _apply_propose(self, entry: dict) -> None:
        muid = entry["muid"]
        if muid in self._delivered_uids:
            return
        state = self._pending.setdefault(muid, _Pending(groups=()))
        # The pending record may predate the propose (a timestamp from a
        # faster remote group can be applied first), so fill it in fully.
        state.groups = tuple(entry["groups"])
        state.payload = entry["payload"]
        state.origin = entry["origin"]
        state.size = entry["size"]
        state.proposed = True
        self._clock_tick()
        state.local_ts = self._clock
        if len(state.groups) == 1:
            state.final_ts = state.local_ts
        else:
            state.group_ts[self.group] = state.local_ts
            self._my_ts[muid] = state.local_ts
            self._announce_ts(muid, state)
            self._maybe_finalize(state)
            if self.heal_interval_ms:
                self.node.env.schedule_callback(
                    self.heal_interval_ms, lambda: self._heal(muid))
        self._try_deliver()

    @property
    def _announcing(self) -> bool:
        return (not self.speaker_only
                or self.directory.speaker(self.group) == self.node.name)

    def _announce_ts(self, muid: str, state: _Pending) -> None:
        if not self._announcing:
            return
        for group in state.groups:
            entry = {
                "uid": f"ts:{muid}:{self.group}:{group}",
                "kind": "am-ts",
                "muid": muid,
                "from_group": self.group,
                "ts": state.local_ts,
            }
            if group == self.group:
                self.log.submit(entry)
            else:
                self._log_client.submit(group, entry, size=self.TS_SIZE)

    def _apply_ts(self, entry: dict) -> None:
        muid = entry["muid"]
        ts = entry["ts"]
        self._clock_bump(ts)
        if muid in self._delivered_uids:
            return
        state = self._pending.setdefault(muid, _Pending(groups=()))
        state.group_ts[entry["from_group"]] = ts
        self._maybe_finalize(state)
        self._try_deliver()

    def _maybe_finalize(self, state: _Pending) -> None:
        if not state.proposed or state.final_ts is not None:
            return
        if all(group in state.group_ts for group in state.groups):
            state.final_ts = max(state.group_ts.values())

    # -- self-heal under message loss --------------------------------------
    #
    # A multi-group message wedges a destination group if (a) the propose to
    # some other group was lost — that group never announces, the message
    # never finalises, and it blocks every later delivery here — or (b) a
    # timestamp announcement to *us* was lost. The announcing member
    # periodically (i) re-proposes the full entry to the other groups and
    # (ii) pulls missing timestamps from their speakers. Log entries keep
    # their original uids, so every redundant copy deduplicates and the
    # heal is idempotent.

    def _heal(self, muid: str) -> None:
        state = self._pending.get(muid)
        if (state is None or state.final_ts is not None
                or not state.proposed or not self._announcing):
            return
        self.heals += 1
        entry = _propose_entry(muid, state.groups, state.payload,
                               state.origin, state.size)
        for group in state.groups:
            if group == self.group or group in state.group_ts:
                continue  # its announcement arrived, so it has the propose
            self._log_client.submit(group, entry, size=state.size + 128)
            self.ts_pulls += 1
            self.node.send(self.directory.speaker(group), AM_TS_PULL,
                           {"muid": muid, "reply_group": self.group},
                           size=64)
        self.node.env.schedule_callback(self.heal_interval_ms,
                                        lambda: self._heal(muid))

    def _on_ts_pull(self, message) -> None:
        if not self._announcing:
            return
        muid = message.payload["muid"]
        ts = self._my_ts.get(muid)
        if ts is None:
            return  # never saw the propose; the puller's re-propose fixes that
        reply_group = message.payload["reply_group"]
        entry = {
            "uid": f"ts:{muid}:{self.group}:{reply_group}",
            "kind": "am-ts",
            "muid": muid,
            "from_group": self.group,
            "ts": ts,
        }
        if reply_group == self.group:
            self.log.submit(entry)
        else:
            self._log_client.submit(reply_group, entry, size=self.TS_SIZE)

    # -- logical clock ----------------------------------------------------

    def _clock_tick(self) -> None:
        self._clock += 1

    def _clock_bump(self, ts: int) -> None:
        self._clock = max(self._clock, ts)

    # -- delivery -----------------------------------------------------------

    def _try_deliver(self) -> None:
        while True:
            candidates = [(state.current_ts, muid, state)
                          for muid, state in self._pending.items()
                          if state.proposed]
            if not candidates:
                return
            ts, muid, state = min(candidates, key=lambda c: (c[0], c[1]))
            if state.final_ts is None:
                return  # the head of the queue is not final yet
            del self._pending[muid]
            self._delivered_uids.add(muid)
            delivery = AmcastDelivery(
                uid=muid,
                payload=state.payload,
                groups=state.groups,
                origin=state.origin,
                timestamp=(state.final_ts, muid),
                local_seq=self._deliver_count,
            )
            self._deliver_count += 1
            self.delivery_log.append(muid)
            for callback in list(self._callbacks):
                callback(delivery)


def _propose_entry(muid: str, groups: tuple[str, ...], payload: Any,
                   origin: str, size: int) -> dict:
    return {
        "uid": f"prop:{muid}",
        "kind": "am-propose",
        "muid": muid,
        "groups": list(groups),
        "payload": payload,
        "origin": origin,
        "size": size,
    }


class MulticastClient:
    """Atomic multicast initiator for processes outside all groups.

    Clients in the paper's protocols amcast commands to partitions and the
    oracle; they never deliver, so this helper only implements the propose
    step.
    """

    def __init__(self, node: ProtocolNode, directory: GroupDirectory,
                 broadcast_submit: bool = False):
        self.node = node
        self.directory = directory
        self._log_client = LogClient(node, directory,
                                     broadcast=broadcast_submit)

    def multicast(self, groups: Iterable[str], payload: Any,
                  size: int = 256, uid: Optional[str] = None) -> str:
        groups = tuple(sorted(set(groups)))
        if not groups:
            raise ValueError("amcast needs at least one destination group")
        uid = uid or new_amcast_uid(self.node.name)
        entry = _propose_entry(uid, groups, payload, self.node.name, size)
        for group in groups:
            self._log_client.submit(group, entry, size=size + 128)
        return uid
