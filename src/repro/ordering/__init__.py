"""Group communication: reliable multicast, ordered logs and atomic multicast.

This package provides the two one-to-many primitives the paper's protocols
are built on (Section 2 of the text):

* **Reliable multicast** (`rmcast`): validity, agreement, integrity. Used for
  exchanging variables and signals between partitions — cheap, unordered.
* **Atomic multicast** (`amcast`): adds uniform agreement, atomic order and
  prefix order. Used whenever commands must be consistently ordered within
  and across partitions.

Atomic multicast is implemented as a Skeen-style timestamp protocol layered
on a per-group *ordered log*; two interchangeable log implementations are
provided — a fixed-sequencer log (fast, used in large benchmarks) and a full
Multi-Paxos log (fault tolerant, used by the failure tests). Atomic
broadcast is the single-group special case.
"""

from repro.ordering.group import GroupDirectory
from repro.ordering.node import ProtocolNode
from repro.ordering.reliable_multicast import ReliableMulticast
from repro.ordering.log import GroupLog, LogClient, SequencerLog
from repro.ordering.paxos import PaxosLog
from repro.ordering.atomic_multicast import (
    AmcastDelivery,
    AtomicMulticast,
    MulticastClient,
)
from repro.ordering.centralized_multicast import (
    CentralizedAtomicMulticast,
    CentralizedMulticastClient,
    GlobalSequencer,
)

__all__ = [
    "AmcastDelivery",
    "AtomicMulticast",
    "CentralizedAtomicMulticast",
    "CentralizedMulticastClient",
    "GlobalSequencer",
    "GroupDirectory",
    "GroupLog",
    "LogClient",
    "MulticastClient",
    "PaxosLog",
    "ProtocolNode",
    "ReliableMulticast",
    "SequencerLog",
]
