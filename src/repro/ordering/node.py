"""Protocol node: a simulated process with a message dispatch loop.

Every server, oracle replica and client in the system is a
:class:`ProtocolNode`. Protocol layers (multicast, logs, proxies) register
handlers for message kinds; the node's single dispatch process pulls messages
from its network inbox and routes them. Handlers run instantaneously in
virtual time — layers that model CPU cost (e.g. command execution) do so in
their own processes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net import Message, Network
from repro.net.message import DEFAULT_MESSAGE_SIZE
from repro.sim import Environment, Interrupted

Handler = Callable[[Message], None]


class ProtocolNode:
    """A named process attached to the network with kind-based dispatch."""

    def __init__(self, env: Environment, network: Network, name: str):
        self.env = env
        self.network = network
        self.name = name
        # Cost-attribution hooks (repro.obs.profile): the network carries
        # the deployment's profiler, so every protocol layer reaches it
        # through its node with no constructor threading. NULL_PROFILER
        # when disabled — hook sites guard on ``profiler.enabled``.
        self.profiler = network.profiler
        self.endpoint = network.register(name)
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Optional[Handler] = None
        self._reconnect_hooks: list[Callable[[], None]] = []
        self._crashed = False
        self._loop = env.process(self._dispatch_loop(), name=f"{name}/loop")

    # -- wiring -----------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for messages of ``kind``.

        Exactly one handler per kind: protocols own their message namespace.
        """
        if kind in self._handlers:
            raise ValueError(f"{self.name}: duplicate handler for {kind!r}")
        self._handlers[kind] = handler

    def on_default(self, handler: Handler) -> None:
        """Handler for messages with no registered kind."""
        self._default_handler = handler

    def on_reconnect(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every :meth:`reconnect` (blackout recovery).

        Protocol layers that buffer outbound work (e.g. the sequencer's
        batch window) use this to drain state they deliberately held
        while the node was unreachable.
        """
        self._reconnect_hooks.append(hook)

    # -- sending ------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: Any = None,
             size: int = DEFAULT_MESSAGE_SIZE) -> None:
        """Send one message (no-op once crashed)."""
        if self._crashed:
            return
        self.network.send(self.name, dst, kind, payload, size)

    def send_all(self, dsts, kind: str, payload: Any = None,
                 size: int = DEFAULT_MESSAGE_SIZE) -> None:
        if self._crashed:
            return
        self.network.send_all(self.name, dsts, kind, payload, size)

    # -- observability -------------------------------------------------------

    def flight(self, kind: str, detail: str = "") -> None:
        """Log one protocol event into this node's flight-recorder ring."""
        self.network.flight.record(self.name, kind, detail)

    # -- lifecycle ------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Crash-stop this node: stop dispatching and drop in-flight traffic."""
        if self._crashed:
            return
        self._crashed = True
        self.network.crash(self.name)
        self._loop.interrupt("crash")

    def reconnect(self) -> None:
        """Re-arm dispatch after a *network-level* blackout.

        ``Network.crash(name)`` discards the inbox getter the dispatch
        loop was blocked on (so a successor cannot lose its first
        message), which means a node that merely blacked out — state
        intact, only disconnected — would never dispatch again after
        ``Network.recover``. Reconnecting recovers the endpoint and
        replaces the dispatch process; the old one is interrupted, so a
        stale getter can never swallow a post-recovery message. No-op on
        an object-level crashed node: that node is gone for good and
        comes back only through the recovery modules.
        """
        if self._crashed:
            return
        self.network.recover(self.name)
        self._loop.interrupt("reconnect")
        # Drop any getter the old loop left behind (reconnect without a
        # preceding blackout): a stale getter would consume and lose the
        # first message meant for the new loop.
        self.endpoint.inbox._getters.clear()
        self._loop = self.env.process(self._dispatch_loop(),
                                      name=f"{self.name}/loop")
        for hook in list(self._reconnect_hooks):
            hook()

    def _dispatch_loop(self):
        try:
            while True:
                message = yield self.endpoint.receive()
                handler = self._handlers.get(message.kind,
                                             self._default_handler)
                if handler is None:
                    raise RuntimeError(
                        f"{self.name}: no handler for {message.kind!r}")
                handler(message)
        except Interrupted:
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else "up"
        return f"<ProtocolNode {self.name} {state}>"
