"""Multilevel k-way partitioner (the METIS stand-in) and its interface.

``MultilevelPartitioner.partition(graph, k)`` returns a dict mapping every
vertex to a part in ``range(k)``. The result is deterministic — a hard
requirement of the paper: every oracle replica runs the partitioner
independently on the same workload graph and must produce the identical
mapping (Task 6 of the oracle algorithm).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

from repro.graph.coarsen import coarsen
from repro.graph.graph import Graph, Vertex
from repro.graph.refine import cut_weight, rebalance, refine

Assignment = dict[Vertex, int]


class Partitioner(ABC):
    """Interface: anything that maps a graph's vertices to k parts.

    The oracle is pluggable — the paper notes "any algorithm that takes as
    input a graph and outputs a mapping of objects to partitions is a valid
    partitioner".
    """

    @abstractmethod
    def partition(self, graph: Graph, k: int) -> Assignment:
        """Assign every vertex of ``graph`` to a part in ``range(k)``."""


def greedy_growth(graph: Graph, k: int) -> Assignment:
    """Graph-growing initial partitioning (GGP, as in METIS).

    Regions are grown *sequentially*: region ``i`` BFS-grows from a fresh
    seed until it reaches its share of the total vertex weight, then the
    next region starts from the heaviest still-unassigned vertex. Filling
    one region at a time keeps dense clusters intact — interleaved growth
    tends to seed two regions inside the same cluster and then cannot
    separate them under the balance constraint.
    """
    if k <= 1:
        return {v: 0 for v in graph.vertices()}
    order = sorted(graph.vertices(),
                   key=lambda v: (-graph.vertex_weight(v), repr(v)))
    assignment: Assignment = {}
    unassigned = set(graph.vertices())
    remaining_weight = graph.total_vertex_weight

    for part in range(k - 1):
        capacity = remaining_weight / (k - part)
        grown = 0
        frontier: deque = deque()
        while unassigned and grown < capacity:
            v = None
            while frontier:
                candidate = frontier.popleft()
                if candidate in unassigned:
                    v = candidate
                    break
            if v is None:
                # Fresh seed: heaviest unassigned vertex.
                v = next(u for u in order if u in unassigned)
            assignment[v] = part
            unassigned.discard(v)
            grown += graph.vertex_weight(v)
            for neighbour in sorted(graph.neighbours(v), key=repr):
                if neighbour in unassigned:
                    frontier.append(neighbour)
        remaining_weight -= grown
    for v in unassigned:
        assignment[v] = k - 1
    return assignment


class MultilevelPartitioner(Partitioner):
    """Coarsen → greedy initial partition → project back with refinement.

    Parameters mirror the classic METIS knobs: the coarsest-size threshold,
    the balance tolerance and the number of refinement passes per level.
    """

    def __init__(self, coarsest_size: int = 200,
                 imbalance_tolerance: float = 0.05,
                 refine_passes: int = 6):
        self.coarsest_size = coarsest_size
        self.imbalance_tolerance = imbalance_tolerance
        self.refine_passes = refine_passes

    def partition(self, graph: Graph, k: int) -> Assignment:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if graph.num_vertices == 0:
            return {}
        if k == 1:
            return {v: 0 for v in graph.vertices()}

        levels = coarsen(graph, target_size=max(self.coarsest_size, 4 * k))
        coarsest = levels[-1].graph if levels else graph
        assignment = greedy_growth(coarsest, k)
        refine(coarsest, assignment, k, self.imbalance_tolerance,
               self.refine_passes)

        # Project back through the hierarchy, refining at each level.
        finer_graphs = [graph] + [level.graph for level in levels[:-1]]
        for level, finer in zip(reversed(levels), reversed(finer_graphs)):
            assignment = {v: assignment[super_vertex]
                          for v, super_vertex in level.parent.items()}
            rebalance(finer, assignment, k, self.imbalance_tolerance)
            refine(finer, assignment, k, self.imbalance_tolerance,
                   self.refine_passes)
        return assignment

    def cut_of(self, graph: Graph, assignment: Assignment) -> int:
        """Convenience: edge-cut weight of an assignment."""
        return cut_weight(graph, assignment)
