"""Baseline partitioners used for ablations.

These implement the same :class:`~repro.graph.partitioner.Partitioner`
interface as the multilevel algorithm, so the oracle can be configured with
any of them — used by the partitioner-ablation benchmark (E10) to show how
much of DS-SMR's benefit comes from partitioning quality.
"""

from __future__ import annotations

import hashlib
import random

from repro.graph.graph import Graph, Vertex
from repro.graph.partitioner import Assignment, Partitioner


class HashPartitioner(Partitioner):
    """Stable hash of the vertex id modulo k (what static sharding does)."""

    def partition(self, graph: Graph, k: int) -> Assignment:
        return {v: stable_hash(v) % k for v in graph.vertices()}


class RoundRobinPartitioner(Partitioner):
    """Deterministic round-robin over sorted vertices (perfectly balanced)."""

    def partition(self, graph: Graph, k: int) -> Assignment:
        return {v: i % k
                for i, v in enumerate(graph.sorted_vertices())}


class RandomPartitioner(Partitioner):
    """Uniform random assignment from a fixed seed (worst-case locality)."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, k: int) -> Assignment:
        rng = random.Random(self.seed)
        return {v: rng.randrange(k) for v in graph.sorted_vertices()}


def stable_hash(v: Vertex) -> int:
    """Deterministic hash, stable across processes (unlike ``hash``)."""
    digest = hashlib.md5(repr(v).encode()).digest()
    return int.from_bytes(digest[:8], "big")
