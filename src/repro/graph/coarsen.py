"""Graph coarsening by heavy-edge matching.

Pairs of vertices joined by heavy edges are contracted into super-vertices;
repeating this a few levels shrinks the graph by roughly half per level while
preserving its cut structure, which is what lets the refinement stage work on
small graphs and project the result back.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.graph import Graph, Vertex


class CoarseLevel:
    """One level of the coarsening hierarchy."""

    def __init__(self, graph: Graph, parent: dict[Vertex, Vertex]):
        self.graph = graph
        # Maps each finer-level vertex to its super-vertex in ``graph``.
        self.parent = parent


def heavy_edge_matching(graph: Graph) -> dict[Vertex, Vertex]:
    """Deterministic heavy-edge matching.

    Visits vertices from lightest to heaviest (light vertices merge first,
    keeping super-vertex weights balanced) and matches each unmatched vertex
    with its unmatched neighbour of maximal edge weight.
    Returns a map vertex -> matched partner (unmatched vertices map to
    themselves).
    """
    order = sorted(graph.vertices(),
                   key=lambda v: (graph.vertex_weight(v), repr(v)))
    match: dict[Vertex, Vertex] = {}
    for u in order:
        if u in match:
            continue
        best: Vertex | None = None
        best_key: tuple[int, int, str] | None = None
        for v, weight in graph.neighbours(u).items():
            if v in match:
                continue
            # Prefer heavy edges, then light partners, then stable id order.
            key = (-weight, graph.vertex_weight(v), repr(v))
            if best_key is None or key < best_key:
                best, best_key = v, key
        if best is None:
            match[u] = u
        else:
            match[u] = best
            match[best] = u
    return match


def contract(graph: Graph, match: dict[Vertex, Vertex]) -> CoarseLevel:
    """Contract matched pairs into super-vertices.

    Super-vertex ids are fresh integers assigned in deterministic order; the
    returned level's ``parent`` map lets callers project assignments back.
    """
    parent: dict[Vertex, Vertex] = {}
    coarse = Graph()
    next_id = 0
    for u in sorted(graph.vertices(), key=repr):
        if u in parent:
            continue
        v = match[u]
        super_vertex: Hashable = next_id
        next_id += 1
        weight = graph.vertex_weight(u)
        parent[u] = super_vertex
        if v != u and v not in parent:
            parent[v] = super_vertex
            weight += graph.vertex_weight(v)
        coarse.add_vertex(super_vertex, weight)
    for u, v, weight in graph.edges():
        pu, pv = parent[u], parent[v]
        if pu != pv:
            coarse.add_edge(pu, pv, weight)
    return CoarseLevel(coarse, parent)


def coarsen(graph: Graph, target_size: int = 200,
            max_levels: int = 20) -> list[CoarseLevel]:
    """Build the coarsening hierarchy down to ``target_size`` vertices.

    Stops early when matching no longer shrinks the graph meaningfully
    (< 10% reduction), which happens on star-like graphs.
    """
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_vertices <= target_size:
            break
        match = heavy_edge_matching(current)
        level = contract(current, match)
        if level.graph.num_vertices > 0.9 * current.num_vertices:
            break
        levels.append(level)
        current = level.graph
    return levels
