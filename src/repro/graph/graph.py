"""Weighted undirected graph used by the partitioner and the oracle.

Vertices are arbitrary hashable ids (the oracle uses state-variable keys);
both vertices and edges carry integer weights. Adding an existing edge
accumulates its weight, which is exactly what the oracle's workload graph
needs: an edge's weight counts how many commands accessed that pair of
variables together.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Vertex = Hashable


class Graph:
    """Undirected weighted graph with O(1) neighbour access."""

    def __init__(self):
        self._adj: dict[Vertex, dict[Vertex, int]] = {}
        self._vertex_weight: dict[Vertex, int] = {}
        self._total_edge_weight = 0

    # -- construction -------------------------------------------------------

    def add_vertex(self, v: Vertex, weight: int = 1) -> None:
        """Add ``v`` (idempotent); re-adding updates its weight."""
        if v not in self._adj:
            self._adj[v] = {}
        self._vertex_weight[v] = weight

    def add_edge(self, u: Vertex, v: Vertex, weight: int = 1) -> None:
        """Add/accumulate an edge. Self-loops are ignored (cut-irrelevant)."""
        if u == v:
            self.add_vertex(u, self._vertex_weight.get(u, 1))
            return
        for w in (u, v):
            if w not in self._adj:
                self.add_vertex(w)
        self._adj[u][v] = self._adj[u].get(v, 0) + weight
        self._adj[v][u] = self._adj[v].get(u, 0) + weight
        self._total_edge_weight += weight

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and its incident edges."""
        for neighbour, weight in self._adj.pop(v, {}).items():
            del self._adj[neighbour][v]
            self._total_edge_weight -= weight
        self._vertex_weight.pop(v, None)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Vertex, Vertex]]) -> "Graph":
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    # -- queries --------------------------------------------------------------

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def total_vertex_weight(self) -> int:
        return sum(self._vertex_weight.values())

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def sorted_vertices(self) -> list[Vertex]:
        """Vertices in a deterministic order (sorted by repr for mixed types)."""
        return sorted(self._adj, key=repr)

    def vertex_weight(self, v: Vertex) -> int:
        return self._vertex_weight[v]

    def neighbours(self, v: Vertex) -> Mapping[Vertex, int]:
        """Mapping neighbour -> edge weight."""
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def edges(self) -> Iterator[tuple[Vertex, Vertex, int]]:
        """Each undirected edge exactly once, as ``(u, v, weight)``."""
        seen: set[Vertex] = set()
        for u in self._adj:
            for v, weight in self._adj[u].items():
                if v not in seen:
                    yield u, v, weight
            seen.add(u)

    def copy(self) -> "Graph":
        out = Graph()
        for v, weight in self._vertex_weight.items():
            out.add_vertex(v, weight)
        for u, v, weight in self.edges():
            out.add_edge(u, v, weight)
        return out

    def subgraph_weight(self, vertices: Iterable[Vertex]) -> int:
        return sum(self._vertex_weight[v] for v in vertices)
