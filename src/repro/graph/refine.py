"""Kernighan–Lin / Fiduccia–Mattheyses style boundary refinement.

Given a k-way assignment, sweep the vertices in a deterministic order and
greedily move each one to the neighbouring part where it has the strongest
pull, when the move reduces edge-cut and keeps part weights within the
balance constraint. A few sweeps converge in practice; in the multilevel
setting (where initial assignments come from a coarser level) one or two
sweeps per level already recover most of the METIS-quality cut.

The sweep variant applies moves immediately (rather than searching for the
single globally best move), making each pass O(E) — essential for the
hundred-thousand-vertex workload graphs of the oracle experiments.
"""

from __future__ import annotations

from repro.graph.graph import Graph, Vertex

Assignment = dict[Vertex, int]


def part_weights(graph: Graph, assignment: Assignment, k: int) -> list[int]:
    """Total vertex weight per part."""
    weights = [0] * k
    for v in graph.vertices():
        weights[assignment[v]] += graph.vertex_weight(v)
    return weights


def cut_weight(graph: Graph, assignment: Assignment) -> int:
    """Total weight of edges crossing parts."""
    cut = 0
    for u, v, weight in graph.edges():
        if assignment[u] != assignment[v]:
            cut += weight
    return cut


def _best_target(graph: Graph, assignment: Assignment, v: Vertex, k: int,
                 weights: list[int], ceiling: float,
                 allow_zero_gain: bool) -> tuple[int, int]:
    """Best part to move ``v`` to and the cut gain; ``(home, 0)`` if none."""
    home = assignment[v]
    conn = [0] * k
    for neighbour, weight in graph.neighbours(v).items():
        conn[assignment[neighbour]] += weight
    internal = conn[home]
    v_weight = graph.vertex_weight(v)
    best, best_key = home, None
    for target in range(k):
        if target == home:
            continue
        gain = conn[target] - internal
        if gain < 0:
            continue
        if gain == 0:
            if not allow_zero_gain or conn[target] == 0:
                continue
            if weights[target] + v_weight >= weights[home]:
                continue  # zero-gain moves only drift toward lighter parts
        if weights[target] + v_weight > ceiling:
            continue
        key = (-gain, weights[target], target)
        if best_key is None or key < best_key:
            best, best_key = target, key
    gain = (conn[best] - internal) if best != home else 0
    return best, gain


def refine(graph: Graph, assignment: Assignment, k: int,
           imbalance_tolerance: float = 0.05,
           max_passes: int = 6) -> int:
    """Greedy sweep refinement in place; returns the final cut weight."""
    if k <= 1:
        return 0
    weights = part_weights(graph, assignment, k)
    total = sum(weights)
    ceiling = (1 + imbalance_tolerance) * total / k
    order = sorted(graph.vertices(), key=repr)

    for pass_index in range(max_passes):
        # Zero-gain drift on even passes only, to guarantee termination.
        allow_zero_gain = pass_index % 2 == 0
        improved = False
        for v in order:
            home = assignment[v]
            target, gain = _best_target(graph, assignment, v, k, weights,
                                        ceiling, allow_zero_gain)
            if target == home:
                continue
            assignment[v] = target
            v_weight = graph.vertex_weight(v)
            weights[home] -= v_weight
            weights[target] += v_weight
            if gain > 0:
                improved = True
        if not improved and not allow_zero_gain:
            break
    return cut_weight(graph, assignment)


def rebalance(graph: Graph, assignment: Assignment, k: int,
              imbalance_tolerance: float = 0.05) -> None:
    """Force the assignment within the balance ceiling.

    Used after projecting a coarse assignment whose super-vertex weights do
    not split evenly: moves the weakest-attached vertices out of overweight
    parts into the lightest parts.
    """
    weights = part_weights(graph, assignment, k)
    total = sum(weights)
    ceiling = (1 + imbalance_tolerance) * total / k
    for v in sorted(graph.vertices(), key=repr):
        home = assignment[v]
        if weights[home] <= ceiling:
            continue
        conn = [0] * k
        for neighbour, weight in graph.neighbours(v).items():
            conn[assignment[neighbour]] += weight
        target = min(range(k), key=lambda p: (weights[p], -conn[p], p))
        if target != home:
            assignment[v] = target
            v_weight = graph.vertex_weight(v)
            weights[home] -= v_weight
            weights[target] += v_weight
