"""Deterministic k-way graph partitioning (the METIS substitute).

The paper's oracle uses METIS to compute an "ideal" partitioning of the
workload graph. METIS is not available offline, so this package implements
the same multilevel scheme from scratch:

1. **Coarsening** — repeated heavy-edge matching contracts the graph until
   it is small;
2. **Initial partitioning** — greedy region growing assigns the coarsest
   vertices to k balanced parts;
3. **Uncoarsening + refinement** — each projection back is polished with
   Kernighan–Lin/Fiduccia–Mattheyses boundary moves that reduce edge-cut
   while honouring the balance constraint.

Everything is deterministic for a given seed — a hard requirement from the
paper: every oracle replica recomputes the partitioning independently and
must reach the same result.
"""

from repro.graph.graph import Graph
from repro.graph.partitioner import (
    MultilevelPartitioner,
    Partitioner,
)
from repro.graph.baselines import (
    HashPartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)
from repro.graph.quality import (
    edge_cut_fraction,
    imbalance,
    moved_vertices,
    validate_assignment,
)

__all__ = [
    "Graph",
    "HashPartitioner",
    "MultilevelPartitioner",
    "Partitioner",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "edge_cut_fraction",
    "imbalance",
    "moved_vertices",
    "validate_assignment",
]
