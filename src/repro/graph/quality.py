"""Partition-quality metrics: edge-cut, balance, moves.

These are the quantities the paper reports: workloads are characterised by
their *edge-cut percentage* ("a graph with a 5% edge cut means that 5% of
the total edges have endpoints in different partitions"), and the oracle's
objective when relocating variables is to minimise the number of *moves*
between the current and the ideal assignment.
"""

from __future__ import annotations

from repro.graph.graph import Graph, Vertex

Assignment = dict[Vertex, int]


def validate_assignment(graph: Graph, assignment: Assignment,
                        k: int) -> None:
    """Raise ``ValueError`` unless every vertex maps to exactly one part."""
    missing = [v for v in graph.vertices() if v not in assignment]
    if missing:
        raise ValueError(f"{len(missing)} vertices unassigned, "
                         f"e.g. {missing[:3]}")
    bad = {v: p for v, p in assignment.items()
           if v in graph and not 0 <= p < k}
    if bad:
        raise ValueError(f"parts out of range(0..{k - 1}): "
                         f"{dict(list(bad.items())[:3])}")


def edge_cut_fraction(graph: Graph, assignment: Assignment) -> float:
    """Fraction of edge weight crossing parts (the paper's edge-cut %)."""
    total = graph.total_edge_weight
    if total == 0:
        return 0.0
    cut = sum(weight for u, v, weight in graph.edges()
              if assignment[u] != assignment[v])
    return cut / total


def imbalance(graph: Graph, assignment: Assignment, k: int) -> float:
    """Max part weight over ideal part weight, minus one.

    0.0 means perfectly balanced; 0.05 means the heaviest part is 5% above
    the ideal ``total/k``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    weights = [0] * k
    for v in graph.vertices():
        weights[assignment[v]] += graph.vertex_weight(v)
    total = sum(weights)
    if total == 0:
        return 0.0
    return max(weights) / (total / k) - 1.0


def moved_vertices(old: Assignment, new: Assignment) -> int:
    """How many vertices change part between two assignments.

    Vertices present in only one assignment don't count — they are creations
    or deletions, not moves.
    """
    return sum(1 for v, part in new.items()
               if v in old and old[v] != part)
