"""Causal command spans over virtual time.

A *trace* is one client command, identified by its command id. Its *root
span* covers submission to final reply; child spans mark the protocol
stages the command (and its derived requests — consults, moves) passed
through. Two kinds of child spans exist:

* **stage spans** (``stage=True``) — client-side waits. Every ``yield``
  a client performs while running a command is bracketed by exactly one
  stage span, so per-command stage durations sum to the end-to-end
  latency exactly (client code between yields consumes no virtual time).
* **server spans** (``stage=False``) — where the time actually went:
  ordering (multicast submit to delivery), executor queueing, execution,
  exchange coordination, oracle handling. They overlap stage spans and
  each other (several replicas process the same command) and exist for
  the per-command timeline, not for the additive breakdown.

Determinism: span ids are per-trace sequence numbers assigned in event
order, and all timestamps are virtual — the same seed yields a
byte-identical span stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Span names used by the instrumented protocol layers.
STAGE_NAMES = ("queue", "order", "consult", "move", "execute", "exchange",
               "retry-wait")

ROOT_NAME = "command"


def trace_id_of(cid: str) -> str:
    """Trace id for a (possibly derived) command id.

    Derived requests suffix the root command id with ``:c<n>`` (consult),
    ``:m<n>`` (client move), ``:omove`` (oracle move); the root id itself
    contains no colon.
    """
    return cid.split(":", 1)[0]


@dataclass
class Span:
    """One named interval of a command's life, in virtual ms."""

    trace: str                      # root command id
    span_id: str
    parent: Optional[str]           # root span id, or None for the root
    name: str
    node: str                       # node that spent the time
    start: float
    end: float
    stage: bool = False             # client stage span (latency partition)
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class NullTracer:
    """Disabled tracer: every instrumentation hook is a no-op.

    Hot paths guard on :attr:`enabled` before building span metadata, so
    a disabled tracer adds no measurable work and — because spans never
    touch the event queue or any RNG — tracing on or off can never change
    simulation results.
    """

    enabled = False

    def begin_trace(self, cid: str, node: str, start: float,
                    op: str = "") -> None:
        pass

    def end_trace(self, cid: str, end: float, **meta) -> None:
        pass

    def span(self, trace: str, name: str, node: str, start: float,
             end: float, stage: bool = False, **meta) -> None:
        pass

    def mark_send(self, cid: str, time: float) -> None:
        pass

    def sent_at(self, cid: str) -> Optional[float]:
        return None


NULL_TRACER = NullTracer()


class CommandTracer(NullTracer):
    """Collects :class:`Span` records from instrumented protocol layers."""

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._seq: dict[str, int] = {}          # trace -> next child seq
        self._open: dict[str, tuple[float, str, str]] = {}  # cid -> open root
        self._sends: dict[str, float] = {}      # request cid -> last send time

    # -- root spans --------------------------------------------------------

    def begin_trace(self, cid: str, node: str, start: float,
                    op: str = "") -> None:
        """Open the root span of command ``cid`` at virtual time ``start``."""
        self._open[cid] = (start, node, op)

    def end_trace(self, cid: str, end: float, **meta) -> None:
        """Close the root span; ``meta`` records the command's outcome."""
        opened = self._open.pop(cid, None)
        if opened is None:
            return
        start, node, op = opened
        if op:
            meta.setdefault("op", op)
        self.spans.append(Span(trace=cid, span_id=f"{cid}#root", parent=None,
                               name=ROOT_NAME, node=node, start=start,
                               end=end, meta=meta))

    def open_traces(self) -> list[str]:
        """Command ids whose root span never closed (stuck commands)."""
        return sorted(self._open)

    # -- child spans -------------------------------------------------------

    def span(self, trace: str, name: str, node: str, start: float,
             end: float, stage: bool = False, **meta) -> None:
        seq = self._seq.get(trace, 0)
        self._seq[trace] = seq + 1
        self.spans.append(Span(trace=trace, span_id=f"{trace}#{seq}",
                               parent=f"{trace}#root", name=name, node=node,
                               start=start, end=end, stage=stage, meta=meta))

    # -- send marks (for "order" spans at the receiving server) ------------

    def mark_send(self, cid: str, time: float) -> None:
        """Record when request ``cid`` was last multicast."""
        self._sends[cid] = time

    def sent_at(self, cid: str) -> Optional[float]:
        return self._sends.get(cid)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def traces(self) -> list[str]:
        """Trace ids in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace, None)
        return list(seen)

    def spans_for(self, trace: str) -> list[Span]:
        return [s for s in self.spans if s.trace == trace]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent is None]

    def stage_spans(self, trace: Optional[str] = None) -> list[Span]:
        return [s for s in self.spans if s.stage
                and (trace is None or s.trace == trace)]


def spans_by_trace(spans: Iterable[Span]) -> dict[str, list[Span]]:
    """Group spans by trace id, preserving record order."""
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace, []).append(span)
    return grouped
