"""Unified metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` per cluster replaces the ad-hoc "sum this
attribute over those objects" plumbing the harness grew: components
register their instruments once (duplicate names are an error — two
subsystems silently sharing a counter is how metrics lie), and the
harness scrapes everything into a flat, deterministically ordered
``name -> value`` dict that lands in ``ExperimentMetrics.extra``.

Gauges are read-at-scrape callables, so registering one costs nothing on
the hot path; a gauge may return a dict, which is flattened as
``name.key`` — the idiom for per-kind / per-partition families whose key
set is only known at runtime.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Optional, Union

Number = Union[int, float]


class RegistryCounter:
    """A monotonically increasing scalar."""

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Histogram:
    """A sample distribution with nearest-rank percentiles."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples \
            else math.nan

    def min(self) -> float:
        return min(self.samples) if self.samples else math.nan

    def max(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """p-th percentile (0..100), nearest-rank; NaN when empty.

        Edge cases are pinned down: ``p=0`` is the minimum and ``p=100``
        the maximum (nearest-rank rounding alone would already map p=0 to
        rank 0, but the explicit branches keep the contract obvious and
        immune to float rounding in ``p/100*n``).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        if p == 0:
            return ordered[0]
        if p == 100:
            return ordered[-1]
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """The sub-metrics a scrape expands a histogram into.

        Also the row format of the profiler's per-stage table (see
        :mod:`repro.obs.profile` and the ``profile`` CLI).
        """
        return {
            "count": self.count,
            "max": self.max(),
            "mean": self.mean(),
            "min": self.min(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "total": self.total() if self.samples else math.nan,
        }


GaugeFn = Callable[[], Union[Number, Mapping[str, Number]]]


class MetricsRegistry:
    """Process-scoped instrument registry with duplicate-name protection."""

    def __init__(self):
        self._counters: dict[str, RegistryCounter] = {}
        self._gauges: dict[str, GaugeFn] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------

    def _claim(self, name: str) -> None:
        if name in self:
            raise ValueError(f"metric {name!r} is already registered")

    def counter(self, name: str) -> RegistryCounter:
        self._claim(name)
        counter = RegistryCounter(name)
        self._counters[name] = counter
        return counter

    def gauge(self, name: str, fn: GaugeFn) -> None:
        """Register a read-at-scrape gauge.

        ``fn`` returns a number, or a mapping flattened as ``name.key``.
        """
        self._claim(name)
        self._gauges[name] = fn

    def histogram(self, name: str) -> Histogram:
        self._claim(name)
        histogram = Histogram(name)
        self._histograms[name] = histogram
        return histogram

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._gauges
                or name in self._histograms)

    def get(self, name: str):
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                return table[name]
        raise KeyError(f"unknown metric: {name!r}")

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    # -- scraping ----------------------------------------------------------

    def scrape(self) -> dict[str, Number]:
        """Flat ``name -> value`` snapshot, deterministically ordered.

        Counters contribute their value, gauges are called (dict results
        flattened as ``name.key``), histograms expand to
        ``name.{count,mean,p50,p95,p99}``. Empty-histogram NaNs are
        dropped — a scrape should never print ``nan`` rows.
        """
        out: dict[str, Number] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, fn in self._gauges.items():
            value = fn()
            if isinstance(value, Mapping):
                for key, sub in value.items():
                    out[f"{name}.{key}"] = sub
            else:
                out[name] = value
        for name, histogram in self._histograms.items():
            for key, value in histogram.summary().items():
                if isinstance(value, float) and math.isnan(value):
                    continue
                out[f"{name}.{key}"] = value
        return dict(sorted(out.items()))

    def snapshot(self) -> dict[str, Number]:
        """Scrape with *guaranteed* canonical key order.

        ``scrape`` happens to sort already; ``snapshot`` is the promise —
        insertion order is the sorted key order regardless of the order
        instruments were registered in, so ``json.dumps(reg.snapshot())``
        is byte-stable across registration orders even without
        ``sort_keys``. All emitted-JSON paths go through this.
        """
        return {name: value for name, value in sorted(self.scrape().items())}
