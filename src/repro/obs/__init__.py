"""Deterministic observability: causal spans, metrics, latency reports.

The simulation's virtual clock is global and monotonic, which makes
tracing exact rather than statistical: every protocol stage a command
passes through — oracle consults, moves, ordering, queueing, execution,
exchange coordination, retry backoff — is bracketed by a :class:`Span`
with virtual start/end timestamps and a parent link to the command's
root span. Client-side *stage* spans partition a command's end-to-end
latency exactly (the client's code between yields takes zero virtual
time), so per-stage sums reconcile against the latency figures by
construction.

Three pieces:

* :mod:`repro.obs.tracing` — :class:`CommandTracer` collects spans;
  :data:`NULL_TRACER` is the disabled default (zero overhead: all
  instrumentation sites guard on ``tracer.enabled``).
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, process-scoped
  counters/gauges/histograms registered once and scraped by the harness
  into ``ExperimentMetrics.extra``.
* :mod:`repro.obs.report` — latency-breakdown tables, per-command
  timelines, anomaly detection and the JSONL event schema behind
  ``python -m repro trace``.
"""

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.report import (
    command_timeline,
    dump_jsonl,
    find_anomalies,
    latency_breakdown,
    span_to_json,
    stage_sum_errors,
)
from repro.obs.tracing import (
    CommandTracer,
    NULL_TRACER,
    NullTracer,
    STAGE_NAMES,
    Span,
    trace_id_of,
)

__all__ = [
    "CommandTracer",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "STAGE_NAMES",
    "Span",
    "command_timeline",
    "dump_jsonl",
    "find_anomalies",
    "latency_breakdown",
    "span_to_json",
    "stage_sum_errors",
    "trace_id_of",
]
