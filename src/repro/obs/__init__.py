"""Deterministic observability: causal spans, metrics, latency reports.

The simulation's virtual clock is global and monotonic, which makes
tracing exact rather than statistical: every protocol stage a command
passes through — oracle consults, moves, ordering, queueing, execution,
exchange coordination, retry backoff — is bracketed by a :class:`Span`
with virtual start/end timestamps and a parent link to the command's
root span. Client-side *stage* spans partition a command's end-to-end
latency exactly (the client's code between yields takes zero virtual
time), so per-stage sums reconcile against the latency figures by
construction.

Five pieces:

* :mod:`repro.obs.tracing` — :class:`CommandTracer` collects spans;
  :data:`NULL_TRACER` is the disabled default (zero overhead: all
  instrumentation sites guard on ``tracer.enabled``).
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, process-scoped
  counters/gauges/histograms registered once and scraped by the harness
  into ``ExperimentMetrics.extra``.
* :mod:`repro.obs.report` — latency-breakdown tables, per-command
  timelines, anomaly detection and the JSONL event schema behind
  ``python -m repro trace``.
* :mod:`repro.obs.profile` — :class:`VirtualProfiler` attributes
  simulated CPU and network cost to a scheme × role × stage tree
  (folded-stack/flamegraph output); :data:`NULL_PROFILER` is the
  disabled default behind the same ``enabled`` guard idiom.
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, the always-on
  bounded per-node ring of recent protocol events that chaos/fuzz/heal
  dump alongside invariant violations and MTTR episodes.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.profile import (NULL_PROFILER, NullProfiler, VirtualProfiler,
                               classify_node)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.report import (
    command_timeline,
    dump_jsonl,
    find_anomalies,
    latency_breakdown,
    span_to_json,
    stage_sum_errors,
)
from repro.obs.tracing import (
    CommandTracer,
    NULL_TRACER,
    NullTracer,
    STAGE_NAMES,
    Span,
    trace_id_of,
)

__all__ = [
    "CommandTracer",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "STAGE_NAMES",
    "Span",
    "VirtualProfiler",
    "classify_node",
    "command_timeline",
    "dump_jsonl",
    "find_anomalies",
    "latency_breakdown",
    "span_to_json",
    "stage_sum_errors",
    "trace_id_of",
]
