"""Cluster flight recorder: bounded per-node rings of protocol events.

Reconfigurable-SMR practice leans on black-box event logs to debug
epoch-change and failover bugs: when an invariant trips, what you want
is *the last thing every node saw*, not a full trace. The flight
recorder is that black box — an always-on, bounded ring buffer per node
holding the most recent protocol events (message deliveries and drops,
crashes and recoveries, client retries, epoch fences, failure-detector
suspicions, oracle moves). Memory is O(nodes × capacity) no matter how
long the run; older events are evicted (and counted) as new ones arrive.

It lives on the :class:`~repro.net.transport.Network` (every component
reaches it through its node), records nothing but virtual timestamps and
short strings, touches no RNG and schedules no events — so it can stay
on in every chaos/fuzz/heal run without perturbing results, and its
:meth:`FlightRecorder.dump` is canonical (sorted nodes, rounded times)
so violation artifacts embedding it stay byte-deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

#: Default ring capacity per node. Sized so a dump of a whole deployment
#: stays a few KiB of JSON: deep enough to cover the settle window before
#: an invariant check, small enough to ride inside every repro artifact.
DEFAULT_CAPACITY = 48


class FlightRecorder:
    """Always-on bounded event rings, one per node."""

    def __init__(self, env, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self.evicted: dict[str, int] = {}

    def record(self, node: str, kind: str, detail: str = "") -> None:
        """Append one event to ``node``'s ring (evicting the oldest)."""
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.capacity)
        if len(ring) == self.capacity:
            self.evicted[node] = self.evicted.get(node, 0) + 1
        ring.append((self.env.now, kind, detail))

    # -- queries -----------------------------------------------------------

    def nodes(self) -> list[str]:
        return sorted(self._rings)

    def events(self, node: str) -> list[tuple]:
        """The retained ``(time, kind, detail)`` events of ``node``."""
        return list(self._rings.get(node, ()))

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    # -- postmortem dumps --------------------------------------------------

    def dump(self, nodes: Optional[Iterable[str]] = None) -> dict:
        """Canonical postmortem snapshot (sorted nodes, rounded times).

        ``nodes`` restricts the dump to the named nodes (unknown names
        yield empty rings — a crashed node that never logged is still
        listed, so the reader can tell "silent" from "omitted"); the
        default dumps every node that recorded anything.
        """
        names = sorted(nodes) if nodes is not None else self.nodes()
        return {
            "capacity": self.capacity,
            "nodes": {
                name: [{"at": round(at, 3), "kind": kind, "detail": detail}
                       for at, kind, detail in self.events(name)]
                for name in names
            },
            "evicted": {name: self.evicted[name]
                        for name in sorted(self.evicted)
                        if name in set(names)},
        }
