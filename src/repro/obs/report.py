"""Trace reports: JSONL emission, latency breakdown, timelines, anomalies.

The JSONL schema is one span per line, keys sorted::

    {"end": 3.2, "meta": {}, "name": "consult", "node": "c0",
     "parent": "cmd-c0-1#root", "span": "cmd-c0-1#0", "stage": true,
     "start": 1.1, "trace": "cmd-c0-1"}

Everything here is a pure function of the span list, so reports are as
deterministic as the simulation that produced the spans: the same seed
yields byte-identical JSONL and tables.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional, Sequence, TextIO, Union

from repro.obs.registry import Histogram
from repro.obs.tracing import ROOT_NAME, Span, spans_by_trace

#: Stage display order in breakdown tables (stages absent from a run are
#: simply omitted).
STAGE_ORDER = ("consult", "move", "execute", "retry-wait",
               "queue", "order", "exchange")


# ---------------------------------------------------------------------------
# JSONL emission


def span_to_json(span: Span) -> str:
    """Canonical one-line JSON encoding of a span (keys sorted)."""
    return json.dumps({
        "trace": span.trace,
        "span": span.span_id,
        "parent": span.parent,
        "name": span.name,
        "node": span.node,
        "start": span.start,
        "end": span.end,
        "stage": span.stage,
        "meta": span.meta,
    }, sort_keys=True, separators=(",", ":"))


def dump_jsonl(spans: Iterable[Span],
               out: Union[str, TextIO]) -> int:
    """Write spans to ``out`` (path or file object); returns span count."""
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fh:
            return dump_jsonl(spans, fh)
    count = 0
    for span in spans:
        out.write(span_to_json(span))
        out.write("\n")
        count += 1
    return count


# ---------------------------------------------------------------------------
# latency breakdown


def stage_histograms(spans: Iterable[Span]) -> dict[str, Histogram]:
    """Per-stage duration histograms (client stage spans only)."""
    stats: dict[str, Histogram] = {}
    for span in spans:
        if span.stage:
            stats.setdefault(span.name, Histogram(span.name)) \
                .observe(span.duration)
    return stats


def _roots(spans: Iterable[Span]) -> list[Span]:
    return [s for s in spans if s.parent is None and s.name == ROOT_NAME]


def latency_breakdown(spans: Sequence[Span], label: str = "") -> str:
    """Mean/p95 per stage plus the end-to-end line, as a text table.

    Stage rows partition end-to-end latency: their ``total`` column sums
    to the end-to-end total (see :func:`stage_sum_errors` for the
    per-command check).
    """
    stats = stage_histograms(spans)
    roots = _roots(spans)
    e2e = Histogram("end-to-end")
    for root in roots:
        e2e.observe(root.duration)
    grand_total = e2e.total()
    rows = []
    ordered = [n for n in STAGE_ORDER if n in stats] + \
              [n for n in sorted(stats) if n not in STAGE_ORDER]
    for name in ordered:
        hist = stats[name]
        share = hist.total() / grand_total * 100 if grand_total else 0.0
        rows.append([name, hist.count, _ms(hist.mean()),
                     _ms(hist.percentile(95)), _ms(hist.total()),
                     f"{share:.1f}%"])
    rows.append(["end-to-end", e2e.count, _ms(e2e.mean()),
                 _ms(e2e.percentile(95)), _ms(grand_total), "100.0%"])
    title = f"latency breakdown — {label}\n" if label else ""
    return title + _format_table(
        ["stage", "count", "mean-ms", "p95-ms", "total-ms", "share"], rows)


def stage_sum_errors(spans: Sequence[Span],
                     tolerance: float = 1e-6) -> list[str]:
    """Trace ids whose stage-span durations do not sum to the root span.

    Empty on a correct instrumentation: every client-side wait is
    bracketed by exactly one stage span, and client code between yields
    takes no virtual time.
    """
    grouped = spans_by_trace(spans)
    bad = []
    for trace, members in grouped.items():
        root = next((s for s in members if s.parent is None
                     and s.name == ROOT_NAME), None)
        if root is None:
            continue
        staged = sum(s.duration for s in members if s.stage)
        if abs(staged - root.duration) > tolerance:
            bad.append(trace)
    return bad


# ---------------------------------------------------------------------------
# per-command timelines


def command_timeline(spans: Sequence[Span], trace: str) -> str:
    """Indented virtual-time timeline of one command's spans."""
    members = [s for s in spans if s.trace == trace]
    if not members:
        return f"{trace}: no spans recorded"
    root = next((s for s in members if s.parent is None), None)
    lines = []
    if root is not None:
        meta = " ".join(f"{k}={v}" for k, v in sorted(root.meta.items()))
        lines.append(f"{trace}  {root.duration:.3f}ms  "
                     f"(t={root.start:.3f}..{root.end:.3f})"
                     + (f"  {meta}" if meta else ""))
        origin = root.start
    else:
        lines.append(f"{trace}  (root span still open)")
        origin = min(s.start for s in members)
    children = sorted((s for s in members if s.parent is not None),
                      key=lambda s: (s.start, s.span_id))
    for span in children:
        tag = "stage " if span.stage else "server"
        notes = " ".join(f"{k}={v}" for k, v in sorted(span.meta.items()))
        lines.append(f"  [{tag}] t+{span.start - origin:9.3f}  "
                     f"{span.name:<10} {span.duration:8.3f}ms  {span.node}"
                     + (f"  {notes}" if notes else ""))
    return "\n".join(lines)


def slowest_traces(spans: Sequence[Span], n: int = 3) -> list[str]:
    """Trace ids of the ``n`` slowest completed commands, slowest first."""
    roots = _roots(spans)
    roots.sort(key=lambda s: (-s.duration, s.trace))
    return [s.trace for s in roots[:n]]


# ---------------------------------------------------------------------------
# anomaly detection


def find_anomalies(spans: Sequence[Span], k: float = 3.0,
                   retry_threshold: int = 3,
                   consult_share_threshold: float = 0.4) -> list[str]:
    """Flag outliers worth a human look.

    * commands slower than ``k`` × the p95 end-to-end latency;
    * retry storms — commands with ``retry_threshold``+ backoff waits or
      timed-out attempts;
    * an oracle hot-spot — the consult stage eating more than
      ``consult_share_threshold`` of all command latency.
    """
    flags: list[str] = []
    roots = _roots(spans)
    e2e = Histogram()
    for root in roots:
        e2e.observe(root.duration)
    if roots:
        cutoff = k * e2e.percentile(95)
        for root in sorted(roots, key=lambda s: s.trace):
            if root.duration > cutoff:
                flags.append(f"slow command {root.trace}: "
                             f"{root.duration:.3f}ms > {k:.1f}x p95 "
                             f"({e2e.percentile(95):.3f}ms)")
    grouped = spans_by_trace(spans)
    for trace in sorted(grouped):
        members = grouped[trace]
        retries = sum(1 for s in members if s.stage
                      and (s.name == "retry-wait" or s.meta.get("timeout")))
        if retries >= retry_threshold:
            flags.append(f"retry storm {trace}: {retries} "
                         f"timeout/backoff wait(s)")
    stats = stage_histograms(spans)
    total = sum(h.total() for h in stats.values())
    consult = stats.get("consult")
    if consult is not None and total > 0:
        share = consult.total() / total
        if share > consult_share_threshold:
            flags.append(f"oracle hot-spot: consult stage is "
                         f"{share * 100:.1f}% of total command latency")
    return flags


# ---------------------------------------------------------------------------
# helpers


def _ms(value: float) -> str:
    return "-" if isinstance(value, float) and math.isnan(value) \
        else f"{value:.3f}"


def _format_table(headers: Sequence[str],
                  rows: Iterable[Sequence]) -> str:
    """Minimal monospace table (kept local: repro.harness imports obs)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(str(h).ljust(widths[i])
                       for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
