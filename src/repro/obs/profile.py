"""Virtual-time continuous profiler: cost attribution over components.

Where :mod:`repro.obs.tracing` answers "how long did this command take",
the profiler answers "which component burned the time". Lightweight scope
hooks threaded through the protocol layers (clients, replicas, oracle,
ordering, network) attribute every millisecond of simulated cost to a
path in a component/stage tree rooted at the scheme:

* ``<scheme>;client;<stage>`` — client-side waits (consult, move,
  execute, retry-wait). These are fed by the same single funnel that
  emits tracer stage spans, so per-command they partition the end-to-end
  latency *exactly* (checked by :meth:`VirtualProfiler.stage_sum_errors`).
* ``<scheme>;<role>[;<partition>];<stage>`` — server-side attributed
  time: simulated execution CPU, ordering delay, executor queueing,
  exchange coordination, moves. Roles are classified from the cluster's
  node-naming conventions (``p<i>s<j>`` replicas, ``or*`` oracle
  replicas, ``c*`` clients, ``h*`` supervisors, ``rm*`` managers).
* ``<scheme>;net;<kind>`` — per-message-kind network cost (the latency
  the model charged each delivery) plus a bytes-by-kind side table.

Everything is virtual-time arithmetic on plain dicts: the profiler
touches no RNG and schedules no events, so profiling on or off can never
change simulation results, and the same seed yields byte-identical
output. :data:`NULL_PROFILER` is the disabled default; every hook site
guards on :attr:`NullProfiler.enabled`, so the disabled path allocates
nothing.

Output formats: :meth:`VirtualProfiler.folded` emits folded-stack text
(one ``path cost_in_us`` line per tree path — directly consumable by
standard flamegraph tooling), :meth:`VirtualProfiler.table` the top-N
self/total cost table, and :meth:`VirtualProfiler.to_dict` the canonical
JSON shape the CLI byte-compares.
"""

from __future__ import annotations

import re
from typing import Optional

_REPLICA_RE = re.compile(r"^(p\d+)s\d+$")
_CLIENT_RE = re.compile(r"^c\d+$|^cool$")
_ORACLE_RE = re.compile(r"^or\d+$")
_SUPERVISOR_RE = re.compile(r"^h\d+$")
_MANAGER_RE = re.compile(r"^rm\d+$")


def classify_node(name: str) -> tuple[str, Optional[str]]:
    """Map a node name to ``(role, partition)`` per naming convention."""
    match = _REPLICA_RE.match(name)
    if match:
        return "replica", match.group(1)
    if _CLIENT_RE.match(name):
        return "client", None
    if _ORACLE_RE.match(name):
        return "oracle", None
    if _SUPERVISOR_RE.match(name):
        return "supervisor", None
    if _MANAGER_RE.match(name):
        return "manager", None
    return "other", None


class NullProfiler:
    """Disabled profiler: every scope hook is a no-op.

    Hot paths guard on :attr:`enabled` before computing durations or
    classifying nodes, so a disabled profiler adds no measurable work —
    and because hooks never touch the event queue or any RNG, profiling
    on or off can never change simulation results.
    """

    enabled = False

    def stage(self, trace: str, name: str, duration: float) -> None:
        pass

    def command(self, trace: str, duration: float) -> None:
        pass

    def account(self, node: str, stage: str, duration: float) -> None:
        pass

    def net(self, kind: str, latency: float, size: int) -> None:
        pass

    def mark(self, node: str, stage: str, count: int = 1) -> None:
        pass


NULL_PROFILER = NullProfiler()


class VirtualProfiler(NullProfiler):
    """Accumulates attributed virtual-time cost into a component tree."""

    enabled = True

    def __init__(self, scheme: str = ""):
        self.scheme = scheme
        # Tree leaves: path tuple (below the scheme root) -> cost in
        # virtual ms / number of contributions.
        self._cost: dict[tuple, float] = {}
        self._count: dict[tuple, int] = {}
        # Per-command reconciliation records: trace id -> stage sums and
        # the end-to-end latency the stages must add up to.
        self.commands: dict[str, dict] = {}
        self.bytes_by_kind: dict[str, int] = {}

    # -- scope hooks (called by the instrumented layers) -------------------

    def _add(self, path: tuple, duration: float, count: int = 1) -> None:
        self._cost[path] = self._cost.get(path, 0.0) + duration
        self._count[path] = self._count.get(path, 0) + count

    def stage(self, trace: str, name: str, duration: float) -> None:
        """One client stage wait of ``trace`` (partitions its latency)."""
        self._add(("client", name), duration)
        record = self.commands.get(trace)
        if record is None:
            record = self.commands[trace] = {"stages": {}}
        stages = record["stages"]
        stages[name] = stages.get(name, 0.0) + duration

    def command(self, trace: str, duration: float) -> None:
        """Close ``trace``: record its end-to-end virtual latency."""
        record = self.commands.get(trace)
        if record is None:
            record = self.commands[trace] = {"stages": {}}
        record["e2e"] = duration

    def account(self, node: str, stage: str, duration: float) -> None:
        """Attribute server-side cost to ``node``'s role/partition."""
        role, partition = classify_node(node)
        if partition is not None:
            self._add((role, partition, stage), duration)
        else:
            self._add((role, stage), duration)

    def net(self, kind: str, latency: float, size: int) -> None:
        """Attribute one message delivery's network latency and bytes."""
        self._add(("net", kind), latency)
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size

    def mark(self, node: str, stage: str, count: int = 1) -> None:
        """Count-only event (e.g. entries sequenced): no attributed cost."""
        role, partition = classify_node(node)
        if partition is not None:
            self._add((role, partition, stage), 0.0, count)
        else:
            self._add((role, stage), 0.0, count)

    # -- reconciliation ----------------------------------------------------

    def stage_sum_errors(self, tolerance: float = 1e-6) -> list[str]:
        """Commands whose stage costs do not sum to their e2e latency.

        Mirrors :func:`repro.obs.report.stage_sum_errors` on the
        profiler's own books: for every closed command the attributed
        per-stage costs must add up to the end-to-end virtual latency.
        """
        errors = []
        for trace in sorted(self.commands):
            record = self.commands[trace]
            e2e = record.get("e2e")
            if e2e is None:
                continue   # still in flight at the deadline
            total = sum(record["stages"].values())
            if abs(total - e2e) > tolerance:
                errors.append(f"{trace}: stages {total:.6f}ms "
                              f"!= e2e {e2e:.6f}ms")
        return errors

    # -- tree queries ------------------------------------------------------

    def paths(self) -> list[tuple]:
        """All recorded leaf paths (below the scheme root), sorted."""
        return sorted(self._cost)

    def cost_of(self, *path: str) -> float:
        """Total cost (ms) of ``path`` and everything beneath it."""
        return sum(cost for p, cost in self._cost.items()
                   if p[:len(path)] == path)

    def total_cost(self) -> float:
        return sum(self._cost.values())

    # -- output ------------------------------------------------------------

    def folded(self) -> str:
        """Folded-stack text: ``scheme;a;b cost_us`` lines, sorted.

        Costs are integer microseconds (flamegraph tools want integral
        sample counts); zero-cost count-only marks are omitted.
        """
        lines = []
        for path in self.paths():
            us = int(round(self._cost[path] * 1000.0))
            if us <= 0:
                continue
            lines.append(f"{self.scheme};{';'.join(path)} {us}")
        return "\n".join(lines)

    def table(self, top: int = 15) -> str:
        """Top-N self/total cost table over the attributed tree."""
        from repro.obs.report import _format_table
        self_ms: dict[tuple, float] = dict(self._cost)
        total_ms: dict[tuple, float] = {}
        counts: dict[tuple, int] = {}
        for path, cost in self._cost.items():
            for depth in range(1, len(path) + 1):
                prefix = path[:depth]
                total_ms[prefix] = total_ms.get(prefix, 0.0) + cost
                counts[prefix] = (counts.get(prefix, 0)
                                  + self._count.get(path, 0))
        ranked = sorted(total_ms,
                        key=lambda p: (-total_ms[p], p))[:max(top, 1)]
        rows = []
        for path in ranked:
            rows.append([f"{self.scheme};{';'.join(path)}",
                         f"{self_ms.get(path, 0.0):10.3f}",
                         f"{total_ms[path]:10.3f}",
                         counts.get(path, 0)])
        return _format_table(["path", "self-ms", "total-ms", "count"], rows)

    def to_dict(self) -> dict:
        """Canonical JSON shape (byte-stable: sorted keys, rounded ms)."""
        tree = {";".join(path): {"ms": round(self._cost[path], 6),
                                 "count": self._count[path]}
                for path in self.paths()}
        return {
            "scheme": self.scheme,
            "tree": tree,
            "bytes_by_kind": dict(sorted(self.bytes_by_kind.items())),
            "commands": len(self.commands),
            "total_ms": round(self.total_cost(), 6),
            "stage_sum_errors": self.stage_sum_errors(),
        }
