"""Named, hierarchical random streams for reproducible simulations.

Every stochastic component (network jitter, workload choice, client think
time, ...) draws from its own stream, derived deterministically from a root
seed and a path of names. This means adding a new component or reordering
draws in one component never perturbs another component's randomness — a
property that makes A/B comparisons between protocol variants meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seedable = Union[int, str]


def _derive(seed: int, name: Seedable) -> int:
    digest = hashlib.sha256(f"{seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeedStream:
    """A tree of independent, deterministic random streams.

    Example::

        root = SeedStream(42)
        net_rng = root.stream("network")       # random.Random
        client_rng = root.child("clients").stream(3)
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    def child(self, name: Seedable) -> "SeedStream":
        """Derive an independent sub-tree of streams."""
        return SeedStream(_derive(self.seed, name))

    def stream(self, name: Seedable) -> random.Random:
        """Derive an independent ``random.Random`` stream."""
        return random.Random(_derive(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedStream({self.seed})"
