"""Measurement instruments for simulations.

These are the primitives the experiment harness uses to produce the series
behind every figure: time series of throughput and moves, latency
percentiles, and per-window busy fractions (the "CPU load" of a simulated
process, used for the oracle-load experiment).
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Sequence


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample. Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample at t={time} (last t={self.times[-1]})")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[float]:
        """Most recent value, or None when empty."""
        return self.values[-1] if self.values else None

    def window_sum(self, start: float, end: float) -> float:
        """Sum of values with ``start <= time < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return sum(self.values[lo:hi])

    def bucketed_rate(self, bucket: float,
                      end: Optional[float] = None) -> "TimeSeries":
        """Events-per-time-unit series using fixed-width buckets.

        Each sample's *value* is treated as a count occurring at its time;
        the result has one sample per bucket at the bucket's end time.
        """
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        out = TimeSeries(f"{self.name}/rate")
        if not self.times:
            return out
        horizon = end if end is not None else self.times[-1]
        edge = bucket
        while edge <= horizon + 1e-9:
            out.record(edge, self.window_sum(edge - bucket, edge) / bucket)
            edge += bucket
        return out


class Counter:
    """A monotonically increasing named counter with an event log."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0
        self.events = TimeSeries(name)

    def increment(self, time: float, amount: int = 1) -> None:
        self.total += amount
        self.events.record(time, amount)

    def rate_series(self, bucket: float,
                    end: Optional[float] = None) -> TimeSeries:
        """Per-bucket rate of increments."""
        return self.events.bucketed_rate(bucket, end)


class LatencyRecorder:
    """Collects latency samples and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []
        self.completions = TimeSeries(f"{name}/completions")

    def record(self, completion_time: float, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.samples.append(latency)
        self.completions.record(completion_time, latency)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency; NaN when no samples were recorded."""
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """p-th percentile (0..100), nearest-rank; NaN when empty."""
        if not self.samples:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        return ordered[rank]

    def windowed_mean(self, bucket: float,
                      end: Optional[float] = None) -> TimeSeries:
        """Mean latency per time bucket (for latency-over-time plots)."""
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        out = TimeSeries(f"{self.name}/windowed-mean")
        times = self.completions.times
        values = self.completions.values
        if not times:
            return out
        horizon = end if end is not None else times[-1]
        edge = bucket
        while edge <= horizon + 1e-9:
            lo = bisect.bisect_left(times, edge - bucket)
            hi = bisect.bisect_left(times, edge)
            window = values[lo:hi]
            out.record(edge, sum(window) / len(window) if window else math.nan)
            edge += bucket
        return out


class BusyTracker:
    """Tracks the busy fraction of a simulated process.

    Protocol code brackets work with :meth:`begin` / :meth:`end`; the
    tracker then reports the fraction of each time window spent busy, which
    is the simulated analogue of CPU load.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.intervals: list[tuple[float, float]] = []
        self._busy_since: Optional[float] = None

    def begin(self, time: float) -> None:
        if self._busy_since is not None:
            raise ValueError("begin() while already busy")
        self._busy_since = time

    def end(self, time: float) -> None:
        if self._busy_since is None:
            raise ValueError("end() while not busy")
        if time < self._busy_since:
            raise ValueError("end() before begin()")
        self.intervals.append((self._busy_since, time))
        self._busy_since = None

    def add_busy(self, start: float, duration: float) -> None:
        """Record a closed busy interval directly."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        self.intervals.append((start, start + duration))

    def total_busy(self) -> float:
        return sum(end - start for start, end in self.intervals)

    def busy_fraction(self, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` covered by busy intervals."""
        if end <= start:
            raise ValueError("empty window")
        busy = 0.0
        for b0, b1 in self.intervals:
            lo = max(b0, start)
            hi = min(b1, end)
            if hi > lo:
                busy += hi - lo
        return busy / (end - start)

    def load_series(self, bucket: float, end: float) -> TimeSeries:
        """Busy fraction per fixed-width window over ``[0, end)``."""
        out = TimeSeries(f"{self.name}/load")
        edge = bucket
        while edge <= end + 1e-9:
            out.record(edge, self.busy_fraction(edge - bucket, edge))
            edge += bucket
        return out


def merge_series(series: Iterable[TimeSeries]) -> TimeSeries:
    """Merge several time series by summing values at identical times.

    All inputs must share the same time grid (as produced by
    :meth:`TimeSeries.bucketed_rate` with the same bucket width).
    """
    series = list(series)
    if not series:
        return TimeSeries("merged")
    grid = series[0].times
    for other in series[1:]:
        if other.times != grid:
            raise ValueError("cannot merge series on different time grids")
    out = TimeSeries("merged")
    for i, t in enumerate(grid):
        out.record(t, sum(s.values[i] for s in series))
    return out


def area_under(series: Sequence[tuple[float, float]]) -> float:
    """Trapezoidal integral of a ``(time, value)`` sequence."""
    points = list(series)
    total = 0.0
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        total += (t1 - t0) * (v0 + v1) / 2
    return total
