"""Core of the discrete-event simulation kernel.

The model is a small, deterministic subset of the process-interaction style
popularised by SimPy:

* An :class:`Environment` owns a virtual clock and a priority queue of
  pending events.
* An :class:`Event` is a one-shot occurrence that processes can wait on. It
  is *triggered* when given a value (or an exception) and *processed* once
  its callbacks have run.
* A :class:`Process` wraps a generator. Each ``yield`` suspends the process
  on an event; when the event fires, the generator is resumed with the
  event's value (or the exception is thrown into it). A process is itself an
  event that triggers when the generator returns, so processes can wait on
  each other.

The kernel is single-threaded and deterministic: events scheduled for the
same timestamp fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupted(Exception):
    """Thrown into a process that is interrupted (e.g. by failure injection).

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail` makes
    it *triggered* and schedules its callbacks to run at the current virtual
    time. Processes wait on events by yielding them.
    """

    PENDING = object()

    # Events are the kernel's hottest allocation (every message delivery,
    # timeout and process step makes at least one); slots keep them small
    # and attribute access cheap.
    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception)."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event triggered successfully."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event triggered with."""
        if self._value is Event.PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has the exception thrown into it.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule_event(self, delay)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events.

    Events already processed at construction time count as satisfied (or,
    if they failed, fail the condition immediately); pending events register
    an observer callback.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        initial_failure: Optional[Event] = None
        satisfied = False
        for event in self._events:
            if not isinstance(event, Event):
                raise SimulationError(f"not an event: {event!r}")
            if event.processed:
                if event.ok:
                    satisfied = True
                elif initial_failure is None:
                    initial_failure = event
            else:
                self._pending += 1
                event.add_callback(self._observe)
        if initial_failure is not None:
            self.fail(initial_failure.value)
        else:
            self._check_after_setup(satisfied)

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _check_after_setup(self, satisfied: bool) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.processed and e.ok}


class AnyOf(_Condition):
    """Triggers when any of the given events triggers.

    The value is a dict mapping the already-triggered events to their values.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._results())

    def _check_after_setup(self, satisfied: bool) -> None:
        if satisfied or not self._events:
            self.succeed(self._results())


class AllOf(_Condition):
    """Triggers when all of the given events have triggered.

    The value is a dict mapping every event to its value.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results())

    def _check_after_setup(self, satisfied: bool) -> None:
        if self._pending == 0:
            self.succeed(self._results())


class _Callback(Event):
    """A bare scheduled function call (:meth:`Environment.schedule_callback`).

    Cheaper than the ``Timeout`` + observer-lambda pair it replaces: the
    event is born triggered, carries the function and its arguments in
    slots, and its single callback is a bound method — no closure. This
    is the hottest scheduling shape in the simulator (every network
    delivery and every parallel-execution completion is one).
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, env: "Environment", delay: float,
                 fn: Callable[..., None], args: tuple):
        if delay < 0:
            raise SimulationError(f"negative callback delay: {delay}")
        self.env = env
        self.callbacks = [self._run]
        self._value = None
        self._ok = True
        self._fn = fn
        self._args = args
        env._schedule_event(self, delay)

    def _run(self, _event: Event) -> None:
        self._fn(*self._args)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine process driven by the environment.

    The wrapped generator yields :class:`Event` objects; the process resumes
    when each yielded event fires. The process is itself an event that
    triggers with the generator's return value, so ``yield other_process``
    waits for that process to finish.
    """

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"not a generator: {generator!r}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current time.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.add_callback(self._step)
        env._schedule_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        Interrupting a finished process is a no-op, which makes failure
        injection code simpler.
        """
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupted(cause)
        event.add_callback(self._resume_interrupt)
        self.env._schedule_event(event)

    def _resume_interrupt(self, event: Event) -> None:
        # The process may have finished between scheduling and delivery.
        if self.is_alive:
            self._step(event)

    def _resume(self, event: Event) -> None:
        # Ignore stale wake-ups: if the process was interrupted while
        # waiting on this event, it has since moved on to a new target.
        if self._waiting_on is not event:
            return
        self._step(event)

    def _step(self, event: Event) -> None:
        """Advance the generator by one yield."""
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted:
            # Process chose not to handle the interrupt: terminate quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}")
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """A discrete-event simulation environment with a virtual clock.

    Typical usage::

        env = Environment()

        def worker(env):
            yield env.timeout(5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._next_seq = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, event))

    def schedule_callback(self, delay: float,
                          callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` time units (no process
        needed). Passing the arguments here instead of closing over them
        keeps the hot send path free of closure allocations."""
        _Callback(self, delay, callback, args)

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the next queued event, advancing the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not isinstance(
                event._value, Interrupted):
            # A failed event nobody waited on: surface it instead of
            # silently dropping the error.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or virtual time reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
