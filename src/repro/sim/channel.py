"""FIFO channels for inter-process communication inside the simulator.

A :class:`Channel` is an unbounded FIFO queue. ``put`` never blocks (the
network substrate models delay and backpressure explicitly); ``get`` returns
an event the caller yields on, which fires as soon as an item is available.
Items are matched to getters in strict FIFO order, preserving determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event


class Channel:
    """Unbounded FIFO channel.

    Example::

        inbox = Channel(env)

        def consumer(env):
            while True:
                item = yield inbox.get()
                handle(item)
    """

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_getters(self) -> int:
        """Number of processes currently blocked on :meth:`get`."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` if available, else ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def clear(self) -> None:
        """Drop all queued items (waiting getters stay blocked)."""
        self._items.clear()
