"""Deterministic discrete-event simulation kernel.

The kernel is the substrate for every protocol in this repository: all
replicas, clients, oracles and network links are coroutine processes driven
by a single :class:`Environment` with a virtual clock. The design follows the
classic process-interaction style (generators that ``yield`` events), which
keeps protocol code readable — a replica's main loop reads like pseudocode
from the paper.

Determinism: given the same seed, a simulation is bit-for-bit reproducible.
Ties in the event queue are broken by insertion order, and all randomness is
drawn from named, seeded streams (:mod:`repro.sim.rng`).
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.channel import Channel
from repro.sim.monitor import BusyTracker, Counter, LatencyRecorder, TimeSeries
from repro.sim.rng import SeedStream

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Channel",
    "Counter",
    "Environment",
    "Event",
    "Interrupted",
    "LatencyRecorder",
    "Process",
    "SeedStream",
    "SimulationError",
    "TimeSeries",
    "Timeout",
]
