"""Signal/variable exchange buffer shared by partitions and the oracle.

Implements the ``rcvd_signals`` / ``rcvd_variables`` bookkeeping of
Algorithms 1–4: participants in a multi-partition step reliably multicast
one message carrying their signal and their share of the variables, and
wait until every expected peer's signal has arrived. Used by S-SMR
multi-partition execution, DS-SMR moves, and create/delete coordination
with the oracle.

Loss recovery is pull-based: every outbound exchange is cached, and a
waiter that has not heard from an expected peer within ``retry_ms``
multicasts a pull request to that peer's group; any member that already
sent for the command re-sends its cached message (receivers deduplicate
by sender, so redundant copies are harmless). Without this, one dropped
signal blocks a partition's executor forever.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ordering import ReliableMulticast
from repro.sim import Environment

EXCHANGE = "ssmr-exchange"
EXCHANGE_PULL = "ssmr-exchange-pull"


class ExchangeBuffer:
    """Per-node buffer of exchange messages, keyed by command id."""

    def __init__(self, env: Environment, rmcast: ReliableMulticast,
                 local_name: str, retry_ms: Optional[float] = 60.0):
        self.env = env
        self.rmcast = rmcast
        self.local_name = local_name  # partition (or "oracle") we speak for
        self.retry_ms = retry_ms      # None: legacy block-forever waits
        self._signals: dict[str, set[str]] = {}
        self._vars: dict[str, dict] = {}
        self._done: set[str] = set()
        self._waiters: dict[str, object] = {}
        # Outbound cache for pull-based retransmission, cid -> payload.
        self._sent: dict[str, dict] = {}
        self.pulls_sent = 0
        self.pulls_served = 0
        rmcast.on_deliver(self._on_rmcast)

    def send(self, groups: Iterable[str], cid: str, variables: dict,
             done: bool = False) -> None:
        """Signal (plus our share of the variables) to ``groups``.

        ``done=True`` marks that this participant already executed the
        command (reply-cache hit): receivers must not re-execute it, which
        would double-apply its writes.
        """
        groups = list(groups)
        if not groups:
            return
        payload = {
            "kind": EXCHANGE,
            "cid": cid,
            "from": self.local_name,
            "vars": variables,
            "done": done,
        }
        cached = self._sent.get(cid)
        if cached is not None:
            # A re-delivery (client resend) repeats the exchange, usually
            # with no variables left to ship. Merge so the cache — and the
            # resend itself — still carries the original transfer.
            payload["vars"] = {**cached["vars"], **variables}
            payload["done"] = done or cached["done"]
        self._sent[cid] = payload
        self.rmcast.multicast(groups, payload,
                              size=128 + 64 * len(variables))

    def _on_rmcast(self, payload, message) -> None:
        if not isinstance(payload, dict):
            return
        if payload.get("kind") == EXCHANGE_PULL:
            self._serve_pull(payload)
            return
        if payload.get("kind") != EXCHANGE:
            return
        cid = payload["cid"]
        sender = payload["from"]
        signals = self._signals.setdefault(cid, set())
        if sender in signals:
            return  # duplicate from another replica of the same partition
        signals.add(sender)
        self._vars.setdefault(cid, {}).update(payload["vars"])
        if payload.get("done"):
            self._done.add(cid)
        waiter = self._waiters.pop(cid, None)
        if waiter is not None:
            waiter.succeed(None)

    def _serve_pull(self, payload: dict) -> None:
        cached = self._sent.get(payload["cid"])
        if cached is None:
            return  # we have not executed the command yet; nothing to resend
        self.pulls_served += 1
        self.rmcast.multicast([payload["reply_to"]], cached,
                              size=128 + 64 * len(cached["vars"]))

    def wait(self, cid: str, expected: set[str]):
        """Generator: block until signals from all ``expected`` arrived.

        With ``retry_ms`` set, a lost peer message is recovered by pulling
        the peer's cached exchange for ``cid``.
        """
        while not expected.issubset(self._signals.get(cid, set())):
            if cid in self._waiters:
                raise RuntimeError(f"two executors waiting on {cid}")
            event = self.env.event()
            self._waiters[cid] = event
            if self.retry_ms is None:
                yield event
                continue
            timer = self.env.timeout(self.retry_ms)
            yield self.env.any_of([event, timer])
            if not event.triggered:
                self._waiters.pop(cid, None)
                missing = expected - self._signals.get(cid, set())
                for group in sorted(missing):
                    self.pulls_sent += 1
                    self.rmcast.multicast([group], {
                        "kind": EXCHANGE_PULL,
                        "cid": cid,
                        "reply_to": self.local_name,
                    }, size=96)

    def any_done(self, cid: str) -> bool:
        """True if any participant reported it already executed ``cid``."""
        return cid in self._done

    def collect(self, cid: str) -> dict:
        """Variables received for ``cid``; clears the buffers for it."""
        self._signals.pop(cid, None)
        self._done.discard(cid)
        return self._vars.pop(cid, {})
