"""Signal/variable exchange buffer shared by partitions and the oracle.

Implements the ``rcvd_signals`` / ``rcvd_variables`` bookkeeping of
Algorithms 1–4: participants in a multi-partition step reliably multicast
one message carrying their signal and their share of the variables, and
wait until every expected peer's signal has arrived. Used by S-SMR
multi-partition execution, DS-SMR moves, and create/delete coordination
with the oracle.
"""

from __future__ import annotations

from typing import Iterable

from repro.ordering import ReliableMulticast
from repro.sim import Environment

EXCHANGE = "ssmr-exchange"


class ExchangeBuffer:
    """Per-node buffer of exchange messages, keyed by command id."""

    def __init__(self, env: Environment, rmcast: ReliableMulticast,
                 local_name: str):
        self.env = env
        self.rmcast = rmcast
        self.local_name = local_name  # partition (or "oracle") we speak for
        self._signals: dict[str, set[str]] = {}
        self._vars: dict[str, dict] = {}
        self._done: set[str] = set()
        self._waiters: dict[str, object] = {}
        rmcast.on_deliver(self._on_rmcast)

    def send(self, groups: Iterable[str], cid: str, variables: dict,
             done: bool = False) -> None:
        """Signal (plus our share of the variables) to ``groups``.

        ``done=True`` marks that this participant already executed the
        command (reply-cache hit): receivers must not re-execute it, which
        would double-apply its writes.
        """
        groups = list(groups)
        if not groups:
            return
        self.rmcast.multicast(groups, {
            "kind": EXCHANGE,
            "cid": cid,
            "from": self.local_name,
            "vars": variables,
            "done": done,
        }, size=128 + 64 * len(variables))

    def _on_rmcast(self, payload, message) -> None:
        if not isinstance(payload, dict) or payload.get("kind") != EXCHANGE:
            return
        cid = payload["cid"]
        sender = payload["from"]
        signals = self._signals.setdefault(cid, set())
        if sender in signals:
            return  # duplicate from another replica of the same partition
        signals.add(sender)
        self._vars.setdefault(cid, {}).update(payload["vars"])
        if payload.get("done"):
            self._done.add(cid)
        waiter = self._waiters.pop(cid, None)
        if waiter is not None:
            waiter.succeed(None)

    def wait(self, cid: str, expected: set[str]):
        """Generator: block until signals from all ``expected`` arrived."""
        while not expected.issubset(self._signals.get(cid, set())):
            if cid in self._waiters:
                raise RuntimeError(f"two executors waiting on {cid}")
            event = self.env.event()
            self._waiters[cid] = event
            yield event

    def any_done(self, cid: str) -> bool:
        """True if any participant reported it already executed ``cid``."""
        return cid in self._done

    def collect(self, cid: str) -> dict:
        """Variables received for ``cid``; clears the buffers for it."""
        self._signals.pop(cid, None)
        self._done.discard(cid)
        return self._vars.pop(cid, {})
