"""Static variable→partition mapping.

S-SMR fixes the mapping for the lifetime of the system. The map can be built
from an explicit assignment (e.g. the output of the multilevel partitioner on
a known workload graph — the "perfect static" scheme of the motivation
experiment) or fall back to stable hashing for unknown variables (what a
practical static deployment does for keys created after the initial load).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.graph.baselines import stable_hash

Key = Hashable


class StaticPartitionMap:
    """Immutable mapping from variable keys to partition (group) names."""

    def __init__(self, partitions: Sequence[str],
                 assignment: Optional[Mapping[Key, int]] = None):
        if not partitions:
            raise ValueError("need at least one partition")
        self.partitions = tuple(partitions)
        self._explicit: dict[Key, str] = {}
        if assignment:
            for key, index in assignment.items():
                if not 0 <= index < len(self.partitions):
                    raise ValueError(
                        f"assignment index {index} out of range for "
                        f"{len(self.partitions)} partitions")
                self._explicit[key] = self.partitions[index]

    def partition_of(self, key: Key) -> str:
        """Partition holding ``key`` (hash fallback for unmapped keys)."""
        explicit = self._explicit.get(key)
        if explicit is not None:
            return explicit
        return self.partitions[stable_hash(key) % len(self.partitions)]

    def partitions_of(self, keys: Iterable[Key]) -> set[str]:
        return {self.partition_of(key) for key in keys}

    def variables_in(self, partition: str, keys: Iterable[Key]) -> set[Key]:
        """Subset of ``keys`` that live in ``partition``."""
        return {key for key in keys if self.partition_of(key) == partition}

    def initial_contents(self, keys: Iterable[Key]) -> dict[str, set[Key]]:
        """Group the given keys by their partition (for state loading)."""
        contents: dict[str, set[Key]] = {p: set() for p in self.partitions}
        for key in keys:
            contents[self.partition_of(key)].add(key)
        return contents
