"""S-SMR partition server (Algorithm 1 of the paper).

Each server replicates one partition. Commands arrive via atomic multicast
and are executed sequentially. For a multi-partition command the involved
partitions (i) reliably multicast a *signal* plus the values of the
command's variables they hold to the other involved partitions, and
(ii) wait for the signal (and variables) of every other involved partition
before replying — the coordination that makes multi-partition executions
linearizable, and the overhead that motivates dynamic repartitioning.

Implementation notes:

* Signals and variable values travel in one reliable-multicast message per
  (command, partition) pair — same semantics as sending them separately,
  half the messages.
* Ownership is determined by *store contents* rather than the static map,
  which lets the exact same execution path serve as DS-SMR's fallback mode
  (where variables migrate between partitions).
* Replies are cached per command id, giving exactly-once execution when a
  client re-multicasts a command (DS-SMR retries).
"""

from __future__ import annotations

from typing import Optional

from repro.net import Network
from repro.obs.tracing import NULL_TRACER, trace_id_of
from repro.ordering import (AmcastDelivery, AtomicMulticast, GroupDirectory,
                            ProtocolNode, ReliableMulticast, SequencerLog)
from repro.resilience import ReplyCache
from repro.sim import Channel, Environment, Interrupted
from repro.smr.command import Command, CommandType, Reply, ReplyStatus
from repro.smr.execution import ExecutionModel
from repro.smr.replica import REPLY_KIND, delivery_command
from repro.smr.state_machine import (ExecutionView, StateMachine,
                                     VariableStore)
from repro.ssmr.exchange import EXCHANGE, ExchangeBuffer


class SsmrServer:
    """One replica of one S-SMR partition."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, partition: str, name: str,
                 state_machine: StateMachine,
                 execution: Optional[ExecutionModel] = None,
                 log_factory=SequencerLog,
                 speaker_only: bool = True,
                 dedup: bool = True,
                 start_gate=None,
                 tracer=None):
        self.env = env
        self.partition = partition
        self.directory = directory
        self.node = ProtocolNode(env, network, name)
        self.log = log_factory(self.node, directory, partition)
        self.amcast = AtomicMulticast(self.node, directory, self.log,
                                      speaker_only=speaker_only)
        self.rmcast = ReliableMulticast(self.node, directory)
        self.state_machine = state_machine
        self.execution = execution or ExecutionModel()
        self.store = VariableStore()
        self.executed: list[str] = []       # command ids in execution order
        self.multi_partition_count = 0
        # dedup=False (test-only) disables exactly-once retry filtering so
        # the chaos sentinel can prove the checkers catch double execution.
        self.replies = ReplyCache(enabled=dedup)
        self.exchange = ExchangeBuffer(env, self.rmcast, partition)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.queue_peak = 0
        # Configuration epoch: bumped by every ordered reconfiguration
        # entry (partition join / leave-begin); see repro.reconfig.
        self.epoch = 0
        # Entry rids already applied: the manager retries entries under
        # fresh multicast uids when an oracle ack is lost, so the ordered
        # log can legitimately deliver the same fence twice — only the
        # first delivery may bump the epoch (the oracle side dedups by
        # caching its acks; this is the server-side counterpart).
        self.applied_reconfigs: set[str] = set()
        # Attached by repro.reconfig.PartitionCheckpointer (None without).
        self.checkpointer = None
        # Overload control (repro.qos), attached by the harness; None
        # keeps the intake/executor hot paths in their pre-QoS shape.
        self.qos = None
        # Write-ahead log (repro.store), attached by the harness; None
        # keeps the executor free of durability barriers.
        self.wal = None
        # Parallel worker pool (repro.smr.parallel), attached by the
        # harness; None keeps the executor on the sequential fast path.
        self.parallel = None
        self._enqueue_times: dict[str, float] = {}
        self._deliveries = Channel(env, name=f"{name}/deliveries")
        # The delivery the executor is currently inside (checkpoint
        # consistency: a capture must count it as not-yet-executed work).
        self._current_delivery = None
        self.amcast.on_deliver(self._enqueue)
        # A recovering replica's executor must not touch the store until
        # the peer checkpoint is installed; the gate event holds it back.
        self._start_gate = start_gate
        self._executor = env.process(self._execute_loop(),
                                     name=f"{name}/executor")

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        self.node.crash()
        self._executor.interrupt("crash")

    def load_state(self, contents: dict) -> None:
        """Install this partition's share of the initial service state."""
        for key, value in contents.items():
            self.store.write(key, value)

    # -- delivery intake ------------------------------------------------------

    def _enqueue(self, delivery: AmcastDelivery) -> None:
        """Queue an ordered delivery for the executor (tracing tap).

        Mirrors :meth:`repro.smr.replica.SmrReplica._enqueue`: emits the
        *order* server span, stamps the enqueue time for the *queue* span,
        and tracks peak executor-queue depth (a direct handoff to a
        waiting executor counts as depth 1).
        """
        if self.tracer.enabled:
            command = delivery_command(delivery.payload)
            if command is not None:
                sent = self.tracer.sent_at(command.cid)
                if sent is not None:
                    self.tracer.span(trace_id_of(command.cid), "order",
                                     self.node.name, sent, self.env.now,
                                     uid=delivery.uid)
                    if self.node.profiler.enabled:
                        self.node.profiler.account(
                            self.node.name, "order", self.env.now - sent)
        if (self.tracer.enabled or self.node.profiler.enabled
                or self.qos is not None):
            self._enqueue_times[delivery.uid] = self.env.now
        self._deliveries.put(delivery)
        depth = len(self._deliveries) or 1
        if depth > self.queue_peak:
            self.queue_peak = depth

    # -- overload control (repro.qos) ----------------------------------------

    def queue_depth(self) -> int:
        """Current executor-queue depth (the adaptive batching signal)."""
        return len(self._deliveries)

    def attach_qos(self, admission, batcher=None, classify=None) -> None:
        """Attach overload control to this replica.

        Admission decisions happen inside the sequencer log (meaningful
        on the group speaker only — the one process that sees client
        entries before they are ordered, so the admitted sequence stays
        identical on every member); the executor loop feeds each
        dequeued delivery's queue sojourn to the CoDel controller.
        """
        self.qos = admission
        if hasattr(self.log, "attach_qos"):
            self.log.attach_qos(admission=admission, batcher=batcher,
                                on_shed=self._shed_reply, classify=classify)

    def _shed_reply(self, entry: dict, reason: str) -> None:
        """Backpressure for a shed entry: explicit OVERLOAD, not silence."""
        payload = entry.get("payload")
        command = delivery_command(payload)
        if command is None or not command.client:
            return
        attempt = (payload.get("attempt", 1)
                   if isinstance(payload, dict) else 1)
        self.node.send(command.client, REPLY_KIND, Reply(
            cid=command.cid, status=ReplyStatus.OVERLOAD, value=reason,
            sender=self.node.name, partition=self.partition,
            attempt=attempt), size=96)
        self.node.flight("qos", f"shed {command.cid} ({reason})")

    # -- executor -------------------------------------------------------------

    def _execute_loop(self):
        try:
            if self._start_gate is not None:
                yield self._start_gate
            while True:
                delivery: AmcastDelivery = yield self._deliveries.get()
                if (self.tracer.enabled or self.node.profiler.enabled
                        or self.qos is not None):
                    enqueued = self._enqueue_times.pop(delivery.uid, None)
                    if self.qos is not None and enqueued is not None:
                        self.qos.note_sojourn(self.env.now,
                                              self.env.now - enqueued)
                    command = delivery_command(delivery.payload)
                    if (command is not None and enqueued is not None
                            and self.env.now > enqueued):
                        if self.tracer.enabled:
                            self.tracer.span(trace_id_of(command.cid),
                                             "queue", self.node.name,
                                             enqueued, self.env.now)
                        if self.node.profiler.enabled:
                            self.node.profiler.account(
                                self.node.name, "queue",
                                self.env.now - enqueued)
                self._current_delivery = delivery
                if self.wal is not None:
                    # Durability barrier: the ordered entry must be
                    # fsynced before its effects (and reply) can be
                    # observed by anyone. _current_delivery is already
                    # set, so a checkpoint captured during the wait
                    # still counts this delivery as queued work.
                    yield self.wal.sync_barrier()
                if self.parallel is not None:
                    command = self._parallel_access(delivery.payload)
                    if command is not None:
                        # Once dispatched, the pool tracks the delivery
                        # for checkpoint consistency; the executor moves
                        # straight on to the next entry.
                        self._dispatch_parallel(command, delivery.payload,
                                                delivery)
                        self._current_delivery = None
                        continue
                    # Everything else (creates/deletes, multi-partition
                    # accesses, reconfig fences) serializes against the
                    # whole pool: drain, then run the sequential path.
                    yield from self.parallel.drain()
                    serial = delivery_command(delivery.payload)
                    if serial is not None:
                        self.parallel.scheduler.note_serial(
                            self.execution.cost(serial))
                yield from self._handle_delivery(delivery)
                self._current_delivery = None
        except Interrupted:
            return

    # -- parallel execution (repro.smr.parallel) ------------------------------

    def attach_parallel(self, pool) -> None:
        """Arm the conflict-aware worker pool (see repro.smr.parallel)."""
        self.parallel = pool

    def _parallel_access(self, envelope) -> Optional[Command]:
        """The command, iff this delivery may bypass the serial path.

        Eligible: single-partition access commands addressed to this
        partition alone — no signal exchange, no store-shape change, no
        epoch fence. Everything else returns None and serializes.
        """
        if "reconfig" in envelope:
            return None
        command = envelope.get("command")
        if not isinstance(command, Command):
            return None
        if command.ctype is not CommandType.ACCESS:
            return None
        for dest in envelope["dests"]:
            if dest != self.partition:
                return None
        return command

    def _dispatch_parallel(self, command: Command, envelope,
                           delivery: AmcastDelivery) -> None:
        """Dispatch one single-partition access onto the worker pool.

        The slot is fully determined at dispatch (costs are
        deterministic), so apply + reply run as a callback at the finish
        time and the executor immediately dequeues the next entry.
        ``executed`` is appended now, in log order, keeping the
        cross-replica execution-order invariant independent of finish
        interleavings; a checkpoint captured before the finish filters
        the cid back out (see PartitionCheckpointer.capture).
        """
        env = self.env
        pool = self.parallel
        attempt = envelope.get("attempt", 1)
        if self.replies.enabled:
            slot = pool.inflight_slot(command.cid)
            if slot is not None:
                # A client resend raced the original, which is still on a
                # core: its reply does not exist yet, so re-send it when
                # the original lands.
                def resend():
                    if self.node.crashed:
                        return
                    cached = self.replies.lookup(command.cid, attempt)
                    if cached is not None:
                        self._send_reply(command, cached)
                env.schedule_callback(slot.finish - env.now, resend)
                return
        cached = self.replies.lookup(command.cid, attempt)
        if cached is not None:
            self._send_reply(command, cached)
            return
        slot = pool.dispatch(command, self.execution.cost(command),
                             delivery=delivery)
        self.executed.append(command.cid)
        if self.node.profiler.enabled and slot.stall > 0:
            self.node.profiler.account(self.node.name, "exec.queue",
                                       slot.stall)

        def complete():
            if self.node.crashed:
                return
            reply = self._apply_parallel(command)
            reply.attempt = attempt
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "execute",
                                 self.node.name, slot.start, env.now,
                                 core=slot.core)
            if self.node.profiler.enabled:
                self.node.profiler.account(self.node.name,
                                           f"exec.run.c{slot.core}",
                                           slot.cost)
            self.replies.store(command.cid, reply)
            pool.complete(command.cid)
            self._send_reply(command, reply)

        env.schedule_callback(slot.finish - env.now, complete)

    def _apply_parallel(self, command: Command) -> Reply:
        """Apply a pool-dispatched access (mirror of `_exec_access`'s
        single-partition tail, minus the cost timeout the scheduler
        already charged)."""
        missing = [key for key in command.variables
                   if key not in self.store]
        if missing:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value=f"missing variables: {missing[:3]}",
                         sender=self.node.name, partition=self.partition)
        view = ExecutionView(self.store)
        try:
            value = self.state_machine.apply(command, view)
        except KeyError as error:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value=f"undeclared variable access: {error}",
                         sender=self.node.name, partition=self.partition)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value=value,
                     sender=self.node.name, partition=self.partition)

    def _handle_delivery(self, delivery: AmcastDelivery):
        envelope = delivery.payload
        if "reconfig" in envelope:
            self._apply_reconfig(envelope["reconfig"])
            return
        command: Command = envelope["command"]
        dests = tuple(envelope["dests"])
        attempt = envelope.get("attempt", 1)
        cached = self.replies.lookup(command.cid, attempt)
        if cached is not None:
            # Already executed here (the client re-multicast after a lost
            # race). We must still take part in the signal exchange — with
            # the done flag, so peers skip execution instead of applying
            # the command a second time — and then resend the cached reply,
            # re-tagged with the current attempt so the client accepts it.
            others = [d for d in dests if d != self.partition]
            if command.ctype.value == "access" and others:
                self.exchange.send(others, command.cid, {}, done=True)
            self._send_reply(command, cached)
            return
        handler = {
            "access": self._exec_access,
            "create": self._exec_create,
            "delete": self._exec_delete,
        }.get(command.ctype.value)
        if handler is None:
            raise ValueError(
                f"{self.node.name}: unexpected command type "
                f"{command.ctype.value!r}")
        reply = yield from handler(command, dests)
        if reply is not None:
            reply.attempt = attempt
            self.replies.store(command.cid, reply)
            self.executed.append(command.cid)
            self._send_reply(command, reply)

    # -- reconfiguration (repro.reconfig) -----------------------------------

    def _apply_reconfig(self, spec: dict) -> None:
        """Apply an ordered reconfiguration entry (epoch fence).

        Join and leave-begin entries bump the configuration epoch on every
        group — delivered through the ordered logs, so all replicas of all
        partitions fence identically — and trigger an epoch-tagged
        checkpoint when a :class:`~repro.reconfig.PartitionCheckpointer`
        is attached. Leave-commit entries are oracle-side cleanup and do
        not change the epoch. Re-deliveries of an already-applied entry
        (manager retries under a fresh multicast uid) are no-ops — the
        fuzzer's minimal repro for skipping this check is a single join
        under background message loss.
        """
        if spec.get("kind") in ("join", "leave_begin"):
            rid = spec.get("rid")
            if rid is not None:
                if rid in self.applied_reconfigs:
                    return
                self.applied_reconfigs.add(rid)
            self.epoch += 1
            self.node.flight("epoch",
                             f"{spec['kind']} -> epoch {self.epoch}")
            if self.checkpointer is not None:
                self.checkpointer.capture(reason=spec["kind"])

    # -- command execution (Algorithm 1) -----------------------------------

    def _exec_access(self, command: Command, dests: tuple):
        others = [d for d in dests if d != self.partition]
        remote_vars = {}
        if others:
            self.multi_partition_count += 1
            local_vars = {key: self.store.read(key)
                          for key in command.variables if key in self.store}
            self.exchange.send(others, command.cid, local_vars)
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        if others:
            exchange_start = self.env.now
            yield from self.exchange.wait(command.cid, set(others))
            if self.tracer.enabled:
                self.tracer.span(trace_id_of(command.cid), "exchange",
                                 self.node.name, exchange_start,
                                 self.env.now, peers=len(others))
            if self.node.profiler.enabled:
                self.node.profiler.account(self.node.name, "exchange",
                                           self.env.now - exchange_start)
            # A done-marked exchange (peer cache hit on a client resend)
            # carries the peer's merged original variables, so execution
            # proceeds with the same inputs either way. Whether *we*
            # execute is decided only by our own reply cache above —
            # replicas of a partition see exchange messages at different
            # times under faults, so a decision based on `any_done` here
            # diverges between them (found by fuzzing: a one-way
            # partition made one p0 replica defer a command to its
            # resend slot while the other executed it at the original
            # slot). Exactly-once is already local: the executor is
            # sequential and the per-cid cache catches re-deliveries.
            remote_vars = self.exchange.collect(command.cid)
        missing = [key for key in command.variables
                   if key not in self.store and key not in remote_vars]
        if missing:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value=f"missing variables: {missing[:3]}",
                         sender=self.node.name, partition=self.partition)
        view = ExecutionView(self.store, remote_vars)
        try:
            value = self.state_machine.apply(command, view)
        except KeyError as error:
            # The command's declared variable set was not a superset of
            # what it actually read (the oracle-footnote contract). All
            # replicas fail identically (deterministic apply), so replying
            # NOK keeps replicas consistent.
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value=f"undeclared variable access: {error}",
                         sender=self.node.name, partition=self.partition)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value=value,
                     sender=self.node.name, partition=self.partition)

    def _exec_create(self, command: Command, dests: tuple):
        """Static S-SMR create: the owning partition installs the variable."""
        key = command.variables[0]
        if key in self.store:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value="exists", sender=self.node.name,
                         partition=self.partition)
        self.store.create(
            key, self.state_machine.initial_value(key, command.args))
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value="created",
                     sender=self.node.name, partition=self.partition)

    def _exec_delete(self, command: Command, dests: tuple):
        key = command.variables[0]
        if key not in self.store:
            return Reply(cid=command.cid, status=ReplyStatus.NOK,
                         value="missing", sender=self.node.name,
                         partition=self.partition)
        self.store.delete(key)
        exec_start = self.env.now
        yield self.env.timeout(self.execution.cost(command))
        if self.tracer.enabled:
            self.tracer.span(trace_id_of(command.cid), "execute",
                             self.node.name, exec_start, self.env.now)
        if self.node.profiler.enabled:
            self.node.profiler.account(self.node.name, "execute",
                                       self.env.now - exec_start)
        return Reply(cid=command.cid, status=ReplyStatus.OK, value="deleted",
                     sender=self.node.name, partition=self.partition)

    # -- replies --------------------------------------------------------------

    def _send_reply(self, command: Command, reply: Reply) -> None:
        if command.client:
            self.node.send(command.client, REPLY_KIND, reply, size=128)
