"""The static S-SMR oracle.

In S-SMR "all clients and servers can have their own local oracle, which
always returns a correct set of partitions for every query" — it is a pure
function of the static partition map, so it lives client-side and costs no
messages. The function returns a *superset* of the partitions accessed,
which is always safe; with declared variable sets it is exact.
"""

from __future__ import annotations

from repro.smr.command import Command
from repro.ssmr.partitioning import StaticPartitionMap


class StaticOracle:
    """Client-local oracle over a static partition map."""

    def __init__(self, partition_map: StaticPartitionMap):
        self.partition_map = partition_map

    def partitions_for(self, command: Command) -> set[str]:
        """The set of partitions ``command`` must be multicast to."""
        if not command.variables:
            # A command touching no declared variables could read anything:
            # the safe superset is all partitions (paper, footnote on the
            # oracle).
            return set(self.partition_map.partitions)
        return self.partition_map.partitions_of(command.variables)
