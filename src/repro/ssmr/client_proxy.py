"""S-SMR client proxy.

Consults the client-local static oracle for the partitions a command
accesses and atomically multicasts the command to them. The command travels
inside an envelope carrying ``dests`` so every receiving partition knows who
else is involved (needed for the signal exchange of Algorithm 1). With a
:class:`~repro.resilience.RetryPolicy`, lost requests/replies are resent
under fresh multicast uids; servers deduplicate by command id.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net import Network
from repro.ordering import GroupDirectory
from repro.resilience import RetryPolicy
from repro.sim import Environment, LatencyRecorder
from repro.smr.client import BaseClient
from repro.smr.command import Command, Reply
from repro.ssmr.oracle import StaticOracle


class SsmrClient(BaseClient):
    """Client of an S-SMR deployment."""

    def __init__(self, env: Environment, network: Network,
                 directory: GroupDirectory, name: str, oracle: StaticOracle,
                 latency: Optional[LatencyRecorder] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 tracer=None):
        super().__init__(env, network, directory, name, latency,
                         retry_policy=retry_policy, rng=rng, tracer=tracer)
        self.oracle = oracle
        self.multi_partition_commands = 0

    def run_command(self, command: Command):
        """Generator: execute one command; returns the :class:`Reply`."""
        dests = sorted(self.oracle.partitions_for(command))
        if len(dests) > 1:
            self.multi_partition_commands += 1
        command.client = self.name
        start = self.env.now
        self.tracer.begin_trace(command.cid, self.name, start, op=command.op)

        def send(attempt: int) -> None:
            envelope = {"command": command, "dests": dests,
                        "attempt": attempt}
            self.mcast.multicast(dests, envelope,
                                 size=command.payload_size(),
                                 uid=self.next_uid(f"am:{command.cid}"))

        reply: Reply = yield from self.resilient_request(command.cid, send)
        self.latency.record(self.env.now, self.env.now - start)
        self.tracer.end_trace(command.cid, self.env.now,
                              status=reply.status.value,
                              partitions=len(dests))
        self.profile_command(command.cid, start)
        return reply
