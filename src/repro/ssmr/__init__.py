"""Scalable State Machine Replication — S-SMR (Section 3.2, Algorithm 1).

The service state is split into k partitions, each replicated by its own
server group. Clients consult a *static* local oracle that maps variables to
partitions and atomically multicast each command to the partitions it
touches. Single-partition commands execute exactly like classic SMR;
multi-partition commands make the involved partitions exchange variables
and synchronisation signals before replying, preserving linearizability.

S-SMR is both a baseline in the evaluation and the fallback execution mode
DS-SMR uses to guarantee termination after repeated retries.
"""

from repro.ssmr.partitioning import StaticPartitionMap
from repro.ssmr.oracle import StaticOracle
from repro.ssmr.server import SsmrServer
from repro.ssmr.client_proxy import SsmrClient

__all__ = [
    "SsmrClient",
    "SsmrServer",
    "StaticOracle",
    "StaticPartitionMap",
]
