"""Request-level resilience: timeouts, retry/backoff and reply dedup.

The protocols in this repository are safe under message loss (ordered logs
and servers deduplicate by uid/command id), but a client that never resends
a lost request — or never re-elicits a lost reply — blocks forever. This
module holds the pieces every client/server stack shares:

* :class:`RetryPolicy` — per-request virtual-time timeout plus capped
  exponential backoff with jitter, drawn from the simulation's seeded RNG
  so chaos campaigns stay bit-for-bit reproducible.
* :func:`with_timeout` — generator helper racing a reply event against a
  timeout, the building block of every resilient wait.
* :class:`ReplyCache` — server-side request deduplication: replies are
  cached per command id and re-sent (re-tagged with the caller's current
  attempt) when a retry re-delivers an already-executed command, which is
  what makes client resends exactly-once.

Clients tag every resend with an attempt number and servers echo it, so a
straggling reply from an abandoned attempt can never answer a newer one
(see :class:`~repro.smr.command.Reply`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.sim import Environment, Event


class RequestTimeout(Exception):
    """A request exhausted its retry budget without receiving a reply."""

    def __init__(self, cid: str, attempts: int):
        super().__init__(f"request {cid!r} timed out after "
                         f"{attempts} attempt(s)")
        self.cid = cid
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff knobs of one client's resilient request loop.

    ``timeout_ms`` is the per-attempt virtual-time wait for a reply;
    ``backoff_base_ms * backoff_factor^(attempt-1)`` (capped at
    ``backoff_max_ms``) is slept between attempts, shrunk by up to
    ``jitter`` (a fraction of the backoff) drawn from the client's seeded
    RNG so that synchronised clients desynchronise deterministically.
    ``max_attempts == 0`` retries forever — the right default for chaos
    campaigns where every injected fault eventually heals.

    ``budget_ratio`` arms a retry *budget* (default ``None`` = off, the
    historical behaviour): each success deposits ``budget_ratio``
    withdrawal rights, each retry withdraws one, so sustained retries
    are capped at that fraction of the recent success rate and the
    retry loop cannot multiply offered load during overload. See
    :class:`RetryBudget`.
    """

    timeout_ms: float = 50.0
    backoff_base_ms: float = 5.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 200.0
    jitter: float = 0.5
    max_attempts: int = 0
    budget_ratio: Optional[float] = None

    def __post_init__(self):
        if self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        if self.budget_ratio is not None and not 0 < self.budget_ratio <= 1:
            raise ValueError("budget_ratio must be in (0, 1]")

    def make_budget(self) -> Optional["RetryBudget"]:
        """Build this policy's retry budget, or None when disabled."""
        if self.budget_ratio is None:
            return None
        return RetryBudget(ratio=self.budget_ratio)

    def backoff_ms(self, attempt: int,
                   rng: Optional[random.Random] = None) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts count from 1)."""
        base = min(self.backoff_max_ms,
                   self.backoff_base_ms
                   * self.backoff_factor ** max(0, attempt - 1))
        if self.jitter <= 0 or rng is None:
            return base
        return base * (1.0 - self.jitter * rng.random())

    def gives_up(self, attempts: int) -> bool:
        """True when ``attempts`` completed attempts exhaust the budget."""
        return bool(self.max_attempts) and attempts >= self.max_attempts


class RetryBudget:
    """Token budget capping retries at a fraction of recent successes.

    The resilient request loop is an overload amplifier: every timeout
    resends, so offered load grows exactly when the system is slowest.
    The budget (the Finagle-style construction) breaks the feedback:
    successes deposit ``ratio`` tokens, each retry withdraws one, and
    the balance is capped so old quiet periods cannot bankroll a retry
    storm. A small time-based reserve (``reserve_per_s``, virtual time)
    keeps a fully-failed client probing slowly instead of livelocking —
    a denied withdrawal is a *wait*, never a permanent give-up.
    """

    def __init__(self, ratio: float = 0.2, cap: float = 10.0,
                 reserve_per_s: float = 2.0):
        if not 0 < ratio <= 1:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.cap = float(cap)
        self.reserve_per_s = reserve_per_s
        # Start full: cold-start retries (first request lost before any
        # success) must not be starved.
        self.balance = float(cap)
        self._last_refill = 0.0
        self.granted = 0
        self.denied = 0

    def note_success(self) -> None:
        self.balance = min(self.cap, self.balance + self.ratio)

    def allow(self, now: float) -> bool:
        """Withdraw one retry right at virtual time ``now``."""
        if self.reserve_per_s > 0 and now > self._last_refill:
            self.balance = min(
                self.cap,
                self.balance
                + (now - self._last_refill) * self.reserve_per_s / 1000.0)
        self._last_refill = max(self._last_refill, now)
        if self.balance >= 1.0:
            self.balance -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False


def with_timeout(env: Environment, event: Event,
                 timeout_ms: Optional[float]):
    """Generator: wait on ``event`` for at most ``timeout_ms``.

    Returns ``(fired, value)``; with ``timeout_ms=None`` it degenerates to
    a plain wait (legacy block-forever behaviour).
    """
    if timeout_ms is None:
        value = yield event
        return True, value
    timer = env.timeout(timeout_ms)
    yield env.any_of([event, timer])
    if event.triggered:
        return True, event.value
    return False, None


class ReplyCache:
    """Per-server reply cache keyed by command id.

    ``lookup`` returns the cached reply re-tagged with the retry's attempt
    number (so the client's stale-attempt filter accepts it), or None when
    the command has not executed here. ``enabled=False`` turns the cache
    into a no-op — a **test-only** switch that lets the chaos campaign
    prove its checkers catch duplicate execution.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._replies: dict = {}
        self.hits = 0

    def lookup(self, cid: str, attempt: int = 1):
        if not self.enabled:
            return None
        cached = self._replies.get(cid)
        if cached is None:
            return None
        self.hits += 1
        return replace(cached, attempt=attempt)

    def store(self, cid: str, reply) -> None:
        if self.enabled:
            self._replies[cid] = reply

    def __contains__(self, cid: str) -> bool:
        return self.enabled and cid in self._replies

    def __len__(self) -> int:
        return len(self._replies)
