"""Seeded schedule generation over the full fault vocabulary.

``generate_schedule(seed, index)`` is a pure function: schedule ``index``
of campaign ``seed`` is always the same object, whatever ran before —
the property that lets a campaign be re-run, resumed or replayed from
just ``(seed, index)``.

Unlike the chaos campaign's hand-shaped scenarios, nothing here is
exempt: sequencers, Paxos leaders and oracle replicas are crash victims
(blackout + reconnect — their in-memory ordering state cannot be rebuilt
from a checkpoint), partitions may be asymmetric (one-way reachability),
and reconfiguration join/leave events interleave with the faults.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fuzz.schedule import FaultSchedule, normalize_schedule
from repro.sim import SeedStream

#: Schemes the generator draws from.
GENERATOR_SCHEMES = ("smr", "ssmr", "dssmr", "dynastar")

#: Fault horizon / total virtual-time budget of one generated run (ms).
HORIZON_MS = 300.0
DEADLINE_MS = 9_000.0


def shape_nodes(scheme: str) -> dict:
    """Node names of the fuzzer's fixed deployment shape for ``scheme``
    (2 partitions x 2 replicas, +2 oracle replicas on dynamic schemes;
    classic SMR collapses to one partition). Pure — no cluster needed."""
    partitions = ("p0",) if scheme == "smr" else ("p0", "p1")
    servers = {p: (f"{p}s0", f"{p}s1") for p in partitions}
    oracles = ("or0", "or1") if scheme in ("dssmr", "dynastar") else ()
    return {
        "partitions": partitions,
        "servers": servers,
        # Sorted members => s0 is each group's speaker/sequencer.
        "speakers": tuple(servers[p][0] for p in partitions),
        "followers": tuple(servers[p][1] for p in partitions),
        "oracles": oracles,
        "all": tuple(n for p in partitions for n in servers[p]) + oracles,
    }


def _window(rng, horizon: float, min_len: float = 20.0,
            max_len: float = 120.0) -> tuple[float, float]:
    start = round(rng.uniform(0.0, horizon - min_len - 20.0), 1)
    end = round(min(start + rng.uniform(min_len, max_len), horizon), 1)
    return start, end


def _crash_events(rng, shape: dict, horizon: float) -> list[dict]:
    """Up to two crash events with distinct victims drawn over every
    role: followers (amnesia restart), speakers/sequencers and oracle
    replicas (blackout)."""
    candidates = ([(n, "restart") for n in shape["followers"]]
                  + [(n, "blackout") for n in shape["speakers"]]
                  + [(n, "blackout") for n in shape["oracles"]])
    count = 0
    if rng.random() < 0.65:
        count = 1
        if rng.random() < 0.35:
            count = 2
    victims = rng.sample(candidates, min(count, len(candidates)))
    events = []
    for node, mode in victims:
        at = round(rng.uniform(30.0, horizon * 0.55), 1)
        duration = round(rng.uniform(40.0, 120.0), 1)
        events.append({"kind": "crash", "at": at, "node": node,
                       "mode": mode, "duration": duration})
    return events


def _partition_event(rng, shape: dict, horizon: float) -> Optional[dict]:
    if rng.random() >= 0.45:
        return None
    at, end = _window(rng, horizon, min_len=30.0, max_len=70.0)
    nodes = list(shape["all"])
    # A non-trivial random split; oracles may land on either side (or be
    # isolated entirely), unlike the chaos campaign's fixed islands.
    cut = rng.randint(1, len(nodes) - 1)
    island_a = sorted(rng.sample(nodes, cut))
    island_b = sorted(set(nodes) - set(island_a))
    if rng.random() < 0.4:
        return {"kind": "partition_oneway", "at": at, "end": end,
                "srcs": island_a, "dsts": island_b}
    return {"kind": "partition", "at": at, "end": end,
            "island_a": island_a, "island_b": island_b}


def _reconfig_events(rng, scheme: str, horizon: float) -> list[dict]:
    if scheme not in ("dssmr", "dynastar") or rng.random() >= 0.4:
        return []
    join_at = round(rng.uniform(40.0, horizon * 0.5), 1)
    events = [{"kind": "join", "at": join_at, "partition": "p2"}]
    if rng.random() < 0.4:
        leave_at = round(join_at + rng.uniform(80.0, 140.0), 1)
        events.append({"kind": "leave", "at": leave_at, "partition": "p2"})
    return events


def _supervisor_events(rng, shape: dict, horizon: float) -> list[dict]:
    """False-suspicion vocabulary, drawn only for supervisor-enabled
    schedules (plain campaigns keep their historical event streams).

    * a *delay-spiked* node: all of its traffic (heartbeats included)
      rides spikes long enough to look like death — the detector's
      hysteresis plus the healer's replace cooldown must keep it from
      being double-replaced;
    * a *drop-isolated* node: a total but temporary blackout-by-loss.
      The supervisor will (correctly, from its vantage) confirm it and
      heal; when the window ends, the wrongly-suspected incarnation must
      be fenced out rather than split-brain with its replacement.
    """
    events: list[dict] = []
    if rng.random() < 0.45:
        node = shape["all"][rng.randrange(len(shape["all"]))]
        at, end = _window(rng, horizon, min_len=40.0, max_len=90.0)
        events.append({"kind": "delay", "at": at, "end": end,
                       "fraction": 1.0,
                       "spike_ms": round(rng.uniform(40.0, 100.0), 1),
                       "nodes": [node]})
    if rng.random() < 0.45:
        node = shape["all"][rng.randrange(len(shape["all"]))]
        at, end = _window(rng, horizon, min_len=40.0, max_len=90.0)
        events.append({"kind": "drop", "at": at, "end": end,
                       "fraction": 1.0, "nodes": [node]})
    return events


def _overload_events(rng, horizon: float) -> list[dict]:
    """Traffic-burst vocabulary, drawn only for qos-enabled schedules.

    An open-loop read-only surge well above the sequencers' admission
    rate: the controllers must shed it (explicit OVERLOAD backpressure)
    while the foreground workload still completes — including under
    whatever partition/crash faults the schedule combines it with.
    """
    events: list[dict] = []
    count = 1 if rng.random() < 0.75 else 2
    for _ in range(count):
        at, end = _window(rng, horizon, min_len=30.0, max_len=80.0)
        events.append({"kind": "overload", "at": at, "end": end,
                       "rate_per_s": round(rng.uniform(2_000.0, 6_000.0)),
                       "clients": rng.randint(4, 8)})
    return events


def _disk_events(rng, shape: dict, horizon: float) -> list[dict]:
    """Storage-fault vocabulary, drawn only for durability-enabled
    schedules.

    Torn writes and bit rot are latent: they damage durable bytes that
    only matter when a later crash cold-starts the victim from disk —
    so they are biased early, before the crash events' window. A slow
    disk stretches fsync latency, stressing the group-commit barrier
    under load. A rare whole-cluster power loss replaces the usual
    crash faults entirely: every node must come back from its own disk
    with zero live peers.
    """
    events: list[dict] = []
    if rng.random() < 0.12:
        # Power loss subsumes every other crash: nothing else to draw.
        at = round(rng.uniform(40.0, horizon * 0.4), 1)
        duration = round(rng.uniform(40.0, 100.0), 1)
        return [{"kind": "power_loss", "at": at, "duration": duration}]
    if rng.random() < 0.5:
        node = shape["all"][rng.randrange(len(shape["all"]))]
        kind = ("disk_torn_write" if rng.random() < 0.5
                else "disk_bitrot")
        events.append({"kind": kind, "node": node,
                       "at": round(rng.uniform(10.0, horizon * 0.4), 1)})
    if rng.random() < 0.35:
        node = shape["all"][rng.randrange(len(shape["all"]))]
        at, end = _window(rng, horizon, min_len=40.0, max_len=100.0)
        events.append({"kind": "disk_slow", "at": at, "end": end,
                       "node": node,
                       "factor": round(rng.uniform(4.0, 20.0), 1)})
    return events


def generate_schedule(seed: int, index: int,
                      schemes: Sequence[str] = GENERATOR_SCHEMES,
                      num_clients: int = 3, ops_per_client: int = 8,
                      num_keys: int = 6,
                      inject_bug: Optional[str] = None,
                      supervisor: bool = False,
                      overload: bool = False,
                      disk: bool = False,
                      parallel: bool = False) -> FaultSchedule:
    """Draw schedule ``index`` of campaign ``seed`` (pure function)."""
    rng = SeedStream(seed).child("fuzz-gen").stream(f"s{index}")
    scheme = schemes[rng.randrange(len(schemes))]
    shape = shape_nodes(scheme)
    horizon = HORIZON_MS

    events: list[dict] = [{
        # Baseline background loss for the whole fault phase.
        "kind": "drop", "at": 0.0, "end": horizon,
        "fraction": round(rng.uniform(0.005, 0.02), 4),
    }]
    if rng.random() < 0.5:
        at, end = _window(rng, horizon)
        events.append({"kind": "delay", "at": at, "end": end,
                       "fraction": round(rng.uniform(0.05, 0.2), 3),
                       "spike_ms": round(rng.uniform(5.0, 20.0), 2)})
    if rng.random() < 0.5:
        at, end = _window(rng, horizon)
        events.append({"kind": "duplicate", "at": at, "end": end,
                       "fraction": round(rng.uniform(0.05, 0.2), 3),
                       "copies": 1})
    if rng.random() < 0.5:
        at, end = _window(rng, horizon)
        events.append({"kind": "reorder", "at": at, "end": end,
                       "fraction": round(rng.uniform(0.1, 0.3), 3),
                       "window_ms": round(rng.uniform(1.0, 4.0), 2)})
    partition = _partition_event(rng, shape, horizon)
    if partition is not None:
        events.append(partition)
    disk_events = _disk_events(rng, shape, horizon) if disk else []
    power = any(e["kind"] == "power_loss" for e in disk_events)
    events.extend(disk_events)
    if not power:
        # A whole-cluster power loss subsumes individual crashes and
        # would race a mid-flight join/leave; it rides alone.
        events.extend(_crash_events(rng, shape, horizon))
        events.extend(_reconfig_events(rng, scheme, horizon))
    if supervisor and not power:
        events.extend(_supervisor_events(rng, shape, horizon))
    if overload:
        events.extend(_overload_events(rng, horizon))
    if inject_bug is not None:
        # Sentinel trigger: a planted bug is only observable if a client
        # actually resends a command its server already executed, which
        # random background loss produces on some seeds only. A total
        # drop window on *reply* traffic forces the resend-after-execute
        # race deterministically, so every seed reaches the sentinel —
        # while leaving request/ordering traffic to the random faults.
        events.append({"kind": "drop", "at": 0.0,
                       "end": min(90.0, horizon), "fraction": 1.0,
                       "kinds": ["reply"]})

    return normalize_schedule(FaultSchedule(
        seed=seed, index=index, scheme=scheme, events=tuple(events),
        horizon_ms=horizon, deadline_ms=DEADLINE_MS,
        num_clients=num_clients, ops_per_client=ops_per_client,
        num_keys=num_keys, inject_bug=inject_bug, supervisor=supervisor,
        qos=overload, durability=disk, parallel=parallel))
