"""Deterministic fault-schedule fuzzer (``python -m repro fuzz``).

The fuzzer turns the simulator into a standing correctness weapon:

* :mod:`repro.fuzz.schedule` — the schedule model: one seeded, timed
  list of fault events (message faults, asymmetric partitions, crashes
  of *any* node including sequencers and oracle replicas, reconfig
  join/leave) plus the workload shape, all JSON-serialisable.
* :mod:`repro.fuzz.generate` — pure seeded generation over the full
  fault vocabulary and all schemes.
* :mod:`repro.fuzz.runner` — the schedule-driven runner (shared with the
  chaos campaign): build a deployment, apply the schedule, run the
  linearizability workload, check every invariant.
* :mod:`repro.fuzz.shrink` — delta-debugging minimisation of violating
  schedules: drop events, shorten windows, reduce the workload, tighten
  the horizon — re-running deterministically at every step.
* :mod:`repro.fuzz.artifact` — replayable JSON repro artifacts
  (``python -m repro fuzz --replay <artifact>`` reproduces the recorded
  violation byte-identically).
* :mod:`repro.fuzz.campaign` — seeded multi-schedule campaigns with a
  printable report and a canonical JSON summary (the CI smoke
  byte-compares two same-seed runs).
"""

from repro.fuzz.artifact import (load_artifact, make_artifact,
                                 replay_artifact, save_artifact)
from repro.fuzz.campaign import (FUZZ_SCHEMES, FuzzCampaignResult,
                                 run_fuzz_campaign)
from repro.fuzz.generate import generate_schedule
from repro.fuzz.runner import ScheduleRunResult, run_schedule
from repro.fuzz.schedule import FaultSchedule, normalize_schedule
from repro.fuzz.shrink import ShrinkResult, shrink_schedule

__all__ = [
    "FUZZ_SCHEMES",
    "FaultSchedule",
    "FuzzCampaignResult",
    "ScheduleRunResult",
    "ShrinkResult",
    "generate_schedule",
    "load_artifact",
    "make_artifact",
    "normalize_schedule",
    "replay_artifact",
    "run_fuzz_campaign",
    "run_schedule",
    "save_artifact",
    "shrink_schedule",
]
