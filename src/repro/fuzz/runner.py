"""Schedule-driven run: build a deployment, apply the faults, check.

``run_schedule`` is the single execution path behind the fuzzer, the
replay artifact and (via scenario conversion) the chaos campaign: reset
the global id counters, build the scheme's deployment, install every
schedule event against the simulation clock, run the seeded client
workload to completion, heal at the horizon, settle, then check

* completion — every client op finished before the virtual deadline;
* linearizability — the bounded Wing–Gong checker over the recorded
  history (an ``inconclusive`` verdict is reported but is *not* a
  violation, so the shrinker never chases checker-budget artifacts);
* the end-state invariant suite (:mod:`repro.harness.invariants`).

Runs are deterministic: the same schedule produces a byte-identical
:meth:`ScheduleRunResult.to_dict`, which is what ``--replay`` compares.

Events that do not apply to the deployment at hand — a crash naming a
node the scheme does not build, an amnesia restart aimed at a speaker,
a leave for a partition that never joined — are *skipped
deterministically* and counted in ``events_skipped`` instead of
erroring. That keeps hand-edited and shrunk schedules sound: removing
the join event from a join+leave schedule leaves a runnable (if
pointless) leave, not a crash of the harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.checkers import (INCONCLUSIVE, VIOLATION, History,
                            KvSequentialSpec, check_linearizable_bounded)
from repro.fuzz.schedule import FaultSchedule, normalize_schedule
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.faults import make_crash_restart, reset_id_counters
from repro.harness.invariants import cluster_invariants
from repro.net import FailureInjector
from repro.obs import CommandTracer, command_timeline, find_anomalies
from repro.obs.report import slowest_traces
from repro.qos import QosConfig
from repro.resilience import RequestTimeout, RetryPolicy
from repro.sim import SeedStream
from repro.smr import Command, ExecutionConfig, ReplyStatus
from repro.store import DurabilityConfig

#: Settle time after the cooldown round before invariant checking (ms).
SETTLE_MS = 400.0

#: Test-only deliberate protocol bugs the runner can arm.  ``no_dedup``
#: disables the server reply caches, so a client resend under loss
#: double-executes its command — the fuzzer must find and shrink it.
INJECTABLE_BUGS = ("no_dedup",)


@dataclass
class ScheduleRunResult:
    """Outcome of one schedule run, canonically serialisable."""

    schedule: FaultSchedule
    ops_completed: int
    ops_expected: int
    finished_at: Optional[float]     # virtual ms; None if the run wedged
    timeouts: int
    resends: int
    messages_sent: int
    linearizability: str             # linearizable | violation | inconclusive
    violations: tuple[str, ...]
    events_skipped: tuple[str, ...] = ()
    trace_notes: tuple[str, ...] = ()
    # ClusterHealer.snapshot() for supervisor-enabled schedules (MTTR
    # accounting: detections, episodes, unavailability); None otherwise.
    heal: Optional[dict] = None
    # FlightRecorder.dump() — the last protocol events of every node.
    # Populated when the run violated an invariant (post-mortem context
    # rides the repro artifact) or ran a healing episode; None otherwise.
    flight: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """Canonical JSON shape — byte-compared by ``--replay``."""
        return {
            "schedule_digest": self.schedule.digest(),
            "scheme": self.schedule.scheme,
            "ops_completed": self.ops_completed,
            "ops_expected": self.ops_expected,
            "finished_at": self.finished_at,
            "timeouts": self.timeouts,
            "resends": self.resends,
            "messages_sent": self.messages_sent,
            "linearizability": self.linearizability,
            "violations": list(self.violations),
            "events_skipped": list(self.events_skipped),
            "trace_notes": list(self.trace_notes),
            "heal": self.heal,
            "flight": self.flight,
        }


def _workload_command(rng: random.Random, keys: tuple) -> Command:
    """The linearizability workload mix: reads, increments, swaps, sums."""
    kind = rng.random()
    if kind < 0.30:
        key = rng.choice(keys)
        return Command(op="get", args={"key": key}, variables=(key,))
    if kind < 0.65:
        key = rng.choice(keys)
        return Command(op="incr", args={"key": key}, variables=(key,),
                       writes=(key,))
    if kind < 0.85:
        a, b = rng.sample(keys, 2)
        return Command(op="swap", args={"a": a, "b": b}, variables=(a, b),
                       writes=(a, b))
    picked = rng.sample(keys, 2)
    return Command(op="sum", args={"keys": picked}, variables=tuple(picked))


def _build_cluster(schedule: FaultSchedule, keys: tuple,
                   tracer) -> Cluster:
    if (schedule.inject_bug is not None
            and schedule.inject_bug not in INJECTABLE_BUGS):
        raise ValueError(f"unknown injectable bug "
                         f"{schedule.inject_bug!r}; "
                         f"pick one of {INJECTABLE_BUGS}")
    assignment = None
    if schedule.scheme != "smr":
        assignment = {key: i % 2 for i, key in enumerate(keys)}
    cluster_seed = (SeedStream(schedule.seed).child(schedule.scheme)
                    .stream(f"fuzz{schedule.index}").randrange(2**31))
    # qos=True arms the full overload-control stack with a token bucket
    # low enough that the generator's burst rates actually shed (the
    # fuzzer's execution model leaves the executors far from saturated,
    # so CoDel alone would rarely fire) plus a retry budget on every
    # client — the maximal surface for QoS x fault interactions.
    cluster = Cluster(ClusterConfig(
        scheme=schedule.scheme, num_partitions=2, replicas_per_partition=2,
        seed=cluster_seed,
        retry_policy=RetryPolicy(budget_ratio=0.2 if schedule.qos
                                 else None),
        initial_assignment=assignment,
        dedup=schedule.inject_bug != "no_dedup",
        qos=QosConfig(rate_per_s=2_000.0) if schedule.qos else None,
        durability=DurabilityConfig() if schedule.durability else None,
        parallel=ExecutionConfig(workers=4) if schedule.parallel
        else None),
        tracer=tracer)
    cluster.preload({key: 0 for key in keys})
    return cluster


def _overload_burst(cluster: Cluster, event: dict, burst_index: int,
                    keys: tuple):
    """Generator: open-loop read-only surge over the event's window.

    Burst clients are real cluster clients (their AIMD windows and
    retry budgets are live), but their ops are *not* recorded in the
    linearizability history and do not count toward completion — the
    burst is environment, not workload. Ops are read-only gets, so the
    recorded history's sequential spec is unaffected, and a burst op
    that exhausts its retry budget after the window is simply dropped.
    """
    env = cluster.env
    rng = cluster.seeds.child("overload-burst").stream(f"b{burst_index}")
    clients = [cluster.new_client(f"burst{burst_index}x{i}")
               for i in range(event["clients"])]
    gap_ms = 1000.0 / event["rate_per_s"]

    def one_op(client, key):
        try:
            yield from client.pace()
            yield from client.run_command(
                Command(op="get", args={"key": key}, variables=(key,)))
        except RequestTimeout:
            pass

    index = 0
    while True:
        yield env.timeout(gap_ms * (0.5 + rng.random()))
        if env.now >= event["end"]:
            return
        env.process(
            one_op(clients[index % len(clients)], rng.choice(keys)),
            name=f"fuzz/burst{burst_index}-{index}")
        index += 1


def _apply_schedule(cluster: Cluster, injector: FailureInjector,
                    schedule: FaultSchedule, skipped: list,
                    reconfig_done: list, keys: tuple = ()) -> None:
    """Install every schedule event against the simulation clock."""
    env = cluster.env

    def skip(event, why: str) -> None:
        skipped.append(f"{event['kind']}@{event['at']:.0f}: {why}")

    for event in schedule.events:
        kind = event["kind"]
        if kind in FailureInjector.MESSAGE_EVENT_KINDS:
            injector.apply_event(event)
        elif kind == "crash":
            self_name, mode = event["node"], event["mode"]
            known = (self_name in cluster.servers
                     or any(o.node.name == self_name
                            for o in cluster.oracles))
            if not known:
                skip(event, f"no node {self_name!r} in a "
                            f"{schedule.scheme} deployment")
                continue
            if mode == "restart":
                speakers = {cluster.directory.speaker(p)
                            for p in cluster.partitions}
                if self_name not in cluster.servers or (
                        self_name in speakers
                        and not schedule.durability):
                    # Amnesia cannot resurrect sequencer state; only a
                    # blackout models a speaker/oracle outage — unless
                    # the deployment is durable, where the cold-start
                    # ladder reconciles the sequencer from its WAL.
                    skip(event, "restart (amnesia) is only valid for "
                                "follower replicas")
                    continue
            crash, restart = make_crash_restart(cluster, self_name, mode)
            if schedule.supervisor:
                # Autonomous mode: the harness only injects the fault.
                # No restart is scheduled at all — detection and recovery
                # are entirely the supervisor's job — and the crash
                # bypasses the injector so heal_all cannot resurrect the
                # victim behind the supervisor's back.
                env.schedule_callback(event["at"], crash)
            else:
                injector.crash_restart_at(event["at"], self_name,
                                          event["duration"],
                                          crash=crash, restart=restart)
        elif kind == "join":
            if cluster.reconfig is None:
                skip(event, f"{schedule.scheme} is not elastic")
                continue
            partition = event["partition"]
            done = env.event()
            reconfig_done.append(done)

            def start_join(partition=partition, done=done):
                def run():
                    if partition in cluster.partitions:
                        skipped.append(f"join@{env.now:.0f}: "
                                       f"{partition} already joined")
                    else:
                        yield from cluster.grow(partition)
                    done.succeed(None)
                    return
                    yield  # pragma: no cover — makes run() a generator
                env.process(run(), name=f"fuzz/join-{partition}")

            env.schedule_callback(event["at"], start_join)
        elif kind == "leave":
            if cluster.reconfig is None:
                skip(event, f"{schedule.scheme} is not elastic")
                continue
            partition = event["partition"]
            done = env.event()
            reconfig_done.append(done)

            def start_leave(partition=partition, done=done):
                def run():
                    if partition not in cluster.partitions:
                        skipped.append(f"leave@{env.now:.0f}: "
                                       f"{partition} not in the "
                                       f"configuration")
                    else:
                        yield from cluster.shrink(partition)
                    done.succeed(None)
                    return
                    yield  # pragma: no cover
                env.process(run(), name=f"fuzz/leave-{partition}")

            env.schedule_callback(event["at"], start_leave)
        elif kind == "overload":
            burst_index = len([e for e in schedule.events
                               if e["kind"] == "overload"
                               and e["at"] < event["at"]])

            def start_burst(event=event, burst_index=burst_index):
                env.process(_overload_burst(cluster, event, burst_index,
                                            keys),
                            name=f"fuzz/burst{burst_index}")

            env.schedule_callback(event["at"], start_burst)
        elif kind in ("disk_torn_write", "disk_bitrot"):
            if cluster.disks is None:
                skip(event, "durability is not armed")
                continue
            node, method = event["node"], (
                "tear_tail" if kind == "disk_torn_write"
                else "inject_bitrot")

            def corrupt(node=node, method=method):
                getattr(cluster.disks.disk(node), method)()

            env.schedule_callback(event["at"], corrupt)
        elif kind == "disk_slow":
            if cluster.disks is None:
                skip(event, "durability is not armed")
                continue
            node, factor = event["node"], event["factor"]

            def slow_down(node=node, factor=factor):
                cluster.disks.disk(node).slow_factor = factor

            def speed_up(node=node):
                cluster.disks.disk(node).slow_factor = 1.0

            env.schedule_callback(event["at"], slow_down)
            env.schedule_callback(event["end"], speed_up)
        elif kind == "power_loss":
            if cluster.disks is None:
                skip(event, "durability is not armed")
                continue
            if schedule.supervisor:
                # The healer's replace actions would race the restore:
                # a deployment with zero live peers has nothing for the
                # supervisors to recover from anyway.
                skip(event, "power_loss and the heal supervisor are "
                            "mutually exclusive")
                continue

            def power_cycle(event=event):
                cluster.power_fail()
                env.schedule_callback(event["duration"],
                                      cluster.power_restore)

            env.schedule_callback(event["at"], power_cycle)
        else:
            raise ValueError(f"unknown event kind {kind!r}")


def run_schedule(schedule: FaultSchedule,
                 linearizability_budget: int = 200_000
                 ) -> ScheduleRunResult:
    """Run one fault schedule end to end and check every invariant."""
    schedule = normalize_schedule(schedule)
    reset_id_counters()
    keys = tuple(f"k{i}" for i in range(max(schedule.num_keys, 2)))
    tracer = CommandTracer()
    cluster = _build_cluster(schedule, keys, tracer)
    env = cluster.env

    healer = None
    if schedule.supervisor:
        # Late import: repro.heal lazily wires back into ordering/harness.
        from repro.heal.healer import ClusterHealer
        healer = ClusterHealer(cluster)

    injector = FailureInjector(
        env, cluster.network,
        cluster.seeds.child(f"fuzz{schedule.index}"))
    skipped: list[str] = []
    reconfig_done: list = []
    _apply_schedule(cluster, injector, schedule, skipped, reconfig_done,
                    keys=keys)
    # A clean network for the post-fault phase: the invariants are
    # end-state guarantees, and trailing in-window faults would race them.
    env.schedule_callback(schedule.horizon_ms, injector.heal_all)

    # -- workload ----------------------------------------------------------
    history = History()
    status = {"completed": 0, "finished_clients": 0}
    workload_done = env.event()
    clients = [cluster.new_client(f"c{i}")
               for i in range(schedule.num_clients)]
    workload_tag = (f"{schedule.seed}/{schedule.scheme}/"
                    f"fuzz{schedule.index}")

    def client_loop(client, index):
        rng = random.Random(f"{workload_tag}/{index}")
        for _ in range(schedule.ops_per_client):
            command = _workload_command(rng, keys)
            invoked = env.now
            reply = yield from client.run_command(command)
            result = reply.value if reply.status is not ReplyStatus.NOK \
                else str(reply.value)
            history.record(client.name, command.op, command.args,
                           result, invoked, env.now)
            status["completed"] += 1
            yield env.timeout(rng.uniform(0.0, 1.0))
        status["finished_clients"] += 1
        if status["finished_clients"] == schedule.num_clients:
            workload_done.succeed(None)

    for index, client in enumerate(clients):
        env.process(client_loop(client, index), name=f"fuzz/{client.name}")
    end_marker = {"at": None}

    def driver():
        yield workload_done
        # In-flight joins/leaves must land before the end-state check —
        # retries run forever, so they complete once the network heals.
        for done in reconfig_done:
            yield done
        if env.now < schedule.horizon_ms + 10.0:
            yield env.timeout(schedule.horizon_ms + 10.0 - env.now)
        # Cooldown round on a fresh client: new log entries make any
        # replica with a trailing log gap detect it and request backfill.
        cooldown = cluster.new_client("cool")
        for key in keys:
            yield from cooldown.run_command(
                Command(op="get", args={"key": key}, variables=(key,)))
        yield env.timeout(SETTLE_MS)
        if healer is not None:
            # End the healing loop so its heartbeat/detector timers stop
            # generating events; any in-flight state transfer it started
            # still runs to completion before the end-state checks.
            healer.stop()
        end_marker["at"] = env.now

    env.process(driver(), name="fuzz/driver")
    env.run(until=schedule.deadline_ms)
    if healer is not None:
        healer.stop()   # a wedged run never reached the driver's stop

    # -- checks ------------------------------------------------------------
    violations: list[str] = []
    expected = schedule.num_clients * schedule.ops_per_client
    linearizability = INCONCLUSIVE
    if status["completed"] != expected or end_marker["at"] is None:
        violations.append(f"only {status['completed']}/{expected} ops "
                          f"completed before the deadline")
    else:
        linearizability = check_linearizable_bounded(
            history, KvSequentialSpec({key: 0 for key in keys}),
            max_nodes=linearizability_budget)
        if linearizability == VIOLATION:
            violations.append("history is not linearizable")

    violations.extend(cluster_invariants(cluster))

    trace_notes: list[str] = []
    if violations:
        stuck = tracer.open_traces()
        if stuck:
            trace_notes.append(
                "stuck commands (root span never closed): "
                + ", ".join(stuck[:6])
                + (f" (+{len(stuck) - 6} more)" if len(stuck) > 6 else ""))
        trace_notes.extend(find_anomalies(tracer.spans)[:4])
        slow = slowest_traces(tracer.spans, 1)
        if slow:
            trace_notes.append(command_timeline(tracer.spans, slow[0]))

    heal = healer.snapshot() if healer is not None else None
    flight = None
    if violations or (heal is not None and heal.get("episodes")):
        # Post-mortem context: the flight recorder's last-events rings
        # from *every* node ride the repro artifact, so a shrunk repro
        # shows what each node saw right before the violation.
        flight = cluster.network.flight.dump()

    return ScheduleRunResult(
        schedule=schedule,
        ops_completed=status["completed"], ops_expected=expected,
        finished_at=end_marker["at"],
        timeouts=sum(c.timeouts for c in cluster.clients),
        resends=sum(c.resends for c in cluster.clients),
        messages_sent=cluster.network.messages_sent,
        linearizability=linearizability,
        violations=tuple(violations),
        events_skipped=tuple(skipped),
        trace_notes=tuple(trace_notes),
        heal=heal,
        flight=flight)
