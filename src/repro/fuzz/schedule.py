"""The fault-schedule model: one timed, JSON-shaped fault plan.

A :class:`FaultSchedule` fully determines a run — deployment scheme,
workload shape, fault events and time horizon — so running it twice
produces byte-identical results, which is what makes shrinking and
replay artifacts possible.

Events are plain dicts (the JSON wire format, see
:meth:`~repro.net.failure.FailureInjector.apply_event` for the
message-level kinds). Node- and cluster-level kinds add:

* ``{"kind": "crash", "at": t, "node": name, "mode": m, "duration": d}``
  — ``mode`` is ``"restart"`` (amnesia + full recovery; followers only)
  or ``"blackout"`` (network cut + reconnect; any node, including
  sequencers, Paxos leaders and oracle replicas).
* ``{"kind": "join", "at": t, "partition": p}`` — live partition join
  (dynamic schemes; silently skipped elsewhere).
* ``{"kind": "leave", "at": t, "partition": p}`` — two-phase drain and
  retire of a previously joined partition.

Durable deployments (``durability=True``) add storage faults:

* ``{"kind": "disk_torn_write", "at": t, "node": n}`` — tear a seeded
  suffix off the node's newest durable file (a write that half-landed).
* ``{"kind": "disk_bitrot", "at": t, "node": n}`` — flip one seeded
  byte in a seeded durable file; surfaces as a CRC mismatch at the next
  cold start, never as silently wrong data.
* ``{"kind": "disk_slow", "at": t, "end": e, "node": n, "factor": f}``
  — multiply the node's fsync latency by ``f`` over the window.
* ``{"kind": "power_loss", "at": t, "duration": d}`` — the whole
  cluster loses power: every node object-crashes, every disk drops its
  un-fsynced bytes, and ``duration`` ms later the deployment cold
  starts from what the disks still hold.

Schedules are *normalised* before running: events outside the horizon
are dropped and crash durations are clamped so every victim is back
before the heal point. The runner and the shrinker both normalise, so a
shrink step that tightens the horizon can never manufacture a zombie
node (crashed at heal time) that would masquerade as a violation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional

#: Event kinds handled by the injector's declarative API.
MESSAGE_KINDS = ("drop", "delay", "duplicate", "reorder",
                 "partition", "partition_oneway")
#: Event kinds the runner handles against the deployment.
#: ``overload`` is an open-loop background traffic surge:
#: ``{"kind": "overload", "at": t, "end": e, "rate_per_s": r,
#: "clients": n}`` spawns ``n`` burst clients issuing read-only gets at
#: aggregate rate ``r`` over the window. Burst ops are excluded from the
#: completion and linearizability accounting (reads by design, so the
#: recorded history's spec is unaffected).
CLUSTER_KINDS = ("crash", "join", "leave", "overload",
                 "disk_torn_write", "disk_bitrot", "disk_slow",
                 "power_loss")

#: Minimum ms a clamped crash still keeps its victim down.
MIN_CRASH_MS = 5.0
#: Margin between the last recovery and the heal point.
HEAL_MARGIN_MS = 10.0


@dataclass(frozen=True)
class FaultSchedule:
    """One deterministic fuzz run: deployment, workload and fault plan."""

    seed: int
    index: int
    scheme: str
    events: tuple = ()
    horizon_ms: float = 300.0      # faults heal here
    deadline_ms: float = 9_000.0   # virtual-time budget of the whole run
    num_clients: int = 3
    ops_per_client: int = 8
    num_keys: int = 6
    # Test-only deliberate protocol bug (e.g. "no_dedup" disables the
    # server reply caches, so client resends double-execute). Lives in
    # the schedule so a repro artifact replays the identical build.
    inject_bug: Optional[str] = None
    # Autonomous recovery: attach a ClusterHealer (repro.heal) and let
    # *it* drive crash recovery — the runner then schedules crash events
    # with no harness restart at all. Off by default so existing
    # schedules replay unchanged.
    supervisor: bool = False
    # Overload control (repro.qos): build the cluster with admission
    # control, adaptive batching and client AIMD windows armed. Off by
    # default so existing schedules replay unchanged.
    qos: bool = False
    # Durable storage (repro.store): every node gets a simulated disk
    # with a write-ahead log, crashes recover through the cold-start
    # ladder, and the disk_* / power_loss event kinds become live. Off
    # by default so existing schedules replay unchanged.
    durability: bool = False
    # Conflict-aware parallel execution (repro.smr.parallel): every
    # server executes on a 4-worker pool. The linearizability checker
    # then fuzzes the P-SMR equivalence argument under faults. Off by
    # default so existing schedules replay unchanged.
    parallel: bool = False

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "index": self.index,
            "scheme": self.scheme,
            "events": [dict(event) for event in self.events],
            "horizon_ms": self.horizon_ms,
            "deadline_ms": self.deadline_ms,
            "num_clients": self.num_clients,
            "ops_per_client": self.ops_per_client,
            "num_keys": self.num_keys,
            "inject_bug": self.inject_bug,
            "supervisor": self.supervisor,
            "qos": self.qos,
            "durability": self.durability,
            "parallel": self.parallel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(seed=data["seed"], index=data["index"],
                   scheme=data["scheme"],
                   events=tuple(dict(e) for e in data["events"]),
                   horizon_ms=data["horizon_ms"],
                   deadline_ms=data["deadline_ms"],
                   num_clients=data["num_clients"],
                   ops_per_client=data["ops_per_client"],
                   num_keys=data["num_keys"],
                   inject_bug=data.get("inject_bug"),
                   supervisor=data.get("supervisor", False),
                   qos=data.get("qos", False),
                   durability=data.get("durability", False),
                   parallel=data.get("parallel", False))

    def canonical_json(self) -> str:
        """Canonical serialisation (sorted keys, no whitespace) — the
        basis of digests and of the replay byte-comparison."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Ten-hex-digit schedule fingerprint for reports and filenames."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:10]

    def describe(self) -> str:
        """Compact single-line fault summary for reports."""
        parts = []
        for event in self.events:
            kind = event["kind"]
            if kind == "crash":
                parts.append(f"{event['mode']}({event['node']}"
                             f"@{event['at']:.0f}+{event['duration']:.0f})")
            elif kind in ("join", "leave"):
                parts.append(f"{kind}({event['partition']}"
                             f"@{event['at']:.0f})")
            elif kind == "overload":
                parts.append(f"burst({event['rate_per_s']:.0f}/s"
                             f"x{event['clients']}[{event['at']:.0f},"
                             f"{event['end']:.0f}))")
            elif kind in ("disk_torn_write", "disk_bitrot"):
                tag = "torn" if kind == "disk_torn_write" else "bitrot"
                parts.append(f"{tag}({event['node']}@{event['at']:.0f})")
            elif kind == "disk_slow":
                parts.append(f"slowdisk({event['node']}"
                             f"x{event['factor']:.0f}[{event['at']:.0f},"
                             f"{event['end']:.0f}))")
            elif kind == "power_loss":
                parts.append(f"power({event['at']:.0f}"
                             f"+{event['duration']:.0f})")
            elif kind in ("partition", "partition_oneway"):
                arrow = "~" if kind == "partition" else ">"
                parts.append(f"split{arrow}[{event['at']:.0f},"
                             f"{event['end']:.0f})")
            else:
                scope = ""
                if event.get("nodes"):
                    scope = "@" + "+".join(event["nodes"])
                if event.get("kinds"):
                    scope += ":" + "+".join(event["kinds"])
                parts.append(f"{kind}({event['fraction']:.3f}{scope}"
                             f"[{event['at']:.0f},{event['end']:.0f}))")
        if self.supervisor:
            parts.append("+supervisor")
        if self.qos:
            parts.append("+qos")
        if self.durability:
            parts.append("+durability")
        if self.parallel:
            parts.append("+parallel")
        return " ".join(parts) if parts else "no-faults"


def normalize_schedule(schedule: FaultSchedule) -> FaultSchedule:
    """Clamp events to the horizon so the heal point finds no open fault.

    * message-fault windows are clipped to ``[0, horizon)`` and dropped
      when empty;
    * crashes are dropped if they begin too close to the horizon, and
      their duration is clamped so recovery fires ``HEAL_MARGIN_MS``
      before the heal;
    * join/leave events past the horizon are dropped.

    Normalisation is idempotent and deterministic — the runner applies
    it on entry, so a schedule and its normal form behave identically.
    """
    horizon = schedule.horizon_ms
    events = []
    for event in schedule.events:
        event = dict(event)
        kind = event["kind"]
        if kind in MESSAGE_KINDS or kind in ("overload", "disk_slow"):
            # Windowed events (message faults, traffic bursts and disk
            # slowdowns) are clipped to the horizon and dropped when empty.
            if event["at"] >= horizon:
                continue
            event["end"] = min(event["end"], horizon)
            if event["end"] <= event["at"]:
                continue
        elif kind in ("crash", "power_loss"):
            latest_recover = horizon - HEAL_MARGIN_MS
            if event["at"] + MIN_CRASH_MS > latest_recover:
                continue
            event["duration"] = min(event["duration"],
                                    latest_recover - event["at"])
        elif kind in ("join", "leave", "disk_torn_write", "disk_bitrot"):
            if event["at"] >= horizon:
                continue
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        events.append(event)
    events.sort(key=lambda e: (e["at"], e["kind"],
                               json.dumps(e, sort_keys=True)))
    return replace(schedule, events=tuple(events))
