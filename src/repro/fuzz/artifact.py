"""Replayable repro artifacts: a violation, frozen as JSON.

An artifact bundles the (minimal) violating schedule with the full
recorded outcome of running it. Because a schedule determines its run
byte-for-byte, ``replay_artifact`` can re-execute the schedule and
compare the fresh outcome's canonical JSON against the recorded one —
a *byte-identical* match means the repro still reproduces; any drift
means the behaviour under that schedule changed (a fix landed, or a
regression).

Artifact schema (``format: repro-fuzz-repro/1``)::

    {
      "format": "repro-fuzz-repro/1",
      "schedule": { ...FaultSchedule.to_dict()... },
      "expected": { ...ScheduleRunResult.to_dict()... },
      "shrink":   { "probes": n, "kept": n,
                    "original_events": n, "minimal_events": n,
                    "summary": "..." }        # absent if never shrunk
    }

Files are written with sorted keys and a trailing newline so artifacts
are diff-friendly and byte-stable across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.fuzz.runner import ScheduleRunResult, run_schedule
from repro.fuzz.schedule import FaultSchedule
from repro.fuzz.shrink import ShrinkResult

ARTIFACT_FORMAT = "repro-fuzz-repro/1"


def make_artifact(run: ScheduleRunResult,
                  shrink: Optional[ShrinkResult] = None) -> dict:
    """Build the artifact dict for a violating run (optionally shrunk)."""
    if not run.violations:
        raise ValueError("artifacts record violations; this run passed")
    artifact = {
        "format": ARTIFACT_FORMAT,
        "schedule": run.schedule.to_dict(),
        "expected": run.to_dict(),
    }
    if shrink is not None:
        artifact["shrink"] = {
            "probes": shrink.probes,
            "kept": shrink.kept,
            "original_events": len(shrink.original.events),
            "minimal_events": len(shrink.minimal.events),
            "summary": shrink.summary(),
        }
    return artifact


def save_artifact(artifact: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        artifact = json.load(fh)
    fmt = artifact.get("format")
    if fmt != ARTIFACT_FORMAT:
        raise ValueError(f"not a fuzz repro artifact: format={fmt!r} "
                         f"(expected {ARTIFACT_FORMAT!r})")
    return artifact


@dataclass
class ReplayOutcome:
    """Result of re-running an artifact's schedule."""

    result: ScheduleRunResult     # the fresh run
    expected: dict                # the recorded run dict
    identical: bool               # canonical JSON byte-match
    still_violating: bool

    def report(self) -> str:
        lines = [f"schedule {self.result.schedule.digest()} "
                 f"[{self.result.schedule.scheme}]: "
                 f"{self.result.schedule.describe()}"]
        if self.identical:
            lines.append("replay: IDENTICAL — outcome matches the "
                         "recorded violation byte for byte")
        elif self.still_violating:
            lines.append("replay: DIVERGED but still violating — the "
                         "failure reproduces with a different signature")
        else:
            lines.append("replay: CLEAN — the recorded violation no "
                         "longer reproduces")
        for violation in self.result.violations:
            lines.append(f"  - {violation}")
        return "\n".join(lines)


def replay_artifact(artifact: dict) -> ReplayOutcome:
    """Re-run an artifact's schedule and byte-compare the outcome."""
    schedule = FaultSchedule.from_dict(artifact["schedule"])
    expected = artifact["expected"]
    result = run_schedule(schedule)
    fresh = json.dumps(result.to_dict(), sort_keys=True,
                       separators=(",", ":"))
    recorded = json.dumps(expected, sort_keys=True, separators=(",", ":"))
    return ReplayOutcome(result=result, expected=expected,
                         identical=fresh == recorded,
                         still_violating=bool(result.violations))
