"""Delta-debugging minimisation of violating fault schedules.

Given a schedule whose run violates an invariant, ``shrink_schedule``
searches for a smaller schedule that *still* violates one, re-running
deterministically at every step:

1. **event removal** — ddmin-style: drop halves, then quarters, … then
   single events, keeping any subset that still fails;
2. **window shortening** — halve each message-fault window and each
   crash duration while the failure survives;
3. **workload reduction** — fewer clients, fewer ops per client, fewer
   keys;
4. **horizon tightening** — halve the fault horizon (normalisation
   clips the surviving events into it).

Every candidate is normalised before running, so a shrink step can
never manufacture an artefactual failure (e.g. a victim still dark at
the heal point). A run whose linearizability verdict is merely
``inconclusive`` does **not** count as failing — the shrinker only
chases real violations.

The result records every probe, so a repro artifact can show its own
shrink history (``schedules tried / failures kept``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fuzz.runner import ScheduleRunResult, run_schedule
from repro.fuzz.schedule import (HEAL_MARGIN_MS, MIN_CRASH_MS,
                                 FaultSchedule, normalize_schedule)

#: Floors for workload reduction — below these the workload cannot
#: exercise the protocols (swap/sum need two keys; one client still
#: produces a checkable history).
MIN_CLIENTS = 1
MIN_OPS = 1
MIN_KEYS = 2
#: Shortest horizon the shrinker will try (ms) — must leave room for a
#: minimum-length crash plus the heal margin.
MIN_HORIZON_MS = MIN_CRASH_MS + HEAL_MARGIN_MS + 5.0


@dataclass
class ShrinkResult:
    """Outcome of one shrink search."""

    original: FaultSchedule
    minimal: FaultSchedule
    final_run: ScheduleRunResult   # the minimal schedule's failing run
    probes: int                    # schedules executed during the search
    kept: int                      # probes that still failed

    @property
    def events_removed(self) -> int:
        return len(self.original.events) - len(self.minimal.events)

    def summary(self) -> str:
        return (f"shrunk {len(self.original.events)} event(s) -> "
                f"{len(self.minimal.events)} in {self.probes} probe(s); "
                f"horizon {self.original.horizon_ms:.0f} -> "
                f"{self.minimal.horizon_ms:.0f} ms, workload "
                f"{self.original.num_clients}x{self.original.ops_per_client}"
                f" -> {self.minimal.num_clients}x"
                f"{self.minimal.ops_per_client}")


class _Prober:
    """Runs candidates, counting probes and caching the last failure."""

    def __init__(self, budget: int):
        self.budget = budget
        self.probes = 0
        self.kept = 0
        self.last_failure: ScheduleRunResult | None = None

    def fails(self, candidate: FaultSchedule) -> bool:
        if self.probes >= self.budget:
            return False
        self.probes += 1
        result = run_schedule(candidate)
        if result.violations:
            self.kept += 1
            self.last_failure = result
            return True
        return False


def _drop_events(schedule: FaultSchedule, prober: _Prober) -> FaultSchedule:
    """ddmin over the event list: try dropping chunks, halving the chunk
    size until single events; restart whenever a drop sticks."""
    events = list(schedule.events)
    chunk = max(len(events) // 2, 1)
    while chunk >= 1 and len(events) > 0:
        start, progressed = 0, False
        while start < len(events):
            candidate_events = events[:start] + events[start + chunk:]
            candidate = replace(schedule, events=tuple(candidate_events))
            if prober.fails(candidate):
                events = candidate_events
                progressed = True
                # Same position now holds the next chunk — do not advance.
            else:
                start += chunk
        if not progressed:
            chunk //= 2
    return replace(schedule, events=tuple(events))


def _shorten_windows(schedule: FaultSchedule,
                     prober: _Prober) -> FaultSchedule:
    """Halve each event's window/duration while the failure survives."""
    events = list(schedule.events)
    for index in range(len(events)):
        while True:
            event = events[index]
            shorter = dict(event)
            if "end" in event:
                length = event["end"] - event["at"]
                if length <= 10.0:
                    break
                shorter["end"] = round(event["at"] + length / 2, 2)
            elif event["kind"] == "crash":
                if event["duration"] <= 2 * MIN_CRASH_MS:
                    break
                shorter["duration"] = round(event["duration"] / 2, 2)
            else:
                break
            candidate_events = list(events)
            candidate_events[index] = shorter
            candidate = replace(schedule, events=tuple(candidate_events))
            if not prober.fails(candidate):
                break
            events = candidate_events
    return replace(schedule, events=tuple(events))


def _reduce_workload(schedule: FaultSchedule,
                     prober: _Prober) -> FaultSchedule:
    """Walk each workload dimension down while the failure survives."""
    for field, floor in (("num_clients", MIN_CLIENTS),
                         ("ops_per_client", MIN_OPS),
                         ("num_keys", MIN_KEYS)):
        while getattr(schedule, field) > floor:
            value = getattr(schedule, field)
            smaller = max(floor, value // 2 if value > 2 * floor
                          else value - 1)
            candidate = replace(schedule, **{field: smaller})
            if not prober.fails(candidate):
                break
            schedule = candidate
    return schedule


def _tighten_horizon(schedule: FaultSchedule,
                     prober: _Prober) -> FaultSchedule:
    """Halve the horizon while the failure survives (normalisation clips
    the events into the smaller window)."""
    while schedule.horizon_ms > 2 * MIN_HORIZON_MS:
        candidate = normalize_schedule(
            replace(schedule, horizon_ms=round(schedule.horizon_ms / 2, 1)))
        if not prober.fails(candidate):
            break
        schedule = candidate
    return schedule


def shrink_schedule(schedule: FaultSchedule, first_run: ScheduleRunResult,
                    max_probes: int = 120) -> ShrinkResult:
    """Minimise a violating schedule by delta debugging.

    ``first_run`` is the original failing run (so the search starts from
    a known failure without re-running it). ``max_probes`` bounds the
    total number of candidate executions; the search is greedy and keeps
    whatever minimum it reached when the budget runs out.
    """
    if not first_run.violations:
        raise ValueError("shrink_schedule needs a violating run to start "
                         "from")
    original = normalize_schedule(schedule)
    prober = _Prober(max_probes)
    prober.last_failure = first_run

    current = _drop_events(original, prober)
    current = _shorten_windows(current, prober)
    current = _reduce_workload(current, prober)
    current = _tighten_horizon(current, prober)
    # One more event pass: a reduced workload/horizon often unlocks drops
    # the first pass could not make.
    current = _drop_events(current, prober)
    current = normalize_schedule(current)

    final_run = prober.last_failure
    if final_run.schedule.canonical_json() != current.canonical_json():
        # The greedy walk's last failure is always the accepted minimum,
        # but guard against drift: re-run the minimum if they differ.
        final_run = run_schedule(current)
        prober.probes += 1
    return ShrinkResult(original=original, minimal=current,
                        final_run=final_run, probes=prober.probes,
                        kept=prober.kept)
