"""Seeded fuzz campaigns: generate, run, shrink, report.

``run_fuzz_campaign(n, seed)`` draws ``n`` schedules from the seeded
generator, runs each one, and — when a run violates an invariant —
shrinks the schedule to a minimal reproducer and (optionally) writes
the replay artifact to disk. The whole campaign is a pure function of
``(seed, n, options)``: the printable report and the canonical JSON
summary are byte-identical across runs, which is what the CI smoke
checks (two same-seed runs, ``cmp`` on the JSON).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.fuzz.artifact import make_artifact, save_artifact
from repro.fuzz.generate import GENERATOR_SCHEMES, generate_schedule
from repro.fuzz.runner import ScheduleRunResult, run_schedule
from repro.fuzz.shrink import ShrinkResult, shrink_schedule
from repro.harness.report import format_table

#: Schemes a campaign fuzzes by default (the generator's full set).
FUZZ_SCHEMES = GENERATOR_SCHEMES


@dataclass
class FuzzCampaignResult:
    """All runs of one fuzz campaign, plus shrink results and artifacts."""

    seed: int
    runs: tuple[ScheduleRunResult, ...]
    shrinks: dict[int, ShrinkResult] = field(default_factory=dict)
    artifact_paths: dict[int, str] = field(default_factory=dict)

    @property
    def violations(self) -> list[tuple[ScheduleRunResult, str]]:
        return [(run, violation) for run in self.runs
                for violation in run.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """Canonical campaign summary (the CI smoke byte-compares this)."""
        return {
            "seed": self.seed,
            "schedules": [
                {
                    "index": run.schedule.index,
                    "digest": run.schedule.digest(),
                    "scheme": run.schedule.scheme,
                    "faults": run.schedule.describe(),
                    "run": run.to_dict(),
                    "shrink": (
                        None if run.schedule.index not in self.shrinks
                        else {
                            "minimal_digest": self.shrinks[
                                run.schedule.index].minimal.digest(),
                            "minimal_events": len(self.shrinks[
                                run.schedule.index].minimal.events),
                            "original_events": len(self.shrinks[
                                run.schedule.index].original.events),
                            "probes": self.shrinks[
                                run.schedule.index].probes,
                        }),
                }
                for run in self.runs
            ],
            "violations": len(self.violations),
        }

    def report(self) -> str:
        rows = []
        for run in self.runs:
            shrink = self.shrinks.get(run.schedule.index)
            rows.append([
                run.schedule.index, run.schedule.scheme,
                run.schedule.digest(),
                run.schedule.describe(),
                f"{run.ops_completed}/{run.ops_expected}",
                (f"{run.finished_at:.0f}"
                 if run.finished_at is not None else "stuck"),
                run.linearizability,
                ("ok" if run.ok else
                 f"FAIL->{len(shrink.minimal.events)}ev"
                 if shrink else "FAIL"),
            ])
        table = format_table(
            ["#", "scheme", "digest", "faults", "ops", "done-ms",
             "linearizable", "verdict"], rows)
        lines = [f"fuzz campaign: seed={self.seed}, "
                 f"{len(self.runs)} schedule(s)", "", table, ""]
        if self.ok:
            lines.append(f"no invariant violations in {len(self.runs)} "
                         f"runs")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            for run, violation in self.violations:
                lines.append(f"  - [#{run.schedule.index} "
                             f"{run.schedule.scheme}] {violation}")
            for index, shrink in sorted(self.shrinks.items()):
                lines.append(f"  shrink [#{index}]: {shrink.summary()}")
                lines.append(f"    minimal: "
                             f"{shrink.minimal.describe()}")
            for index, path in sorted(self.artifact_paths.items()):
                lines.append(f"  artifact [#{index}]: {path}")
            for run in self.runs:
                if run.ok or not run.trace_notes:
                    continue
                lines.append(f"  trace context [#{run.schedule.index}]:")
                for note in run.trace_notes:
                    for note_line in note.splitlines():
                        lines.append(f"    {note_line}")
        return "\n".join(lines)


def run_fuzz_campaign(num_schedules: int = 10, seed: int = 0,
                      schemes: Sequence[str] = FUZZ_SCHEMES,
                      num_clients: int = 3, ops_per_client: int = 8,
                      inject_bug: Optional[str] = None,
                      shrink: bool = True,
                      shrink_probes: int = 120,
                      artifacts_dir: Optional[str] = None,
                      supervisor: bool = False,
                      overload: bool = False,
                      disk: bool = False,
                      parallel: bool = False) -> FuzzCampaignResult:
    """Run ``num_schedules`` generated schedules; shrink any violation.

    With ``supervisor=True`` every schedule runs under the autonomous
    recovery supervisor (:mod:`repro.heal`): crash events get no
    harness-driven restart — the healer alone must bring the system
    back — and the generator adds the false-suspicion vocabulary
    (delay-spiked and drop-isolated nodes).

    With ``overload=True`` every cluster runs with overload control
    armed (:mod:`repro.qos`) and the generator adds overload-burst
    events: open-loop read-only surges the admission controllers must
    shed while the foreground workload still completes under the
    schedule's other faults.

    With ``disk=True`` every cluster runs with durable storage armed
    (:mod:`repro.store`): crashes recover through the cold-start
    ladder, and the generator adds the storage-fault vocabulary —
    torn writes, bit rot, slow disks and whole-cluster power loss.

    With ``parallel=True`` every server executes on a 4-worker
    conflict-aware pool (:mod:`repro.smr.parallel`): the same fault
    vocabulary then fuzzes the P-SMR equivalence argument — the
    linearizability checker catches any schedule where parallel
    execution diverges from the sequential specification.
    """
    runs: list[ScheduleRunResult] = []
    shrinks: dict[int, ShrinkResult] = {}
    artifact_paths: dict[int, str] = {}
    for index in range(num_schedules):
        schedule = generate_schedule(seed, index, schemes=schemes,
                                     num_clients=num_clients,
                                     ops_per_client=ops_per_client,
                                     inject_bug=inject_bug,
                                     supervisor=supervisor,
                                     overload=overload,
                                     disk=disk,
                                     parallel=parallel)
        run = run_schedule(schedule)
        runs.append(run)
        if run.ok:
            continue
        shrunk = None
        if shrink:
            shrunk = shrink_schedule(schedule, run,
                                     max_probes=shrink_probes)
            shrinks[index] = shrunk
        if artifacts_dir is not None:
            os.makedirs(artifacts_dir, exist_ok=True)
            if shrunk is not None:
                artifact = make_artifact(shrunk.final_run, shrunk)
                digest = shrunk.minimal.digest()
            else:
                artifact = make_artifact(run)
                digest = schedule.digest()
            path = os.path.join(
                artifacts_dir,
                f"repro-seed{seed}-i{index}-{digest}.json")
            save_artifact(artifact, path)
            artifact_paths[index] = path
    return FuzzCampaignResult(seed=seed, runs=tuple(runs),
                              shrinks=shrinks,
                              artifact_paths=artifact_paths)
