"""Operation histories for linearizability checking."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_op_counter = itertools.count()


@dataclass
class Operation:
    """One completed operation in a concurrent history."""

    client: str
    op: str
    args: dict
    result: Any
    invoked_at: float
    responded_at: float
    op_id: int = field(default_factory=lambda: next(_op_counter))

    def __post_init__(self):
        if self.responded_at < self.invoked_at:
            raise ValueError("response before invocation")

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence: this op finished before ``other`` started."""
        return self.responded_at < other.invoked_at


class History:
    """An append-only collection of completed operations.

    Tests record one entry per completed client command; pending operations
    (no response observed) are conservatively droppable for the protocols
    tested here because every recorded test run quiesces before checking.
    """

    def __init__(self):
        self.operations: list[Operation] = []

    def record(self, client: str, op: str, args: dict, result: Any,
               invoked_at: float, responded_at: float) -> Operation:
        operation = Operation(client=client, op=op, args=dict(args),
                              result=result, invoked_at=invoked_at,
                              responded_at=responded_at)
        self.operations.append(operation)
        return operation

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def concurrent_pairs(self) -> int:
        """Number of operation pairs that overlap in time (test diagnostics)."""
        count = 0
        ops = self.operations
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if not (a.precedes(b) or b.precedes(a)):
                    count += 1
        return count
