"""Correctness checkers used by the test suite.

The centrepiece is a Wing–Gong linearizability checker: tests drive
concurrent clients against a deployment, record the invocation/response
history, and the checker searches for a legal sequential witness that
respects real-time order — the paper's correctness criterion (Section 2.2).
"""

from repro.checkers.history import History, Operation
from repro.checkers.linearizability import (
    INCONCLUSIVE,
    LINEARIZABLE,
    VIOLATION,
    KvSequentialSpec,
    SequentialSpec,
    check_linearizable,
    check_linearizable_bounded,
)

__all__ = [
    "History",
    "INCONCLUSIVE",
    "KvSequentialSpec",
    "LINEARIZABLE",
    "Operation",
    "SequentialSpec",
    "VIOLATION",
    "check_linearizable",
    "check_linearizable_bounded",
]
