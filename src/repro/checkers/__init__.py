"""Correctness checkers used by the test suite.

The centrepiece is a Wing–Gong linearizability checker: tests drive
concurrent clients against a deployment, record the invocation/response
history, and the checker searches for a legal sequential witness that
respects real-time order — the paper's correctness criterion (Section 2.2).
"""

from repro.checkers.history import History, Operation
from repro.checkers.linearizability import (
    KvSequentialSpec,
    SequentialSpec,
    check_linearizable,
)

__all__ = [
    "History",
    "KvSequentialSpec",
    "Operation",
    "SequentialSpec",
    "check_linearizable",
]
