"""Wing–Gong linearizability checker.

``check_linearizable(history, spec)`` searches for a permutation of the
history that (i) respects real-time precedence and (ii) is legal under the
sequential specification. Exponential in the worst case — intended for the
small, highly concurrent histories the property tests generate (tens of
operations) — with memoisation on (remaining-operations, state) to keep
typical runs fast.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Optional

from repro.checkers.history import History, Operation


class SequentialSpec(ABC):
    """A deterministic sequential model of the service."""

    @abstractmethod
    def initial_state(self) -> Any:
        """The state the history starts from."""

    @abstractmethod
    def apply(self, state: Any, operation: Operation) -> tuple[bool, Any]:
        """Apply ``operation`` to ``state``.

        Returns ``(legal, new_state)`` where ``legal`` is False when the
        operation's recorded result is impossible at this point.
        """

    @abstractmethod
    def fingerprint(self, state: Any) -> Hashable:
        """Hashable digest of a state (for memoisation)."""


#: Verdicts of the budgeted checker (:func:`check_linearizable_bounded`).
LINEARIZABLE = "linearizable"
VIOLATION = "violation"
INCONCLUSIVE = "inconclusive"


class _BudgetExceeded(Exception):
    """Internal: the search explored more states than its budget allows."""


def _search_linearization(history: History, spec: SequentialSpec,
                          max_nodes: int) -> bool:
    """True iff a legal linearization exists; raises :class:`_BudgetExceeded`
    when the search touches more than ``max_nodes`` distinct states.

    The search memoises on (remaining operation set, state fingerprint):
    two paths reaching the same frontier with the same abstract state
    explore the identical subtree, so the second is pruned — the property
    that keeps typical histories polynomial in practice.
    """
    operations = list(history)
    if not operations:
        return True
    remaining_all = frozenset(op.op_id for op in operations)
    by_id = {op.op_id: op for op in operations}
    seen: set[tuple[frozenset, Hashable]] = set()
    explored = 0

    def candidates(remaining: frozenset) -> list[Operation]:
        """Ops that may be linearized first: nothing remaining finished
        before they were invoked."""
        ops = [by_id[i] for i in remaining]
        earliest_response = min(op.responded_at for op in ops)
        firsts = [op for op in ops if op.invoked_at <= earliest_response]
        # Deterministic exploration order helps memoisation hit rates.
        firsts.sort(key=lambda op: (op.invoked_at, op.op_id))
        return firsts

    def search(remaining: frozenset, state: Any) -> bool:
        nonlocal explored
        if not remaining:
            return True
        key = (remaining, spec.fingerprint(state))
        if key in seen:
            return False
        seen.add(key)
        explored += 1
        if explored > max_nodes:
            raise _BudgetExceeded
        for op in candidates(remaining):
            legal, new_state = spec.apply(state, op)
            if legal and search(remaining - {op.op_id}, new_state):
                return True
        return False

    return search(remaining_all, spec.initial_state())


def check_linearizable(history: History, spec: SequentialSpec,
                       max_nodes: int = 2_000_000) -> bool:
    """True iff the history has a legal linearization.

    Raises ``RuntimeError`` if the search exceeds ``max_nodes`` explored
    states — a guard against pathological histories in CI, not a verdict.
    """
    try:
        return _search_linearization(history, spec, max_nodes)
    except _BudgetExceeded:
        raise RuntimeError("linearizability search exceeded node budget")


def check_linearizable_bounded(history: History, spec: SequentialSpec,
                               max_nodes: int = 200_000) -> str:
    """Budgeted variant for long fuzz histories: never hangs, never raises.

    Returns :data:`LINEARIZABLE`, :data:`VIOLATION`, or — when the memoised
    search would exceed ``max_nodes`` explored states — :data:`INCONCLUSIVE`.
    An exhausted search (every interleaving refuted) is a definite
    violation; only a truncated one is inconclusive. Tier-1-sized histories
    (tens of operations) complete well inside the default budget, so their
    verdicts remain exact.
    """
    try:
        found = _search_linearization(history, spec, max_nodes)
    except _BudgetExceeded:
        return INCONCLUSIVE
    return LINEARIZABLE if found else VIOLATION


class KvSequentialSpec(SequentialSpec):
    """Sequential model of :class:`~repro.smr.KeyValueStateMachine`.

    Also models ``create``/``delete`` commands (results ``"created"`` /
    ``"deleted"`` / error strings), so DS-SMR histories with dynamic
    variables can be checked. Operation results use the reply values the
    servers send.
    """

    def __init__(self, initial: Optional[dict] = None):
        self._initial = dict(initial or {})

    def initial_state(self) -> dict:
        return dict(self._initial)

    def fingerprint(self, state: dict) -> Hashable:
        return tuple(sorted((k, repr(v)) for k, v in state.items()))

    def apply(self, state: dict, operation: Operation) -> tuple[bool, Any]:
        op, args, result = operation.op, operation.args, operation.result
        if op == "get":
            key = args["key"]
            if key not in state:
                return _expect_error(result), state
            return result == state[key], state
        if op == "put":
            key = args["key"]
            if key not in state:
                return _expect_error(result), state
            if result != "ok":
                return False, state
            new = dict(state)
            new[key] = args["value"]
            return True, new
        if op == "incr":
            key = args["key"]
            if key not in state:
                return _expect_error(result), state
            expected = (state[key] or 0) + 1
            if result != expected:
                return False, state
            new = dict(state)
            new[key] = expected
            return True, new
        if op == "swap":
            a, b = args["a"], args["b"]
            if a not in state or b not in state:
                return _expect_error(result), state
            if result != "ok":
                return False, state
            new = dict(state)
            new[a], new[b] = state[b], state[a]
            return True, new
        if op == "sum":
            keys = args["keys"]
            if any(k not in state for k in keys):
                return _expect_error(result), state
            return result == sum(state[k] or 0 for k in keys), state
        if op == "create":
            key = args["key"]
            if key in state:
                return _expect_error(result), state
            if result != "created":
                return False, state
            new = dict(state)
            new[key] = args.get("value")
            return True, new
        if op == "delete":
            key = args["key"]
            if key not in state:
                return _expect_error(result), state
            if result != "deleted":
                return False, state
            new = dict(state)
            del new[key]
            return True, new
        raise ValueError(f"spec cannot model operation {op!r}")


def _expect_error(result: Any) -> bool:
    """An op on a missing variable must have returned an error (NOK)."""
    return isinstance(result, str) and result not in ("ok", "created",
                                                      "deleted")
