"""E19 — cost attribution: where virtual time goes, per scheme.

The same seeded workload runs under the virtual-time profiler against
S-SMR, DS-SMR and the graph-partitioned oracle. The profiler's cost
tree (scheme ; role [; partition] ; stage) must account every stage of
every command exactly — per-command stage sums equal the end-to-end
latency — and the schemes must differ where the protocols differ: only
the dynamic schemes pay consult cost, and only they spend oracle time.
"""

from repro.harness.figures import figure18_cost_attribution

from benchmarks.conftest import run_figure


def test_fig18_cost_attribution(benchmark):
    figure = run_figure(benchmark, figure18_cost_attribution)
    schemes = figure.data

    for scheme, profile in schemes.items():
        # Exact accounting: every command's stages sum to its e2e latency.
        assert profile["stage_sum_errors"] == []
        assert profile["commands"] == 30
        assert profile["total_ms"] > 0

    # Only the dynamic schemes consult (and spend oracle time).
    assert "client;consult" not in schemes["ssmr"]["tree"]
    for scheme in ("dssmr", "dynastar"):
        assert schemes[scheme]["tree"]["client;consult"]["ms"] > 0
        assert any(key.startswith("oracle;")
                   for key in schemes[scheme]["tree"])
    assert not any(key.startswith("oracle;")
                   for key in schemes["ssmr"]["tree"])
