"""E10 — partitioner-quality ablation for the oracle's pluggable partitioner.

Claim reproduced: the multilevel (METIS-like) partitioner produces a far
smaller edge-cut than hash/random placement at comparable balance — the
quality gap that makes the graph-partitioned oracle's targets meaningful.
"""

from repro.harness.figures import figure10_partitioner_ablation

from benchmarks.conftest import run_figure


def test_fig10_partitioner_ablation(benchmark):
    figure = run_figure(benchmark, figure10_partitioner_ablation,
                        n=4_000, k=4)
    cut = {name: values[0] for name, values in figure.data.items()}
    balance = {name: values[1] for name, values in figure.data.items()}

    assert cut["multilevel"] < cut["hash"] / 2
    assert cut["multilevel"] < cut["random"] / 2
    assert balance["multilevel"] < 0.10
