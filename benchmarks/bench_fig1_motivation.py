"""E1 — Figure 1 (a–d): throughput and move commands over time.

Paper claims reproduced:
* strong locality: all three schemes converge to the optimal-static
  throughput; the dynamic schemes' moves spike once and drop to zero, with
  the graph-partitioned oracle converging faster than decentralised DS-SMR;
* weak locality: DS-SMR keeps moving variables and its throughput stays
  below the graph-partitioned oracle, which stays below optimal static.
"""

from repro.harness.figures import figure1_motivation

from benchmarks.conftest import run_figure


def test_fig1_motivation(benchmark):
    figure = run_figure(benchmark, figure1_motivation,
                        duration_ms=8_000.0, n_users=400,
                        num_partitions=4, clients_per_partition=8)

    strong = {s: figure.data[("strong", s)] for s in
              ("ssmr", "dssmr", "dynastar")}
    weak = {s: figure.data[("weak", s)] for s in
            ("ssmr", "dssmr", "dynastar")}

    # Strong locality: dynamic schemes converge — moves stop.
    for scheme in ("dssmr", "dynastar"):
        assert strong[scheme].moves.values[-1] == 0.0
        # Final throughput within 35% of optimal static.
        assert strong[scheme].throughput.values[-1] > \
            0.65 * strong["ssmr"].throughput.values[-1]

    # Weak locality: DS-SMR keeps paying for moves; ordering holds.
    assert weak["dssmr"].metrics.moves > 10 * strong["dssmr"].metrics.moves \
        or weak["dssmr"].metrics.throughput < \
        0.8 * strong["dssmr"].metrics.throughput
    # Ordering at weak locality: the unrealizable static optimum leads; the
    # dynamic schemes trail it and sit close to each other in our
    # reproduction (see EXPERIMENTS.md for the discussion).
    assert weak["ssmr"].metrics.throughput >= \
        weak["dynastar"].metrics.throughput * 0.95
    assert weak["dynastar"].metrics.throughput >= \
        weak["dssmr"].metrics.throughput * 0.8
