"""E14 — sequencer-log batching ablation.

The classic ordered-log trade-off, quantified on our substrate: batching
divides the decision fan-out message count by the achieved batch size at
the cost of up to one batch window of added latency per entry.
"""

from repro.harness.figures import figure14_batching

from benchmarks.conftest import run_figure


def test_fig14_batching(benchmark):
    figure = run_figure(benchmark, figure14_batching,
                        windows=(0.0, 1.0, 5.0))
    data = figure.data

    # Everything applied in every configuration.
    applied = {w: outcome["applied"] for w, outcome in data.items()}
    assert len(set(applied.values())) == 1

    # Wider windows => fewer decision messages but higher latency.
    assert data[5.0]["decisions"] < data[1.0]["decisions"] \
        < data[0.0]["decisions"]
    assert data[0.0]["latency_ms"] < data[1.0]["latency_ms"] \
        < data[5.0]["latency_ms"]
    # Latency penalty is bounded by roughly the window width.
    assert data[5.0]["latency_ms"] < 5.0 + data[0.0]["latency_ms"] + 1.0
