"""E2 — the main evaluation grid: throughput & latency vs partitions and
edge-cut percentage, for S-SMR (optimal static), DS-SMR and the
graph-partitioned oracle.

Paper claims reproduced:
* at 0% edge-cut all schemes scale with the number of partitions;
* throughput decreases as the edge-cut percentage grows;
* the static optimum upper-bounds the dynamic schemes under weak locality.
"""

from repro.harness.figures import figure2_edgecut_sweep

from benchmarks.conftest import run_figure


def test_fig2_edgecut_sweep(benchmark):
    figure = run_figure(benchmark, figure2_edgecut_sweep,
                        duration_ms=5_000.0, partition_counts=(2, 4),
                        edge_cuts=(0.0, 0.01, 0.05, 0.10),
                        users_per_partition=100, clients_per_partition=8)
    data = figure.data

    # Scaling at strong locality: 4 partitions beat 2 for every scheme.
    for scheme in ("ssmr", "dssmr", "dynastar"):
        assert data[(0.0, 4, scheme)].throughput > \
            1.2 * data[(0.0, 2, scheme)].throughput

    # Locality erosion: for the static scheme, higher cut => lower tput.
    assert data[(0.0, 4, "ssmr")].throughput > \
        data[(0.10, 4, "ssmr")].throughput

    # Static schemes never move state; dynamic ones do under weak locality.
    assert data[(0.05, 4, "ssmr")].moves == 0
    assert data[(0.05, 4, "dssmr")].moves > 0
