"""Shared benchmark plumbing.

Every benchmark regenerates one figure/table of the paper via
:mod:`repro.harness.figures`, times it with pytest-benchmark (one round —
these are simulations, not microbenchmarks), prints the reproduced
series/rows, and archives the text under ``benchmarks/results/`` where
EXPERIMENTS.md links to it.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_figure(benchmark, figure_fn, **kwargs):
    """Time one figure run, print and archive its report."""
    figure = benchmark.pedantic(lambda: figure_fn(**kwargs),
                                rounds=1, iterations=1)
    text = str(figure)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure.figure_id}.txt"
    path.write_text(text + "\n")
    return figure
