"""E7 — location-cache ablation (the DS-SMR paper's key optimisation).

Claim reproduced: without the client cache every command consults the
oracle, multiplying oracle load and latency; with the cache most commands
go straight to their partition.
"""

from repro.harness.figures import figure7_cache_ablation

from benchmarks.conftest import run_figure


def test_fig7_cache_ablation(benchmark):
    figure = run_figure(benchmark, figure7_cache_ablation,
                        duration_ms=5_000.0, num_partitions=4,
                        users_per_partition=100, clients_per_partition=8)
    with_cache = figure.data[True]
    without_cache = figure.data[False]

    assert with_cache.cache_hits > 0
    assert without_cache.cache_hits == 0
    # The cache removes most consults and improves latency.
    assert with_cache.consults < 0.7 * without_cache.consults
    assert with_cache.latency_mean_ms < without_cache.latency_mean_ms
    assert with_cache.oracle_busy_fraction < \
        without_cache.oracle_busy_fraction
