"""E18 — self-healing: MTTR and unavailability, supervisor on vs off.

The same sustained DS-SMR workload loses a partition follower, a
partition sequencer and an oracle replica with no harness-driven
recovery. With the supervisor (repro.heal) each outage lasts detection
plus repair; without it every outage runs to the end of the experiment.
Unavailability is sampled by an independent ground-truth prober, not by
the failure detector judging itself.
"""

from repro.harness.figures import figure17_self_healing

from benchmarks.conftest import run_figure


def test_fig17_self_healing(benchmark):
    figure = run_figure(benchmark, figure17_self_healing)
    healed, baseline = figure.data["healed"], figure.data["baseline"]

    # All three roles actually died, in both runs.
    assert len(healed["crashed_at"]) == 3
    assert healed["crashed_at"] == baseline["crashed_at"]

    # The supervisor healed every outage: ground-truth unavailability is
    # strictly shorter — overall and for every replica group.
    assert healed["total_down_ms"] < baseline["total_down_ms"]
    for group, down in healed["down_ms"].items():
        assert down < baseline["down_ms"][group]

    # Healing shows up in throughput too, not just availability.
    assert healed["ops"] > baseline["ops"]

    # The healer's own books: one detection per crash, repaired by the
    # role-appropriate action, with no false suspicions.
    heal = healed["heal"]
    assert heal["detections"] == 3
    assert heal["replaces"] == 1       # follower: fence + replace
    assert heal["reconnects"] == 2     # sequencer + oracle: reconnect
    assert heal["false_suspicions"] == 0
    assert heal["mttr_ms"]["count"] == 3
    assert baseline["heal"] is None
