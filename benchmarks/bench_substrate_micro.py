"""Substrate microbenchmarks (simulator performance, not paper figures).

These quantify the cost of the simulation substrate itself — useful when
sizing experiments and for catching performance regressions in the kernel,
network and ordering layers. Unlike the figure benches these run multiple
rounds.
"""

import pytest

from repro.net import FixedLatency, Network
from repro.ordering import GroupDirectory, ProtocolNode, SequencerLog
from repro.sim import Channel, Environment, SeedStream


@pytest.mark.benchmark(group="micro")
def test_kernel_event_throughput(benchmark):
    """Raw DES events processed per run (timeout churn)."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(0.01)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == pytest.approx(100.0, rel=1e-6)


@pytest.mark.benchmark(group="micro")
def test_channel_handoff_throughput(benchmark):
    """Producer/consumer handoffs through a channel."""

    def run():
        env = Environment()
        channel = Channel(env)
        count = 5_000

        def producer(env):
            for i in range(count):
                channel.put(i)
                yield env.timeout(0)

        def consumer(env):
            total = 0
            for _ in range(count):
                total += yield channel.get()
            return total

        env.process(producer(env))
        consumer_proc = env.process(consumer(env))
        env.run()
        return consumer_proc.value

    total = benchmark(run)
    assert total == sum(range(5_000))


@pytest.mark.benchmark(group="micro")
def test_network_message_throughput(benchmark):
    """Point-to-point sends through the simulated network."""

    def run():
        env = Environment()
        net = Network(env, SeedStream(1), FixedLatency(0.05))
        net.register("b")
        for i in range(5_000):
            net.send("a", "b", "k", payload=i)
        env.run()
        return net.messages_delivered

    delivered = benchmark(run)
    assert delivered == 5_000


@pytest.mark.benchmark(group="micro")
def test_callback_chain_throughput(benchmark):
    """Event-heap churn through ``schedule_callback`` — the hottest
    scheduling shape (every network delivery and parallel-execution
    completion is one born-triggered callback event)."""

    count = 20_000

    def run():
        env = Environment()
        state = {"left": count}

        def tick():
            left = state["left"]
            if left:
                state["left"] = left - 1
                env.schedule_callback(0.01, tick)

        env.schedule_callback(0.0, tick)
        env.run()
        return env.now

    result = benchmark(run)
    assert result == pytest.approx(count * 0.01, rel=1e-6)


@pytest.mark.benchmark(group="micro")
def test_message_delivery_fast_path(benchmark):
    """End-to-end delivery on the rule-free fast path: slotted messages,
    cached endpoint lookup, no fault-rule scans, callback delivery."""

    count = 10_000

    def run():
        env = Environment()
        net = Network(env, SeedStream(3), FixedLatency(0.05))
        net.register("b")
        net.register("a")
        for i in range(count):
            net.send("a", "b", "k", payload=i)
        env.run()
        return net.messages_delivered

    delivered = benchmark(run)
    assert delivered == count


@pytest.mark.benchmark(group="micro")
def test_substrate_floors(benchmark):
    """The perfcheck substrate gate's own measurement: rates must beat
    the committed floors (recorded with multiple-x headroom, so only a
    genuine substrate slowdown trips this)."""

    import json
    from pathlib import Path

    from repro.harness.perf import compare_substrate, run_substrate_micro

    floors_path = (Path(__file__).parent / "baselines"
                   / "substrate_micro.json")
    floors = json.loads(floors_path.read_text())
    rates = benchmark.pedantic(run_substrate_micro, rounds=1, iterations=1)
    assert compare_substrate(rates, floors) == []


@pytest.mark.benchmark(group="micro")
def test_ordered_log_throughput(benchmark):
    """Entries sequenced and applied by a 3-member SequencerLog."""

    def run():
        env = Environment()
        net = Network(env, SeedStream(2), FixedLatency(0.05))
        directory = GroupDirectory({"g": ["m0", "m1", "m2"]})
        logs = {}
        for member in directory.members("g"):
            node = ProtocolNode(env, net, member)
            log = SequencerLog(node, directory, "g")
            logs[member] = log
        for i in range(1_000):
            logs["m1"].submit({"uid": f"e{i}"})
        env.run()
        return logs["m2"].applied_count

    applied = benchmark(run)
    assert applied == 1_000
