"""E12 — blocking vs asynchronous oracle repartitioning.

The paper's implementation section: "The oracle is multi-threaded, and can
service requests while computing a new partitioning concurrently", with
replicas switching consistently via an atomically multicast partitioning
id. With frequent repartitions of a sizeable workload graph, the blocking
oracle stalls every consult behind the computation; the asynchronous oracle
keeps throughput and tail latency flat.
"""

from repro.harness.figures import figure12_async_oracle

from benchmarks.conftest import run_figure


def test_fig12_async_oracle(benchmark):
    figure = run_figure(benchmark, figure12_async_oracle,
                        duration_ms=5_000.0, num_partitions=4,
                        n_users=400, clients_per_partition=8,
                        repartition_interval=60)
    blocking = figure.data[False]
    asynchronous = figure.data[True]

    assert asynchronous.throughput > 1.5 * blocking.throughput
    assert asynchronous.latency_p95_ms < blocking.latency_p95_ms
