"""E16 — elastic scale-out: throughput dip and recovery during a live join.

A saturated 2-partition DS-SMR deployment grows to three partitions
mid-run via repro.reconfig (epoch fence + bulk migration); a static
2-partition run of the same workload is the control. The companion smoke
crash-restarts a partitioned replica (checkpoint-install recovery) and
joins the new partition under chaos with every invariant checked.
"""

from repro.harness.figures import figure16_elastic_scaleout

from benchmarks.conftest import run_figure


def test_fig16_elastic_scaleout(benchmark):
    figure = run_figure(benchmark, figure16_elastic_scaleout)
    data = figure.data
    elastic, static, smoke = (data["elastic"], data["static"],
                              data["smoke"])

    # The join actually happened: epoch bumped, keys rebalanced.
    assert elastic["epoch"] == 1
    assert elastic["keys_migrated"] > 0
    assert static["epoch"] == 0
    assert static["keys_migrated"] == 0

    # Scale-out pays off: post-join throughput beats the static ceiling.
    assert elastic["after"] > static["after"]
    assert elastic["total_ops"] > static["total_ops"]

    # Safety smoke: crash-restart + join under chaos, all invariants hold.
    assert smoke["ok"], smoke["violations"]
    assert smoke["recovery"]
    assert smoke["newcomer_keys"] > 0
    assert smoke["metrics"]["reconfig.recoveries"] == 1
    assert smoke["metrics"]["reconfig.keys_migrated"] > 0
