"""E6 — CPU load on the oracle over time, for varying partition counts.

Paper claims reproduced: oracle load "is higher in the beginning of the
experiment, when the clients had not yet cached the requests", then drops
and stays low — the oracle is not a bottleneck.
"""

from repro.harness.figures import figure6_oracle_load

from benchmarks.conftest import run_figure


def test_fig6_oracle_load(benchmark):
    figure = run_figure(benchmark, figure6_oracle_load,
                        duration_ms=6_000.0, partition_counts=(2, 4),
                        users_per_partition=100, clients_per_partition=8)
    for k, load in figure.data.items():
        early = max(load.values[:4])
        late = max(load.values[-4:])
        # Warm caches: the late-run load is well below the early peak.
        assert late < early
        # And absolutely low: the oracle is not saturated.
        assert late < 0.5
