"""E11 — message complexity per command (protocol overhead accounting).

Quantifies the overhead argument behind the paper: multi-partition
commands multiply network messages (cross-group ordering, signals, variable
exchange), which is why turning them into single-partition commands pays.
"""

from repro.harness.figures import figure11_message_complexity

from benchmarks.conftest import run_figure


def test_fig11_message_complexity(benchmark):
    figure = run_figure(benchmark, figure11_message_complexity,
                        duration_ms=3_000.0, num_partitions=2,
                        users_per_partition=100, clients_per_partition=6)
    data = figure.data
    for scheme in ("ssmr", "dssmr", "dynastar"):
        strong_msgs, strong_bytes = data[("strong", scheme)]
        weak_msgs, weak_bytes = data[("weak", scheme)]
        # Weak locality costs clearly more traffic per command.
        assert weak_msgs > 1.5 * strong_msgs
        assert weak_bytes > 1.5 * strong_bytes
    # Single-partition S-SMR commands cost only a handful of messages.
    assert data[("strong", "ssmr")][0] < 6
