"""E3 — one fixed social graph, partitioned into 2/4/6/8 parts.

Paper claims reproduced: the edge-cut of the computed partitioning grows
with the number of partitions (the paper reports 0.13% / 1.06% / 2.28% /
2.67%), so throughput scales sub-linearly and eventually flattens.
"""

from repro.harness.figures import figure3_partition_count

from benchmarks.conftest import run_figure


def test_fig3_partition_count(benchmark):
    figure = run_figure(benchmark, figure3_partition_count,
                        duration_ms=5_000.0, partition_counts=(2, 4, 8),
                        n_users=480, clients_per_partition=8)
    cuts = {k: cut for k, (cut, _metrics) in figure.data.items()}
    tputs = {k: metrics.throughput
             for k, (_cut, metrics) in figure.data.items()}
    latency = {k: metrics.latency_mean_ms
               for k, (_cut, metrics) in figure.data.items()}

    # Edge-cut grows with partition count on a fixed graph (the paper's
    # 0.13% -> 2.67% progression).
    assert cuts[2] < cuts[4] < cuts[8]
    # More partitions still help going 2 -> 4 (scaling regime) ...
    assert tputs[4] > tputs[2]
    # ... but the gains erode: 4 -> 8 is clearly sub-linear and per-command
    # latency keeps climbing with the cut.
    assert tputs[8] < 1.8 * tputs[4]
    assert latency[8] > latency[4] > latency[2]
