"""E9 — ablation of the retry limit n (fallback to S-SMR execution).

Claim reproduced: the fallback guarantees termination; the limit trades
retry latency against expensive all-partition executions. Every
configuration completes its commands (liveness), and fallbacks appear when
the limit is small.
"""

from repro.harness.figures import figure9_retry_fallback

from benchmarks.conftest import run_figure


def test_fig9_retry_fallback(benchmark):
    figure = run_figure(benchmark, figure9_retry_fallback,
                        duration_ms=4_000.0, num_partitions=4,
                        users_per_partition=75, clients_per_partition=8,
                        retry_limits=(0, 1, 3, 8))
    for limit, metrics in figure.data.items():
        assert metrics.completed > 0        # liveness at every limit
    # Tight limits fall back more than generous ones.
    assert figure.data[0].fallbacks >= figure.data[8].fallbacks
    # Generous limits retry more than tight ones.
    assert figure.data[8].retries >= figure.data[0].retries
