"""E5 — partitioner runtime and memory vs graph size.

Paper claims reproduced: METIS "scales linearly in both memory and
computation time"; our from-scratch multilevel partitioner is measured the
same way (sizes scaled down from the paper's 10M vertices to what a pure
Python implementation handles in seconds).
"""

from repro.harness.figures import figure5_partitioner_scaling

from benchmarks.conftest import run_figure


def test_fig5_partitioner_scaling(benchmark):
    figure = run_figure(benchmark, figure5_partitioner_scaling,
                        sizes=(1_000, 3_000, 10_000, 30_000), k=4)
    sizes = sorted(figure.data)
    times = [figure.data[n][0] for n in sizes]
    memories = [figure.data[n][1] for n in sizes]

    # Roughly linear scaling: 30x more vertices costs well under 100x time
    # (i.e. no quadratic blow-up), and memory grows monotonically.
    assert times[-1] < 100 * max(times[0], 1e-3)
    assert memories[-1] > memories[0]
    # Quality stays sane at every size.
    for n in sizes:
        assert figure.data[n][2] < 0.5  # edge-cut fraction
