"""E8 — command mix: read-heavy (timeline-dominated) vs post-only.

Claim reproduced: Chirper is designed so getTimeline is always a
single-partition command; under the realistic read-heavy mix throughput is
far higher than under the post-only stress workload for the dynamic scheme.
"""

from repro.harness.figures import figure8_command_mix

from benchmarks.conftest import run_figure


def test_fig8_command_mix(benchmark):
    figure = run_figure(benchmark, figure8_command_mix,
                        duration_ms=5_000.0, num_partitions=4,
                        users_per_partition=100, clients_per_partition=8)
    data = figure.data
    for scheme in ("ssmr", "dssmr"):
        assert data[("mixed", scheme)].throughput > \
            1.2 * data[("post-only", scheme)].throughput
