"""E15 — cost of the client resilience layer under increasing fault rates.

Clients with timeout/retry/backoff (repro.resilience) run against clusters
dropping a growing fraction of messages. With no faults the layer is pure
bookkeeping; under loss, every request still completes, paid for in
timeouts, resends and latency tail.
"""

import math

from repro.harness.figures import figure15_chaos_overhead

from benchmarks.conftest import run_figure


def test_fig15_chaos_overhead(benchmark):
    figure = run_figure(benchmark, figure15_chaos_overhead,
                        drop_rates=(0.0, 0.02, 0.05))
    data = figure.data

    for (scheme, rate), outcome in data.items():
        # The resilience contract: every request completes despite loss.
        assert outcome["completed"] == outcome["total"], (scheme, rate)
        assert not math.isnan(outcome["mean_ms"])

    for scheme in ("smr", "ssmr"):
        # No faults, no retries: the layer is free until a timeout fires.
        assert data[(scheme, 0.0)]["timeouts"] == 0
        assert data[(scheme, 0.0)]["resends"] == 0
        # Under loss the retry machinery engages and latency grows.
        assert data[(scheme, 0.05)]["timeouts"] > 0
        assert data[(scheme, 0.05)]["mean_ms"] \
            > data[(scheme, 0.0)]["mean_ms"]
